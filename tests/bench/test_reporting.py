"""Tests for benchmark report rendering."""

from repro.bench.harness import SpeedupResult
from repro.bench.reporting import (
    format_speedup_grid,
    format_speedup_rows,
    format_table,
    print_report,
)


def sample_results():
    return [
        SpeedupResult({"tuple_ratio": 5, "feature_ratio": 1}, 1.0, 0.5),
        SpeedupResult({"tuple_ratio": 5, "feature_ratio": 2}, 1.0, 0.25),
        SpeedupResult({"tuple_ratio": 10, "feature_ratio": 1}, 2.0, 0.5),
        SpeedupResult({"tuple_ratio": 10, "feature_ratio": 2}, 2.0, 0.25),
    ]


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1], ["b", 22]])
        assert "name" in text and "value" in text
        assert "a" in text and "22" in text

    def test_column_alignment(self):
        text = format_table(["x"], [["longvalue"], ["s"]])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestSpeedupGrid:
    def test_grid_dimensions(self):
        text = format_speedup_grid(sample_results(), row_key="feature_ratio",
                                   col_key="tuple_ratio")
        lines = text.splitlines()
        # header + separator + one line per feature ratio
        assert len(lines) == 4

    def test_grid_values(self):
        text = format_speedup_grid(sample_results(), row_key="feature_ratio",
                                   col_key="tuple_ratio")
        assert "2.00x" in text
        assert "8.00x" in text

    def test_missing_cell_rendered_as_dash(self):
        results = sample_results()[:-1]
        text = format_speedup_grid(results, row_key="feature_ratio", col_key="tuple_ratio")
        assert "-" in text


class TestSpeedupRows:
    def test_rows_contain_parameters_and_speedups(self):
        text = format_speedup_rows(sample_results(), ["tuple_ratio", "feature_ratio"])
        assert "speedup" in text
        assert "4.00x" in text

    def test_runtime_columns_present(self):
        text = format_speedup_rows(sample_results(), ["tuple_ratio"])
        assert "materialized (s)" in text
        assert "factorized (s)" in text


class TestPrintReport:
    def test_prints_title_and_body(self, capsys):
        print_report("Figure 3", "body text")
        captured = capsys.readouterr().out
        assert "Figure 3" in captured
        assert "body text" in captured
        assert "=" in captured
