"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import SpeedupResult, TimingResult, cartesian, compare, measure, sweep_grid


class TestMeasure:
    def test_collects_requested_repeats(self):
        result = measure(lambda: sum(range(100)), label="toy", repeats=4, warmup=0)
        assert len(result.seconds) == 4
        assert result.label == "toy"

    def test_best_and_mean(self):
        result = TimingResult(label="x", seconds=[0.2, 0.1, 0.3])
        assert result.best == pytest.approx(0.1)
        assert result.mean == pytest.approx(0.2)

    def test_empty_timing_is_nan(self):
        import math
        empty = TimingResult(label="x")
        assert math.isnan(empty.best)
        assert math.isnan(empty.mean)
        assert empty.valid_seconds == []

    def test_nan_entries_do_not_poison_summaries(self):
        result = TimingResult(label="x", seconds=[float("nan"), 0.2, 0.1])
        assert result.valid_seconds == [0.2, 0.1]
        assert result.best == pytest.approx(0.1)
        assert result.mean == pytest.approx(0.15)

    def test_all_nan_timings_report_nan(self):
        import math
        result = TimingResult(label="x", seconds=[float("nan"), float("nan")])
        assert math.isnan(result.best)
        assert math.isnan(result.mean)

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_warmup_runs_execute(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5


class TestCompare:
    def test_speedup_computed(self):
        result = SpeedupResult(parameters={"tr": 5}, materialized_seconds=1.0,
                               factorized_seconds=0.25)
        assert result.speedup == pytest.approx(4.0)

    def test_zero_factorized_time(self):
        result = SpeedupResult(parameters={}, materialized_seconds=1.0, factorized_seconds=0.0)
        assert result.speedup == float("inf")

    def test_nan_timing_yields_nan_speedup(self):
        import math
        nan = float("nan")
        for m, f in ((nan, 1.0), (1.0, nan), (nan, nan), (nan, 0.0)):
            result = SpeedupResult(parameters={}, materialized_seconds=m, factorized_seconds=f)
            assert math.isnan(result.speedup)

    def test_compare_runs_both_sides(self):
        counter = {"m": 0, "f": 0}

        def materialized():
            counter["m"] += 1

        def factorized():
            counter["f"] += 1

        result = compare(materialized, factorized, parameters={"x": 1}, repeats=2, warmup=1)
        assert counter["m"] == 3 and counter["f"] == 3
        assert result.parameters == {"x": 1}


class TestSweeps:
    def test_cartesian_grid(self):
        grid = cartesian(a=[1, 2], b=[10, 20, 30])
        assert len(grid) == 6
        assert {"a": 1, "b": 30} in grid

    def test_cartesian_single_axis(self):
        assert cartesian(a=[1, 2, 3]) == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_sweep_grid_applies_runner(self):
        grid = cartesian(a=[1, 2])
        results = sweep_grid(grid, lambda p: SpeedupResult(p, p["a"] * 1.0, 1.0))
        assert [r.speedup for r in results] == [1.0, 2.0]
