"""Tests for the per-figure / per-table experiment definitions."""

import numpy as np
import pytest

from repro.bench import experiments


class TestOperatorExperimentDefinitions:
    def test_pk_fk_operator_set_covers_table_one(self):
        names = {e.name for e in experiments.pk_fk_operator_experiments()}
        assert {"scalar_multiplication", "lmm", "rmm", "crossprod", "pseudoinverse",
                "rowsums", "colsums", "sum"}.issubset(names)

    def test_mn_operator_set(self):
        names = {e.name for e in experiments.mn_operator_experiments()}
        assert {"lmm", "rmm", "crossprod"}.issubset(names)

    @pytest.mark.parametrize("experiment", experiments.pk_fk_operator_experiments(),
                             ids=lambda e: e.name)
    def test_pk_fk_factorized_equals_materialized(self, experiment):
        dataset = experiments.build_pk_fk_dataset(tuple_ratio=4, feature_ratio=2,
                                                  num_attribute_rows=30,
                                                  num_entity_features=5)
        materialized_result = experiment.materialized_fn(dataset.materialized)
        factorized_result = experiment.factorized_fn(dataset.normalized)
        factorized_dense = (factorized_result.to_dense()
                            if hasattr(factorized_result, "to_dense") else factorized_result)
        assert np.allclose(np.asarray(materialized_result).ravel(),
                           np.asarray(factorized_dense).ravel(), atol=1e-6)

    @pytest.mark.parametrize("experiment", experiments.mn_operator_experiments(),
                             ids=lambda e: e.name)
    def test_mn_factorized_equals_materialized(self, experiment):
        dataset = experiments.build_mn_dataset(uniqueness_degree=0.2, num_rows=40,
                                               num_features=6)
        materialized_result = experiment.materialized_fn(dataset.materialized)
        factorized_result = experiment.factorized_fn(dataset.normalized)
        factorized_dense = (factorized_result.to_dense()
                            if hasattr(factorized_result, "to_dense") else factorized_result)
        assert np.allclose(np.asarray(materialized_result).ravel(),
                           np.asarray(factorized_dense).ravel(), atol=1e-7)


class TestDatasetBuilders:
    def test_build_pk_fk_dataset_ratios(self):
        dataset = experiments.build_pk_fk_dataset(tuple_ratio=6, feature_ratio=2,
                                                  num_attribute_rows=50)
        assert dataset.tuple_ratio == pytest.approx(6.0)
        assert dataset.feature_ratio == pytest.approx(2.0)

    def test_build_mn_dataset_domain(self):
        dataset = experiments.build_mn_dataset(uniqueness_degree=0.1, num_rows=50, num_features=4)
        assert dataset.config.domain_size == 5


class TestSweeps:
    def test_pk_fk_sweep_runs_grid(self):
        experiment = experiments.pk_fk_operator_experiments()[0]
        results = experiments.run_pk_fk_operator_sweep(
            experiment, tuple_ratios=[2, 4], feature_ratios=[1, 2],
            num_attribute_rows=25, repeats=1)
        assert len(results) == 4
        assert all(r.factorized_seconds > 0 for r in results)

    def test_mn_sweep_runs_grid(self):
        experiment = experiments.mn_operator_experiments()[0]
        results = experiments.run_mn_operator_sweep(
            experiment, uniqueness_degrees=[0.2, 0.5], num_rows=40, num_features=5, repeats=1)
        assert len(results) == 2
        assert {r.parameters["uniqueness_degree"] for r in results} == {0.2, 0.5}


class TestDecisionRuleConfusion:
    def _result(self, tr, fr, speedup):
        from repro.bench.harness import SpeedupResult
        return SpeedupResult({"tuple_ratio": tr, "feature_ratio": fr}, speedup, 1.0)

    def test_counts_sum_to_total(self):
        results = [self._result(10, 2, 3.0), self._result(1, 0.5, 0.5),
                   self._result(10, 2, 0.8), self._result(1, 0.5, 1.5)]
        counts = experiments.decision_rule_confusion(results)
        assert sum(counts.values()) == 4

    def test_true_positive(self):
        counts = experiments.decision_rule_confusion([self._result(10, 2, 3.0)])
        assert counts["true_positive"] == 1

    def test_true_negative(self):
        counts = experiments.decision_rule_confusion([self._result(1, 0.5, 0.5)])
        assert counts["true_negative"] == 1

    def test_false_negative_is_conservative_miss(self):
        counts = experiments.decision_rule_confusion([self._result(1, 4, 2.0)])
        assert counts["false_negative"] == 1

    def test_custom_thresholds(self):
        counts = experiments.decision_rule_confusion([self._result(3, 2, 2.0)],
                                                     tuple_ratio_threshold=2.0)
        assert counts["true_positive"] == 1
