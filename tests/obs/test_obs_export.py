"""Exporters: JSON-lines shape, Prometheus text format, summary table."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.export import summary, to_jsonl, to_prometheus
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("demo_events_total", "demo events", labels=("kind",),
                    always=True)
    c.labels(kind="a").inc(3)
    c.labels(kind="b").inc()
    g = reg.gauge("demo_level", "a level", always=True)
    g.set(2.5)
    h = reg.histogram("demo_seconds", "latency", buckets=(0.1, 1.0), always=True)
    h.observe(0.05)
    h.observe(0.5)
    h.observe(7.0)
    return reg


class TestPrometheus:
    def test_text_format(self):
        text = to_prometheus(_populated_registry())
        assert "# HELP demo_events_total demo events" in text
        assert "# TYPE demo_events_total counter" in text
        assert 'demo_events_total{kind="a"} 3' in text
        assert 'demo_events_total{kind="b"} 1' in text
        assert "# TYPE demo_level gauge" in text
        assert "demo_level 2.5" in text
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_count 3" in text
        assert text.endswith("\n")

    def test_histogram_sum_line(self):
        text = to_prometheus(_populated_registry())
        (sum_line,) = [ln for ln in text.splitlines()
                       if ln.startswith("demo_seconds_sum")]
        assert float(sum_line.split()[-1]) == pytest.approx(7.55)


class TestJsonl:
    def test_every_line_is_json_and_typed(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "metrics.jsonl"
        payload = to_jsonl(str(path), registry=reg, spans=False)
        assert path.read_text() == payload
        records = [json.loads(line) for line in payload.splitlines()]
        assert all(r["type"] == "metric" for r in records)
        by_name = {}
        for r in records:
            by_name.setdefault(r["name"], []).append(r)
        assert {r["labels"]["kind"] for r in by_name["demo_events_total"]} == {"a", "b"}
        (hist,) = by_name["demo_seconds"]
        assert hist["count"] == 3
        assert hist["buckets"][-1][1] == 3

    def test_spans_included_from_global_trace(self):
        obs.enable()
        with obs.span("export-me"):
            pass
        payload = to_jsonl(registry=_populated_registry())
        span_records = [json.loads(line) for line in payload.splitlines()
                        if json.loads(line)["type"] == "span"]
        assert any(r["tree"]["name"] == "export-me" for r in span_records)


class TestSummary:
    def test_summary_table(self):
        text = summary(_populated_registry())
        assert "demo_events_total" in text
        assert "kind=a" in text
        assert "count=3" in text  # histogram row

    def test_empty_registry(self):
        assert summary(MetricsRegistry()) == "(no metrics recorded)"
