"""End-to-end observability: one instrumented fit/delta/serve run.

The acceptance scenario for the obs layer: with observability on, an
auto-planned fit plus a delta update plus top-k serving must leave behind
(a) a span tree rooted at the fit with the planner nested inside, (b) metric
series from every instrumented layer -- planner, lazy cache, kernels, delta
path, serving, ml -- visible through every exporter, and (c) a
predicted-vs-measured line in ``Plan.explain()``.  With observability off,
the permanent instrumentation must cost nothing measurable (<= 2% on a
traced logistic-regression fit).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.delta import MatrixDelta
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import DeltaPolicy
from repro.la.ops import indicator_from_labels
from repro.ml import LinearRegressionGD, LogisticRegressionGD, ServingExport
from repro.serve import FactorizedScorer, ScoringService

ALWAYS_PATCH = DeltaPolicy(threshold=1.0)


def _star_schema(n_s=300, n_r=12, d_s=3, d_r=4, seed=0):
    rng = np.random.default_rng(seed)
    entity = rng.standard_normal((n_s, d_s))
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.sort(np.concatenate([np.arange(n_r),
                                     rng.integers(0, n_r, size=n_s - n_r)]))
    indicator = indicator_from_labels(labels, num_columns=n_r)
    return NormalizedMatrix(entity, [indicator], [attribute]), rng


class TestInstrumentedEndToEnd:
    def test_fit_delta_serve_produces_spans_and_series(self):
        obs.enable()
        normalized, rng = _star_schema()
        y = rng.standard_normal(normalized.shape[0])

        # 1. Auto-planned fit: planner span + plan-feedback outcome.
        model = LinearRegressionGD(engine="auto", max_iter=3).fit(normalized, y)
        assert model.plan_ is not None
        assert model.plan_.outcome is not None
        assert model.plan_.outcome.measured_seconds > 0
        explained = model.plan_.explain()
        assert "measured:" in explained
        assert "predicted" in explained

        # 2. Lazy-engine fit: exercises the memoization cache (hits + misses).
        LinearRegressionGD(engine="lazy", max_iter=3).fit(normalized, y)

        # 3. Delta update against the warmed cache: patch/invalidate decisions
        #    and the rank-|delta| rewrite rules.
        lazy = normalized.lazy()
        lazy.crossprod().evaluate()
        delta = MatrixDelta.upsert(
            [0, 1], rng.standard_normal((2, normalized.attributes[0].shape[1])),
            normalized.attributes[0])
        successor = normalized.apply_delta(0, delta, policy=ALWAYS_PATCH)
        assert successor._lazy_cache.patched > 0

        # 4. Serving: micro-batched scoring, top-k, and a serving-side delta.
        export = ServingExport(
            "linear_regression",
            rng.standard_normal((normalized.logical_cols, 2)))
        scorer = FactorizedScorer(export, normalized, zone_block_size=64)
        service = ScoringService(scorer, max_batch_size=32)
        service.score_rows(np.arange(64))
        service.top_k(5)
        service.apply_delta(0, MatrixDelta.upsert(
            [2], rng.standard_normal((1, normalized.attributes[0].shape[1])),
            normalized.attributes[0]))

        # -- span tree: fit root with the planner nested inside ---------------
        roots = obs.recent_spans()
        (fit_root,) = [r for r in roots if r.name == "LinearRegressionGD.fit"
                       and r.find("planner.plan") is not None]
        planner_span = fit_root.find("planner.plan")
        assert planner_span.attrs.get("workload")
        assert fit_root.attrs.get("plan") == model.plan_.chosen.label
        assert fit_root.attrs.get("measured_seconds") == pytest.approx(
            model.plan_.outcome.measured_seconds)
        assert any(r.find("serve.apply_delta") is not None for r in roots)
        assert any(r.name == "cache.apply_delta" or r.find("cache.apply_delta")
                   for r in roots)

        # -- metric series from every instrumented layer ----------------------
        text = obs.to_prometheus()
        for needle in (
            'repro_planner_plans_total{',          # planner
            'repro_lazy_cache_events_total{event="hit"}',   # lazy cache
            'repro_kernel_dispatch_total{',        # kernel registry
            'repro_delta_patch_decisions_total{decision="patch"',  # delta path
            'repro_delta_rules_total{',            # rewrite rules
            'repro_serve_requests_total{path="batch"}',     # serving
            'repro_serve_topk_blocks_total{',      # top-k
            'repro_serve_updates_total{',          # serving delta
            'repro_ml_fits_total{',                # estimators
        ):
            assert needle in text, f"missing {needle!r} in exposition:\n{text}"

        # -- the same data round-trips through the other exporters ------------
        names = {json.loads(line)["name"]
                 for line in obs.to_jsonl(spans=False).splitlines()}
        assert {"repro_planner_plans_total", "repro_lazy_cache_events_total",
                "repro_kernel_dispatch_total", "repro_serve_requests_total",
                "repro_ml_fits_total"} <= names
        table = obs.summary()
        assert "repro_plan_outcomes_total" in table

    def test_disabled_run_records_nothing(self):
        assert not obs.enabled()
        normalized, rng = _star_schema(seed=3)
        y = rng.standard_normal(normalized.shape[0])
        LinearRegressionGD(engine="auto", max_iter=2).fit(normalized, y)
        assert obs.recent_spans() == []
        # Families registered at import time stick around, but no gated
        # series may have recorded anything.
        for name in ("repro_planner_plans_total", "repro_kernel_dispatch_total",
                     "repro_ml_fits_total"):
            family = obs.REGISTRY.get(name)
            assert family is None or family.value == 0

    def test_outcome_recorded_even_when_disabled(self):
        """Plan feedback is unconditional: two clock reads, always on."""
        assert not obs.enabled()
        normalized, rng = _star_schema(seed=4)
        y = rng.standard_normal(normalized.shape[0])
        model = LinearRegressionGD(engine="auto", max_iter=2).fit(normalized, y)
        assert model.plan_.outcome is not None
        assert "measured:" in model.plan_.explain()


class TestDisabledOverhead:
    """The <= 2% gate: permanently-installed instrumentation, obs off."""

    REPEATS = 7
    RELATIVE_BUDGET = 1.02
    ABSOLUTE_SLACK = 2e-3  # seconds; absorbs scheduler jitter on tiny fits

    @staticmethod
    def _min_time(fn, repeats):
        fn()  # warm caches/JIT'd numpy paths outside the timed region
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    def test_traced_logreg_fit_within_two_percent(self):
        assert not obs.enabled()
        rng = np.random.default_rng(11)
        data = rng.standard_normal((2000, 30))
        y = np.where(rng.standard_normal(2000) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=40)
        baseline_fit = LogisticRegressionGD.fit.__wrapped__  # undecorated

        instrumented = self._min_time(lambda: model.fit(data, y), self.REPEATS)
        baseline = self._min_time(lambda: baseline_fit(model, data, y),
                                  self.REPEATS)
        budget = baseline * self.RELATIVE_BUDGET + self.ABSOLUTE_SLACK
        assert instrumented <= budget, (
            f"disabled-mode overhead too high: instrumented {instrumented:.6f}s "
            f"vs baseline {baseline:.6f}s (budget {budget:.6f}s)"
        )
