"""Shared obs-test plumbing: every test starts and ends with a clean slate."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.REGISTRY.reset()
    obs.clear_spans()
    yield
    obs.disable()
    obs.REGISTRY.reset()
    obs.clear_spans()
