"""Span trees: nesting, contextvar propagation, kernel-set and pool boundaries."""

from __future__ import annotations

import threading

import numpy as np

from repro import obs
from repro.la import kernels
from repro.la.parallel import ParallelExecutor
from repro.obs.trace import _NULL_SPAN


class TestDisabledMode:
    def test_span_yields_null_and_records_nothing(self):
        with obs.span("nothing") as s:
            assert s is _NULL_SPAN
            s.set(anything="goes")
        assert obs.recent_spans() == []

    def test_traced_calls_function_directly(self):
        calls = []

        @obs.traced
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(21) == 42
        assert calls == [21]
        assert obs.recent_spans() == []


class TestNesting:
    def test_children_attach_to_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner-1"):
                pass
            with obs.span("inner-2"):
                with obs.span("leaf"):
                    pass
        roots = obs.recent_spans()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.find("leaf") is outer.children[1].children[0]
        assert outer.wall_seconds >= outer.children[0].wall_seconds

    def test_traced_decorator_nests_and_names(self):
        obs.enable()

        @obs.traced("custom-name")
        def inner():
            return 1

        @obs.traced
        def outer():
            return inner()

        outer()
        (root,) = obs.recent_spans()
        assert root.name.endswith("outer")
        assert [c.name for c in root.children] == ["custom-name"]

    def test_annotate_hits_active_span(self):
        obs.enable()
        with obs.span("annotated"):
            obs.annotate(rows=12)
        assert obs.recent_spans()[0].attrs["rows"] == 12

    def test_render_and_to_dict(self):
        obs.enable()
        with obs.span("root", task="demo"):
            with obs.span("child"):
                pass
        root = obs.recent_spans()[0]
        text = root.render()
        assert "root" in text and "child" in text and "task=demo" in text
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["children"][0]["name"] == "child"


class TestKernelSetBoundary:
    def test_span_survives_using_context(self):
        """Nesting across kernels.using(): spans and kernel-set switches compose."""
        obs.enable()
        with obs.span("fit"):
            with kernels.using("reference"):
                with obs.span("step"):
                    assert kernels.active() == "reference"
        (root,) = obs.recent_spans()
        assert [c.name for c in root.children] == ["step"]


class TestWorkerPoolBoundary:
    def test_spans_propagate_into_thread_pool(self):
        obs.enable()
        executor = ParallelExecutor("thread", default_max_workers=4)

        def work(i):
            with obs.span(f"task-{i}"):
                return i * i

        with obs.span("fanout"):
            results = executor.map(work, list(range(6)))
        assert results == [i * i for i in range(6)]
        (root,) = obs.recent_spans()
        shard_map = root.find("shard.map")
        assert shard_map is not None, root.render()
        names = sorted(c.name for c in shard_map.children)
        assert names == sorted(f"task-{i}" for i in range(6))

    def test_single_item_fanout_stays_inline(self):
        obs.enable()
        executor = ParallelExecutor("thread")

        def work(i):
            with obs.span("only"):
                return i

        with obs.span("parent"):
            executor.map(work, [1])
        (root,) = obs.recent_spans()
        assert [c.name for c in root.children] == ["only"]

    def test_worker_thread_without_context_starts_fresh_root(self):
        obs.enable()
        done = threading.Event()

        def worker():
            with obs.span("orphan"):
                pass
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert done.is_set()
        assert any(s.name == "orphan" for s in obs.recent_spans())


class TestTimings:
    def test_wall_and_cpu_seconds_populated(self):
        obs.enable()
        with obs.span("busy"):
            np.linalg.qr(np.random.default_rng(0).normal(size=(100, 100)))
        (root,) = obs.recent_spans()
        assert root.wall_end is not None and root.cpu_end is not None
        assert root.wall_seconds > 0
        assert root.cpu_seconds >= 0
