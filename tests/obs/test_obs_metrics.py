"""Metrics core: gating, label semantics, thread-safety, quantile exactness."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import SAMPLE_WINDOW, MetricsRegistry


class TestGate:
    def test_disabled_counter_records_nothing(self):
        c = obs.Counter()
        c.inc()
        assert c.value == 0

    def test_enabled_counter_records(self):
        obs.enable()
        c = obs.Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_always_counter_ignores_gate(self):
        assert not obs.enabled()
        c = obs.Counter(always=True)
        c.inc(4)
        assert c.value == 4

    def test_gauge_and_histogram_gated(self):
        g, h = obs.Gauge(), obs.Histogram()
        g.set(7)
        h.observe(0.5)
        assert g.value == 0 and h.count == 0
        obs.enable()
        g.set(7)
        h.observe(0.5)
        assert g.value == 7 and h.count == 1

    def test_counter_rejects_negative(self):
        obs.enable()
        with pytest.raises(ValueError):
            obs.Counter().inc(-1)


class TestFamilies:
    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", "events", labels=("kind",), always=True)
        fam.labels(kind="a").inc()
        fam.labels(kind="a").inc()
        fam.labels(kind="b").inc(5)
        assert fam.labels(kind="a").value == 2
        assert fam.labels(kind="b").value == 5
        assert fam.value == 7

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_wrong_label_count_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("y_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("1leading")

    def test_reset_zeroes_series_keeps_registration(self):
        reg = MetricsRegistry()
        fam = reg.counter("z_total", labels=("k",), always=True)
        fam.labels(k="x").inc(3)
        reg.reset()
        assert fam.labels(k="x").value == 0
        assert reg.get("z_total") is fam


class TestThreadSafety:
    def test_concurrent_writers_lose_no_increments(self):
        reg = MetricsRegistry()
        fam = reg.counter("hammer_total", labels=("worker",), always=True)
        hist = reg.histogram("hammer_seconds", always=True)
        n_threads, per_thread = 8, 2000
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            series = fam.labels(worker=str(worker % 2))
            for i in range(per_thread):
                series.inc()
                hist.observe(i * 1e-6)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert fam.value == n_threads * per_thread
        assert hist.count == n_threads * per_thread

    def test_concurrent_series_creation_is_single_instance(self):
        reg = MetricsRegistry()
        fam = reg.counter("race_total", labels=("k",), always=True)
        barrier = threading.Barrier(8)
        seen = []

        def create() -> None:
            barrier.wait()
            seen.append(fam.labels(k="same"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(s is seen[0] for s in seen)


class TestHistogramQuantiles:
    def test_quantiles_match_numpy_percentiles(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=0.01, size=1000)
        h = obs.Histogram(always=True)
        for s in samples:
            h.observe(s)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            np.testing.assert_allclose(
                h.quantile(q), np.percentile(samples, q * 100.0),
                rtol=1e-12, atol=0.0,
            )

    def test_quantile_window_keeps_newest(self):
        h = obs.Histogram(always=True, window=16)
        for v in range(100):
            h.observe(float(v))
        # only the last 16 samples (84..99) are retained
        assert h.quantile(0.0) == 84.0
        assert h.quantile(1.0) == 99.0
        assert h.count == 100  # bucket counts are never windowed

    def test_default_window_size(self):
        assert SAMPLE_WINDOW == 4096

    def test_bucket_counts_cumulative(self):
        h = obs.Histogram(buckets=(1.0, 2.0, 5.0), always=True)
        for v in (0.5, 1.5, 1.7, 3.0, 100.0):
            h.observe(v)
        buckets = dict(h.buckets())
        assert buckets[1.0] == 1
        assert buckets[2.0] == 3
        assert buckets[5.0] == 4
        assert buckets[float("inf")] == 5
        assert h.sum == pytest.approx(106.7)

    def test_empty_quantile_is_nan(self):
        assert np.isnan(obs.Histogram(always=True).quantile(0.5))

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            obs.Histogram(always=True).quantile(1.5)
