"""Smoke tests for the runnable examples.

Each example exposes its workload-building and study functions, so these tests
exercise them with small parameters (rather than the defaults) to keep the
suite fast while still covering the end-to-end code paths the examples show.
"""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example module by file path (examples/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickstartExample:
    def test_main_runs(self, capsys):
        quickstart = load_example("quickstart")
        quickstart.main()
        output = capsys.readouterr().out
        assert "normalized matrix" in output
        assert "factorized == materialized coefficients: True" in output


class TestChurnExample:
    def test_build_tables_shapes(self):
        churn = load_example("churn_prediction")
        customers, employers = churn.build_tables(num_customers=500, num_employers=20, seed=0)
        assert customers.num_rows == 500
        assert employers.num_rows == 20
        assert "country" in employers


class TestRecommendationExample:
    def test_build_star_schema(self):
        recsys = load_example("recommendation_star_schema")
        ratings, users, movies = recsys.build_star_schema(num_ratings=400, num_users=40,
                                                          num_movies=25, seed=1)
        assert ratings.num_rows == 400
        assert users.num_rows == 40
        assert movies.num_rows == 25
        assert set(ratings.column("user_id")) <= set(users.column("user_id"))


class TestMNJoinExample:
    def test_sweep_produces_monotone_output_sizes(self):
        mn = load_example("mn_join_analysis")
        lmm_results, crossprod_results = mn.sweep(uniqueness_degrees=(0.1, 0.5),
                                                  num_rows=100, num_features=6)
        assert len(lmm_results) == len(crossprod_results) == 2
        assert lmm_results[0].parameters["output_rows"] > lmm_results[1].parameters["output_rows"]


class TestOreScalabilityExample:
    def test_pk_fk_study_rows(self):
        ore = load_example("ore_scalability")
        rows = ore.pk_fk_study(feature_ratios=(1,))
        assert len(rows) == 1
        assert rows[0][0] == "1"

    def test_mn_study_rows(self):
        ore = load_example("ore_scalability")
        rows = ore.mn_study(uniqueness_degrees=(0.5,))
        assert len(rows) == 1


class TestServingExample:
    def test_register_and_serve(self, tmp_path):
        demo = load_example("serving_demo")
        customers, employers = demo.build_tables(num_customers=400, num_employers=20, seed=3)
        registry, dataset, customer_scaler, employer_scaler = demo.train_and_register(
            customers, employers, tmp_path / "registry")
        assert registry.versions("churn") == [1]
        report = demo.serve(registry, dataset, employers, customer_scaler, employer_scaler)
        assert 0.0 <= report["proba_before"] <= 1.0
        assert 0.0 <= report["proba_after"] <= 1.0
        assert report["stats"]["snapshot_version"] == 1
        assert report["stats"]["micro_batches"] >= 1


class TestRealDatasetsExample:
    def test_study_dataset_reports_four_algorithms(self):
        study = load_example("real_datasets_study")
        rows = study.study_dataset("walmart", scale=0.003)
        assert [name for name, _, _ in rows] == ["Lin. Reg.", "Log. Reg.", "K-Means", "GNMF"]
        assert all(np.isfinite(speedup) and speedup > 0 for _, _, speedup in rows)
