"""Tests for the Orion-style baseline and the materialized helpers."""

import numpy as np
import pytest

from repro.baselines.materialized import (
    run_materialized_gnmf,
    run_materialized_kmeans,
    run_materialized_linear_ne,
    run_materialized_logistic,
)
from repro.baselines.orion import OrionLogisticRegression
from repro.exceptions import ShapeError
from repro.ml.logistic_regression import LogisticRegressionGD


class TestOrionLogisticRegression:
    def _labels(self, dataset):
        return np.asarray(dataset.indicators[0].argmax(axis=1)).ravel()

    @pytest.mark.parametrize("update", ["paper", "exact"])
    def test_matches_morpheus_logistic(self, single_join_dense, update):
        dataset, normalized, _ = single_join_dense
        labels = self._labels(dataset)
        orion = OrionLogisticRegression(max_iter=4, step_size=1e-3, update=update)
        orion.fit(dataset.entity, labels, dataset.attributes[0], dataset.target)
        morpheus = LogisticRegressionGD(max_iter=4, step_size=1e-3, update=update)
        morpheus.fit(normalized, dataset.target)
        assert np.allclose(orion.coef_, morpheus.coef_, atol=1e-8)

    def test_matches_materialized_logistic(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        labels = self._labels(dataset)
        orion = OrionLogisticRegression(max_iter=3, step_size=1e-3)
        orion.fit(dataset.entity, labels, dataset.attributes[0], dataset.target)
        standard = run_materialized_logistic(materialized, dataset.target, max_iter=3,
                                             step_size=1e-3)
        assert np.allclose(orion.coef_, standard.coef_, atol=1e-8)

    def test_predict_scores_match_materialized(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        labels = self._labels(dataset)
        orion = OrionLogisticRegression(max_iter=3, step_size=1e-3)
        orion.fit(dataset.entity, labels, dataset.attributes[0], dataset.target)
        scores = orion.predict_scores(dataset.entity, labels, dataset.attributes[0])
        assert np.allclose(scores, materialized @ orion.coef_, atol=1e-10)

    def test_row_count_mismatch(self, single_join_dense):
        dataset, _, _ = single_join_dense
        labels = self._labels(dataset)
        with pytest.raises(ShapeError):
            OrionLogisticRegression(max_iter=1).fit(
                dataset.entity[:-1], labels, dataset.attributes[0], dataset.target)

    def test_out_of_range_labels(self, single_join_dense):
        dataset, _, _ = single_join_dense
        labels = self._labels(dataset).copy()
        labels[0] = dataset.attributes[0].shape[0] + 5
        with pytest.raises(ShapeError):
            OrionLogisticRegression(max_iter=1).fit(
                dataset.entity, labels, dataset.attributes[0], dataset.target)

    def test_invalid_update(self):
        with pytest.raises(ValueError):
            OrionLogisticRegression(update="nope")

    def test_predict_before_fit(self, single_join_dense):
        dataset, _, _ = single_join_dense
        with pytest.raises(RuntimeError):
            OrionLogisticRegression().predict_scores(
                dataset.entity, self._labels(dataset), dataset.attributes[0])


class TestMaterializedHelpers:
    def test_logistic_helper(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        model = run_materialized_logistic(materialized, dataset.target, max_iter=2)
        assert model.coef_.shape == (materialized.shape[1], 1)

    def test_linear_ne_helper(self, single_join_dense, rng):
        _, _, materialized = single_join_dense
        y = materialized @ rng.standard_normal((materialized.shape[1], 1))
        model = run_materialized_linear_ne(materialized, y)
        assert np.allclose(model.predict(materialized), y, atol=1e-6)

    def test_kmeans_helper(self, single_join_dense):
        _, _, materialized = single_join_dense
        model = run_materialized_kmeans(materialized, num_clusters=3, max_iter=3, seed=1)
        assert model.centroids_.shape == (materialized.shape[1], 3)

    def test_gnmf_helper(self, single_join_dense):
        _, _, materialized = single_join_dense
        model = run_materialized_gnmf(np.abs(materialized), rank=2, max_iter=3, seed=2)
        assert model.w_.shape == (materialized.shape[0], 2)
