"""Tests for the pseudo-inverse rewrite rules (paper Section 3.3.6, Appendix B)."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.rewrite.inversion import _is_full_rank
from repro.la.ops import indicator_from_labels


def pseudo_inverse_properties(matrix: np.ndarray, pinv: np.ndarray) -> None:
    """Assert the four Moore-Penrose conditions."""
    assert np.allclose(matrix @ pinv @ matrix, matrix, atol=1e-7)
    assert np.allclose(pinv @ matrix @ pinv, pinv, atol=1e-7)
    assert np.allclose((matrix @ pinv).T, matrix @ pinv, atol=1e-7)
    assert np.allclose((pinv @ matrix).T, pinv @ matrix, atol=1e-7)


class TestGinvTallMatrix:
    def test_matches_numpy_pinv(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.ginv(), np.linalg.pinv(materialized), atol=1e-7)

    def test_moore_penrose_conditions(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        pseudo_inverse_properties(materialized, normalized.ginv())

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.ginv(), np.linalg.pinv(materialized), atol=1e-7)

    def test_no_entity_features(self, no_entity_features):
        normalized, dense = no_entity_features
        assert np.allclose(normalized.ginv(), np.linalg.pinv(dense), atol=1e-7)

    def test_output_shape(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert normalized.ginv().shape == (materialized.shape[1], materialized.shape[0])


class TestGinvWideMatrix:
    def _wide_normalized(self):
        rng = np.random.default_rng(17)
        n_s, d_s, n_r, d_r = 8, 4, 4, 9  # d = 13 > n = 8
        entity = rng.standard_normal((n_s, d_s))
        attribute = rng.standard_normal((n_r, d_r))
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        indicator = indicator_from_labels(labels, num_columns=n_r)
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        return normalized, np.asarray(normalized.materialize())

    def test_matches_numpy_pinv(self):
        normalized, materialized = self._wide_normalized()
        assert np.allclose(normalized.ginv(), np.linalg.pinv(materialized), atol=1e-7)

    def test_moore_penrose_conditions(self):
        normalized, materialized = self._wide_normalized()
        pseudo_inverse_properties(materialized, normalized.ginv())


class TestGinvTransposed:
    def test_transposed_matches_pinv_of_transpose(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.ginv(), np.linalg.pinv(materialized.T), atol=1e-7)

    def test_ginv_of_transpose_is_transpose_of_ginv(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert np.allclose(normalized.T.ginv(), normalized.ginv().T, atol=1e-9)


class TestRankDeficientFallback:
    def test_duplicate_columns_still_correct(self):
        """A rank-deficient T must fall back to materialization and stay exact."""
        rng = np.random.default_rng(23)
        n_s, n_r = 30, 6
        entity_base = rng.standard_normal((n_s, 2))
        entity = np.hstack([entity_base, entity_base])  # duplicated -> rank deficient
        attribute = rng.standard_normal((n_r, 3))
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        indicator = indicator_from_labels(labels, num_columns=n_r)
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        materialized = np.asarray(normalized.materialize())
        assert np.allclose(normalized.ginv(), np.linalg.pinv(materialized), atol=1e-7)

    def test_is_full_rank_detects_rank_deficiency(self):
        full = np.array([[2.0, 0.0], [0.0, 1.0]])
        deficient = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert _is_full_rank(full)
        assert not _is_full_rank(deficient)

    def test_is_full_rank_empty(self):
        assert not _is_full_rank(np.zeros((0, 0)))

    def test_is_full_rank_zero_matrix(self):
        assert not _is_full_rank(np.zeros((3, 3)))


class TestTheoremB1:
    """If T is invertible then TR <= 1/FR + 1 (Appendix B)."""

    @pytest.mark.parametrize("n_r,d_s,d_r", [(4, 2, 4), (3, 3, 3), (5, 1, 5)])
    def test_invertible_square_matrices_satisfy_bound(self, n_r, d_s, d_r):
        rng = np.random.default_rng(31)
        n_s = d_s + d_r  # square T
        if n_s < n_r:
            pytest.skip("cannot reference every attribute row")
        entity = rng.standard_normal((n_s, d_s))
        attribute = rng.standard_normal((n_r, d_r))
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        indicator = indicator_from_labels(labels, num_columns=n_r)
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        materialized = np.asarray(normalized.materialize())
        if np.linalg.matrix_rank(materialized) == n_s:
            tuple_ratio = n_s / n_r
            feature_ratio = d_r / d_s
            assert tuple_ratio <= 1.0 / feature_ratio + 1.0 + 1e-9
