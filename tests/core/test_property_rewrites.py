"""Property-based tests: every rewrite equals its materialized counterpart.

These tests generate random normalized matrices (random dimensions, random
foreign-key assignments, random values, optional sparsity and multiple joins)
with Hypothesis and assert that each factorized operator produces the same
result as the standard operator applied to the materialized matrix --
the paper's exact-arithmetic equivalence claim (footnote 7), up to
floating-point tolerance.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la.ops import indicator_from_labels

# Keep values in a moderate range so exp/power stay finite and comparisons tight.
_VALUE = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


@st.composite
def normalized_matrices(draw, max_joins: int = 2, allow_empty_entity: bool = True,
                        allow_sparse: bool = True):
    """Generate a random star-schema normalized matrix and its dense materialization."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    num_joins = draw(st.integers(min_value=1, max_value=max_joins))
    n_s = draw(st.integers(min_value=6, max_value=40))
    if allow_empty_entity and draw(st.booleans()):
        d_s = 0
    else:
        d_s = draw(st.integers(min_value=1, max_value=6))
    entity = rng.uniform(-3, 3, size=(n_s, d_s)) if d_s else None

    indicators, attributes = [], []
    for _ in range(num_joins):
        n_r = draw(st.integers(min_value=1, max_value=min(10, n_s)))
        d_r = draw(st.integers(min_value=1, max_value=6))
        values = rng.uniform(-3, 3, size=(n_r, d_r))
        if allow_sparse and draw(st.booleans()):
            mask = rng.random(values.shape) < 0.5
            values = values * mask
            attributes.append(sp.csr_matrix(values))
        else:
            attributes.append(values)
        labels = np.concatenate([
            np.arange(n_r, dtype=np.int64),
            rng.integers(0, n_r, size=n_s - n_r, dtype=np.int64),
        ])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_r))

    normalized = NormalizedMatrix(entity, indicators, attributes)
    return normalized, normalized.to_dense(), rng


@st.composite
def mn_matrices(draw, max_components: int = 3):
    """Generate a random multi-component M:N normalized matrix."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    num_components = draw(st.integers(min_value=1, max_value=max_components))
    n_out = draw(st.integers(min_value=8, max_value=40))
    indicators, attributes = [], []
    for _ in range(num_components):
        n_r = draw(st.integers(min_value=1, max_value=min(8, n_out)))
        d_r = draw(st.integers(min_value=1, max_value=5))
        attributes.append(rng.uniform(-3, 3, size=(n_r, d_r)))
        labels = np.concatenate([
            np.arange(n_r, dtype=np.int64),
            rng.integers(0, n_r, size=n_out - n_r, dtype=np.int64),
        ])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_r))
    normalized = MNNormalizedMatrix(indicators, attributes)
    return normalized, normalized.to_dense(), rng


SETTINGS = dict(max_examples=40, deadline=None)


class TestStarRewriteProperties:
    @given(normalized_matrices(), _VALUE)
    @settings(**SETTINGS)
    def test_scalar_multiplication(self, data, scalar):
        normalized, dense, _ = data
        assert np.allclose((normalized * scalar).to_dense(), dense * scalar)

    @given(normalized_matrices(), _VALUE)
    @settings(**SETTINGS)
    def test_scalar_addition(self, data, scalar):
        normalized, dense, _ = data
        assert np.allclose((normalized + scalar).to_dense(), dense + scalar)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_elementwise_function(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.apply(np.tanh).to_dense(), np.tanh(dense), atol=1e-9)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_aggregations(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.rowsums().ravel(), dense.sum(axis=1), atol=1e-8)
        assert np.allclose(normalized.colsums().ravel(), dense.sum(axis=0), atol=1e-8)
        assert np.isclose(normalized.total_sum(), dense.sum(), atol=1e-7)

    @given(normalized_matrices(), st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_lmm(self, data, width):
        normalized, dense, rng = data
        x = rng.standard_normal((dense.shape[1], width))
        assert np.allclose(normalized @ x, dense @ x, atol=1e-8)

    @given(normalized_matrices(), st.integers(min_value=1, max_value=4))
    @settings(**SETTINGS)
    def test_rmm(self, data, width):
        normalized, dense, rng = data
        x = rng.standard_normal((width, dense.shape[0]))
        assert np.allclose(x @ normalized, x @ dense, atol=1e-8)

    @given(normalized_matrices(), st.integers(min_value=1, max_value=3))
    @settings(**SETTINGS)
    def test_transposed_lmm(self, data, width):
        normalized, dense, rng = data
        p = rng.standard_normal((dense.shape[0], width))
        assert np.allclose(normalized.T @ p, dense.T @ p, atol=1e-8)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_crossprod_both_methods(self, data):
        normalized, dense, _ = data
        reference = dense.T @ dense
        assert np.allclose(normalized.crossprod("efficient"), reference, atol=1e-7)
        assert np.allclose(normalized.crossprod("naive"), reference, atol=1e-7)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_gram_transposed(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.T.crossprod(), dense @ dense.T, atol=1e-7)

    @given(normalized_matrices(max_joins=1, allow_empty_entity=False, allow_sparse=False))
    @settings(max_examples=20, deadline=None)
    def test_ginv(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.ginv(), np.linalg.pinv(dense), atol=1e-5)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_materialize_transpose_consistency(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.T.to_dense(), dense.T)


class TestMNRewriteProperties:
    @given(mn_matrices(), _VALUE)
    @settings(**SETTINGS)
    def test_scalar_ops(self, data, scalar):
        normalized, dense, _ = data
        assert np.allclose((normalized * scalar).to_dense(), dense * scalar)
        assert np.allclose((normalized + scalar).to_dense(), dense + scalar)

    @given(mn_matrices())
    @settings(**SETTINGS)
    def test_aggregations(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.rowsums().ravel(), dense.sum(axis=1), atol=1e-8)
        assert np.allclose(normalized.colsums().ravel(), dense.sum(axis=0), atol=1e-8)
        assert np.isclose(normalized.total_sum(), dense.sum(), atol=1e-7)

    @given(mn_matrices(), st.integers(min_value=1, max_value=3))
    @settings(**SETTINGS)
    def test_lmm_and_rmm(self, data, width):
        normalized, dense, rng = data
        x = rng.standard_normal((dense.shape[1], width))
        y = rng.standard_normal((width, dense.shape[0]))
        assert np.allclose(normalized @ x, dense @ x, atol=1e-8)
        assert np.allclose(y @ normalized, y @ dense, atol=1e-8)

    @given(mn_matrices())
    @settings(**SETTINGS)
    def test_crossprod(self, data):
        normalized, dense, _ = data
        assert np.allclose(normalized.crossprod(), dense.T @ dense, atol=1e-7)
        assert np.allclose(normalized.T.crossprod(), dense @ dense.T, atol=1e-7)


class TestAlgebraicInvariants:
    """Cross-operator identities that must hold regardless of representation."""

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_colsums_equals_ones_rmm(self, data):
        normalized, dense, _ = data
        ones = np.ones((1, dense.shape[0]))
        assert np.allclose(normalized.colsums(), ones @ normalized, atol=1e-8)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_rowsums_equals_lmm_with_ones(self, data):
        normalized, dense, _ = data
        ones = np.ones((dense.shape[1], 1))
        assert np.allclose(normalized.rowsums(), normalized @ ones, atol=1e-8)

    @given(normalized_matrices())
    @settings(**SETTINGS)
    def test_crossprod_trace_equals_sum_of_squares(self, data):
        normalized, dense, _ = data
        gram = normalized.crossprod()
        assert np.isclose(np.trace(gram), (normalized ** 2).total_sum(), atol=1e-6)

    @given(normalized_matrices(), _VALUE)
    @settings(**SETTINGS)
    def test_scalar_distributes_over_lmm(self, data, scalar):
        normalized, dense, rng = data
        x = rng.standard_normal((dense.shape[1], 2))
        assert np.allclose((normalized * scalar) @ x, scalar * (normalized @ x), atol=1e-7)
