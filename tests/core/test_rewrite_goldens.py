"""Golden-file regression tests for the factorized rewrite layer.

Each file under ``tests/goldens/`` pins the SSA-style primitive-call trace of
one Table-1 operator on the canonical schemas of
:mod:`repro.core.rewrite.trace`.  The tests assert *exact structural
equality*: a refactor of the planner or the rewrite rules that changes the
factorized algebra -- a different multiplication order, a dropped
push-down, an extra materialization -- fails here even if it stays
numerically correct.

To regenerate after an *intentional* algebra change::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/core/test_rewrite_goldens.py

and commit the diff (review it: every changed step is a changed rewrite).
"""

from __future__ import annotations

import functools
import json
import os
import pathlib

import pytest

from repro.core.rewrite.trace import (
    PRIMITIVES,
    canonical_star_schema,
    table1_traces,
    trace_rewrites,
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "goldens"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))


@functools.lru_cache(maxsize=1)
def traces() -> dict:
    """All traces, computed once per session *inside* the tests -- a tracing
    or rewrite-layer bug then fails the tests with readable ids instead of
    erroring the whole module at pytest collection time."""
    return table1_traces()


def _golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.json"


def _golden_names():
    # Collection-time parametrization from the committed files only; new or
    # removed traces are caught by test_no_stale_goldens.
    return sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))


@pytest.mark.parametrize("name", _golden_names())
def test_rewrite_tree_matches_golden(name):
    """The rewritten operator tree is structurally identical to the committed golden."""
    actual = traces()[name]
    path = _golden_path(name)
    if REGEN:
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
    expected = json.loads(path.read_text())
    assert actual == expected, (
        f"rewritten operator tree for {name!r} changed; if intentional, regenerate "
        f"goldens with REPRO_REGEN_GOLDENS=1 and review the diff"
    )


def test_no_stale_goldens():
    """Every committed golden corresponds to a traced operator (and vice versa).

    With ``REPRO_REGEN_GOLDENS=1`` this test also (re)writes every golden
    first, so a fresh operator gains its file here before the set comparison.
    """
    actual = traces()
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name, tree in actual.items():
            _golden_path(name).write_text(
                json.dumps(tree, indent=2, sort_keys=True) + "\n")
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(actual)


def test_traces_are_deterministic():
    """Two independent trace runs produce identical structures."""
    assert table1_traces() == traces()


def test_lmm_preserves_factorized_multiplication_order():
    """The crucial rewrite decision: ``K (R X)``, never ``(K R) X`` (Section 3.3.3)."""
    steps = traces()["star_lmm"]["steps"]
    by_id = {s.get("id"): s for s in steps}
    k_products = [s for s in steps if s["op"] == "matmul"
                  and s["args"][0] in ("K1", "K2")]
    assert k_products, "LMM trace lost its indicator products"
    for step in k_products:
        inner = by_id[step["args"][1]]
        assert inner["op"] == "matmul" and inner["args"][0] in ("R1", "R2"), (
            "LMM no longer computes the small R-block product before scattering "
            "through K -- this is the materialized order the paper warns about"
        )


def test_tracer_restores_primitives():
    """Patched primitives are restored even when the traced operator raises."""
    from repro.core.rewrite import multiplication

    original = multiplication.matmul
    star, named = canonical_star_schema()
    with pytest.raises(Exception):
        with trace_rewrites(named):
            assert multiplication.matmul is not original
            raise RuntimeError("boom")
    assert multiplication.matmul is original


def test_primitive_set_is_closed():
    """Traced steps only use the declared primitive vocabulary (closure property)."""
    for tree in traces().values():
        for step in tree["steps"]:
            assert step["op"] in PRIMITIVES
