"""Tests for the M:N normalized matrix (paper Section 3.6, Appendices D/E)."""

import numpy as np
import pytest

from repro.core.mn_matrix import MNNormalizedMatrix
from repro.exceptions import IndicatorError, NotSupportedError, ShapeError
from repro.la.ops import indicator_from_labels


class TestConstruction:
    def test_shape(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert normalized.shape == materialized.shape

    def test_component_metadata(self, mn_dataset):
        _, normalized, _ = mn_dataset
        assert normalized.num_components == 2
        assert normalized.component_widths == [6, 6]

    def test_multi_component(self, mn_multi_component):
        normalized, materialized = mn_multi_component
        assert normalized.num_components == 3
        assert normalized.shape == materialized.shape

    def test_from_two_tables_constructor(self, mn_dataset):
        dataset, _, materialized = mn_dataset
        normalized = MNNormalizedMatrix.from_two_tables(
            dataset.left, dataset.left_indicator, dataset.right, dataset.right_indicator)
        assert np.allclose(normalized.to_dense(), materialized)

    def test_requires_components(self):
        with pytest.raises(ShapeError):
            MNNormalizedMatrix([], [])

    def test_indicator_attribute_count_mismatch(self, mn_dataset):
        dataset, _, _ = mn_dataset
        with pytest.raises(ShapeError):
            MNNormalizedMatrix([dataset.left_indicator], [dataset.left, dataset.right])

    def test_row_count_mismatch_rejected(self, mn_dataset):
        dataset, _, _ = mn_dataset
        truncated = dataset.right_indicator[:-1, :]
        with pytest.raises(ShapeError):
            MNNormalizedMatrix([dataset.left_indicator, truncated], [dataset.left, dataset.right])

    def test_invalid_indicator_rejected(self, mn_dataset):
        dataset, _, _ = mn_dataset
        bad = dataset.left_indicator.toarray()
        bad[0, :] = 0
        with pytest.raises(IndicatorError):
            MNNormalizedMatrix([bad, dataset.right_indicator], [dataset.left, dataset.right])

    def test_invalid_crossprod_method(self, mn_dataset):
        dataset, _, _ = mn_dataset
        with pytest.raises(ValueError):
            MNNormalizedMatrix([dataset.left_indicator, dataset.right_indicator],
                               [dataset.left, dataset.right], crossprod_method="magic")

    def test_redundancy_ratio_grows_with_fanout(self, mn_dataset):
        _, normalized, _ = mn_dataset
        assert normalized.redundancy_ratio() > 1.0


class TestScalarOps:
    @pytest.mark.parametrize("expression,reference", [
        (lambda t: t * 2.0, lambda m: m * 2.0),
        (lambda t: 2.0 * t, lambda m: 2.0 * m),
        (lambda t: t + 1.0, lambda m: m + 1.0),
        (lambda t: t - 1.0, lambda m: m - 1.0),
        (lambda t: 1.0 - t, lambda m: 1.0 - m),
        (lambda t: t / 2.0, lambda m: m / 2.0),
        (lambda t: t ** 2, lambda m: m ** 2),
        (lambda t: -t, lambda m: -m),
    ])
    def test_scalar_ops_match(self, mn_dataset, expression, reference):
        _, normalized, materialized = mn_dataset
        result = expression(normalized)
        assert isinstance(result, MNNormalizedMatrix)
        assert np.allclose(result.to_dense(), reference(materialized))

    def test_apply_function(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.apply(np.tanh).to_dense(), np.tanh(materialized))

    def test_exp_convenience(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.exp().to_dense(), np.exp(materialized))

    def test_elementwise_matrix_op_materializes(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        other = rng.standard_normal(materialized.shape)
        assert np.allclose(normalized + other, materialized + other)

    def test_elementwise_matrix_op_shape_mismatch(self, mn_dataset, rng):
        _, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            normalized * rng.standard_normal((2, 2))


class TestAggregations:
    def test_rowsums(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.rowsums().ravel(), materialized.sum(axis=1))

    def test_colsums(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.colsums().ravel(), materialized.sum(axis=0))

    def test_total_sum(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.isclose(normalized.total_sum(), materialized.sum())

    def test_multi_component_aggregations(self, mn_multi_component):
        normalized, materialized = mn_multi_component
        assert np.allclose(normalized.rowsums().ravel(), materialized.sum(axis=1))
        assert np.allclose(normalized.colsums().ravel(), materialized.sum(axis=0))
        assert np.isclose(normalized.total_sum(), materialized.sum())

    def test_transposed_aggregations(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.T.rowsums().ravel(), materialized.T.sum(axis=1))
        assert np.allclose(normalized.T.colsums().ravel(), materialized.T.sum(axis=0))

    def test_numpy_style_sum(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.isclose(normalized.sum(), materialized.sum())
        assert np.allclose(normalized.sum(axis=0).ravel(), materialized.sum(axis=0))
        assert np.allclose(normalized.sum(axis=1).ravel(), materialized.sum(axis=1))
        with pytest.raises(ValueError):
            normalized.sum(axis=3)


class TestMultiplication:
    def test_lmm(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        x = rng.standard_normal((materialized.shape[1], 3))
        assert np.allclose(normalized @ x, materialized @ x)

    def test_rmm(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        x = rng.standard_normal((2, materialized.shape[0]))
        assert np.allclose(x @ normalized, x @ materialized)

    def test_transposed_lmm(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        p = rng.standard_normal((materialized.shape[0], 2))
        assert np.allclose(normalized.T @ p, materialized.T @ p)

    def test_transposed_rmm(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        x = rng.standard_normal((2, materialized.shape[1]))
        assert np.allclose(x @ normalized.T, x @ materialized.T)

    def test_multi_component_lmm(self, mn_multi_component, rng):
        normalized, materialized = mn_multi_component
        x = rng.standard_normal((materialized.shape[1], 2))
        assert np.allclose(normalized @ x, materialized @ x)

    def test_mn_times_mn_falls_back(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        rng = np.random.default_rng(3)
        # Build a second M:N matrix whose row count equals the first one's width.
        width = materialized.shape[1]
        components = [rng.standard_normal((4, 3)), rng.standard_normal((6, 2))]
        indicators = [
            indicator_from_labels(np.concatenate([np.arange(4), rng.integers(0, 4, size=width - 4)]),
                                  num_columns=4),
            indicator_from_labels(np.concatenate([np.arange(6), rng.integers(0, 6, size=width - 6)]),
                                  num_columns=6),
        ]
        other = MNNormalizedMatrix(indicators, components)
        expected = materialized @ other.to_dense()
        assert np.allclose(normalized @ other, expected)

    def test_dot_alias(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        x = rng.standard_normal((materialized.shape[1], 1))
        assert np.allclose(normalized.dot(x), materialized @ x)


class TestCrossprodAndGinv:
    def test_crossprod_efficient(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.crossprod(), materialized.T @ materialized)

    def test_crossprod_naive(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.crossprod("naive"), materialized.T @ materialized)

    def test_crossprod_multi_component(self, mn_multi_component):
        normalized, materialized = mn_multi_component
        assert np.allclose(normalized.crossprod(), materialized.T @ materialized)

    def test_gram_transposed(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.T.crossprod(), materialized @ materialized.T)

    def test_ginv(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.ginv(), np.linalg.pinv(materialized), atol=1e-6)

    def test_ginv_transposed(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.T.ginv(), np.linalg.pinv(materialized.T), atol=1e-6)

    def test_equals_materialized_helper(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert normalized.equals_materialized(materialized)
        assert not normalized.equals_materialized(materialized * 2.0)


class TestTransposeFlag:
    def test_double_transpose(self, mn_dataset):
        _, normalized, _ = mn_dataset
        assert not normalized.T.T.transposed

    def test_transposed_shape(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert normalized.T.shape == materialized.T.shape

    def test_transposed_materialize(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        assert np.allclose(normalized.T.to_dense(), materialized.T)


class TestMNTakeRows:
    """Regression: M:N matrices lacked take_rows, so splits/batching silently
    only worked on star schemas."""

    def test_selected_rows_match_materialized(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        indices = np.array([0, 5, 9, 17, 3])
        subset = normalized.take_rows(indices)
        assert type(subset) is type(normalized)
        assert np.allclose(subset.to_dense(), materialized[indices, :])

    def test_multi_component(self, mn_multi_component):
        normalized, materialized = mn_multi_component
        indices = np.arange(0, materialized.shape[0], 3)
        assert np.allclose(normalized.take_rows(indices).to_dense(), materialized[indices, :])

    def test_boolean_mask(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        mask = np.zeros(materialized.shape[0], dtype=bool)
        mask[::4] = True
        assert np.allclose(normalized.take_rows(mask).to_dense(), materialized[mask, :])

    def test_duplicate_and_reordered_rows(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        indices = np.array([7, 7, 1, 0])
        assert np.allclose(normalized.take_rows(indices).to_dense(), materialized[indices, :])

    def test_component_tables_are_shared(self, mn_dataset):
        _, normalized, _ = mn_dataset
        subset = normalized.take_rows(np.array([0, 1, 2]))
        assert all(a is b for a, b in zip(subset.attributes, normalized.attributes))

    def test_out_of_range_rejected(self, mn_dataset):
        _, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            normalized.take_rows(np.array([0, normalized.shape[0]]))

    def test_wrong_mask_length_rejected(self, mn_dataset):
        _, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            normalized.take_rows(np.zeros(3, dtype=bool))

    def test_transposed_rejected(self, mn_dataset):
        _, normalized, _ = mn_dataset
        with pytest.raises(NotSupportedError):
            normalized.T.take_rows(np.array([0]))

    def test_operators_on_subset_stay_factorized(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        indices = np.array([2, 4, 6, 8, 10])
        subset = normalized.take_rows(indices)
        x = rng.standard_normal((materialized.shape[1], 2))
        assert np.allclose(subset @ x, materialized[indices] @ x)
        assert np.allclose(subset.crossprod(),
                           materialized[indices].T @ materialized[indices])
