"""Unit tests for the cost-based adaptive execution planner.

Everything here runs against :meth:`CalibrationProfile.default` so no timing
ever happens inside a test: the planner's *ranking* logic is deterministic
given a profile, and the calibration probe has its own (smoke-level) test.
"""

from __future__ import annotations

import json
import math
import pathlib

import numpy as np
import pytest

from repro.bench.harness import PlanEvaluation
from repro.core.cost import CostModel, Operator
from repro.core.planner import (
    CalibrationProfile,
    Plan,
    Planner,
    WorkloadDescriptor,
    describe_data,
)
from repro.core.planner.workload import OperatorUse
from repro.la.backend import backend_capabilities


@pytest.fixture
def planner() -> Planner:
    return Planner(calibration=CalibrationProfile.default(), shard_candidates=(2, 4))


@pytest.fixture
def redundant():
    """TR = 20, FR = 4 at 8000x50: deep inside the factorize-wins region, and
    large enough that arithmetic, not Python dispatch overhead, dominates the
    predicted costs (at the 240x15 scale of the shared ``single_join_dense``
    fixture the planner correctly prefers materialized execution -- the same
    regime the paper's thresholds guard)."""
    from repro.datasets.synthetic import SyntheticPKFKConfig, generate_pk_fk

    config = SyntheticPKFKConfig.from_ratios(
        tuple_ratio=20, feature_ratio=4, num_attribute_rows=400,
        num_entity_features=10, seed=0)
    return generate_pk_fk(config).normalized


class TestCalibrationProfile:
    def test_default_is_deterministic(self):
        assert CalibrationProfile.default() == CalibrationProfile.default()
        assert CalibrationProfile.default().source == "default"

    def test_json_roundtrip(self, tmp_path):
        profile = CalibrationProfile.default()
        path = tmp_path / "calibration.json"
        profile.save(path)
        assert CalibrationProfile.load(path) == profile

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="unsupported calibration format"):
            CalibrationProfile.load(path)

    def test_cache_path_env_override(self, monkeypatch, tmp_path):
        from repro.core.planner import cache_path

        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_CALIBRATION_CACHE", str(target))
        assert cache_path() == target
        monkeypatch.delenv("REPRO_CALIBRATION_CACHE")
        assert cache_path() == pathlib.Path.home() / ".cache" / "morpheus-repro" / "calibration.json"

    def test_get_profile_default_mode_skips_disk(self, monkeypatch, tmp_path):
        from repro.core.planner import get_profile, reset_profile_cache

        monkeypatch.setenv("REPRO_CALIBRATION", "default")
        monkeypatch.setenv("REPRO_CALIBRATION_CACHE", str(tmp_path / "calib.json"))
        reset_profile_cache()
        profile = get_profile()
        assert profile == CalibrationProfile.default()
        assert not (tmp_path / "calib.json").exists()
        reset_profile_cache()

    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        # Regression: save() used to write the cache file in place, so a
        # concurrent reader could observe a torn JSON document.
        profile = CalibrationProfile.default()
        path = tmp_path / "nested" / "calibration.json"
        profile.save(path)
        profile.save(path)  # overwrite path exercises os.replace on existing
        assert CalibrationProfile.load(path) == profile
        leftovers = [p for p in path.parent.iterdir() if p.name != path.name]
        assert leftovers == []

    def test_torn_cache_file_triggers_reprobe(self, monkeypatch, tmp_path):
        # A corrupt (half-written) cache must not crash get_profile in auto
        # mode -- it re-probes and rewrites the cache.
        from repro.core.planner import get_profile, reset_profile_cache
        from repro.core.planner import calibration as calibration_module

        cache = tmp_path / "calibration.json"
        cache.write_text('{"version": 2, "dense_flops": 2.5e9, "spar')  # torn
        monkeypatch.setenv("REPRO_CALIBRATION", "auto")
        monkeypatch.setenv("REPRO_CALIBRATION_CACHE", str(cache))
        probed = CalibrationProfile.default()
        monkeypatch.setattr(calibration_module, "probe", lambda: probed)
        reset_profile_cache()
        try:
            assert get_profile() == probed
            assert CalibrationProfile.load(cache) == probed  # cache repaired
        finally:
            reset_profile_cache()

    def test_probe_produces_positive_constants(self):
        from repro.core.planner import probe

        profile = probe(repeats=1)
        assert profile.source == "probe"
        assert profile.dense_flops > 0
        assert profile.sparse_flops > 0
        assert profile.dispatch_overhead_s > 0
        assert profile.shard_overhead_s > 0
        assert profile.materialize_bandwidth > 0
        assert 0.1 <= profile.parallel_efficiency <= 1.0


class TestWorkloadDescriptor:
    def test_per_algorithm_footprints_cover_table1_ops(self):
        logreg = WorkloadDescriptor.logistic_regression(10)
        assert logreg.iterations == 10
        assert {u.operator for u in logreg.uses} == {Operator.LMM, Operator.RMM}

        kmeans = WorkloadDescriptor.kmeans(num_clusters=7, max_iter=5)
        widths = {u.operator: u.x_cols for u in kmeans.uses}
        assert widths[Operator.LMM] == 7
        invariant = [u for u in kmeans.uses if not u.per_iteration]
        assert invariant, "kmeans precomputations must be loop-invariant"

    def test_linreg_gd_lazy_variant_hoists_invariants(self):
        wl = WorkloadDescriptor.linear_regression_gd(50)
        assert wl.lazy_uses is not None
        assert all(not u.per_iteration for u in wl.lazy_uses)
        assert wl.uses_for_engine("lazy") == wl.lazy_uses
        assert wl.uses_for_engine("eager") == wl.uses

    def test_total_count_scales_with_iterations(self):
        wl = WorkloadDescriptor.gnmf(rank=3, max_iter=8)
        assert wl.total_count(wl.uses[0]) == 8
        once = OperatorUse(Operator.CROSSPROD, per_iteration=False)
        assert wl.total_count(once) == 1


class TestDescribeData:
    def test_normalized_star(self, redundant):
        profile = describe_data(redundant)
        assert profile.kind == "normalized"
        assert profile.can_factorize
        assert profile.n_rows == redundant.shape[0]
        assert profile.tuple_ratio == pytest.approx(redundant.tuple_ratio)
        assert isinstance(profile.model, CostModel)

    def test_transposed_normalized_uses_untransposed_dims(self, redundant):
        profile = describe_data(redundant.T)
        assert profile.n_rows == redundant.shape[0]
        assert profile.n_cols == redundant.shape[1]

    def test_mn_normalized(self, mn_dataset):
        _, normalized, _ = mn_dataset
        profile = describe_data(normalized)
        assert profile.kind == "mn-normalized"
        assert profile.can_factorize
        assert profile.redundancy_ratio == pytest.approx(normalized.redundancy_ratio())

    def test_plain_matrix(self):
        profile = describe_data(np.ones((30, 4)))
        assert profile.kind == "plain"
        assert not profile.can_factorize
        assert profile.num_joins == 0

    def test_lazy_view_describes_the_wrapped_operand(self, redundant):
        # Planner.plan(TN.lazy()) must see the normalized matrix, not a
        # fixed-layout graph leaf.
        profile = describe_data(redundant.lazy())
        assert profile.kind == "normalized"
        assert profile.can_factorize
        plan = Planner(calibration=CalibrationProfile.default()).plan(
            redundant.lazy(), WorkloadDescriptor.logistic_regression(20))
        assert plan.factorized

    def test_describe_data_ratios_guard_degenerate_schemas(self):
        # The planner reads the ratios off the matrix, whose zero guards turn
        # degenerate schemas into infinities rather than ZeroDivisionError.
        import scipy.sparse as sp

        from repro.core.normalized_matrix import NormalizedMatrix

        degenerate = NormalizedMatrix(np.zeros((5, 2)), [sp.csr_matrix((5, 0))],
                                      [np.zeros((0, 3))], validate=False)
        profile = describe_data(degenerate)
        assert profile.tuple_ratio == float("inf")


class TestPlannerChoices:
    def test_redundant_data_factorizes(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.logistic_regression(20))
        assert plan.factorized
        assert plan.threshold_rule_choice == "factorize"

    def test_low_redundancy_materializes_under_long_workloads(self, planner):
        from repro.datasets.synthetic import SyntheticPKFKConfig, generate_pk_fk

        config = SyntheticPKFKConfig.from_ratios(
            tuple_ratio=1, feature_ratio=0.25, num_attribute_rows=200,
            num_entity_features=8, seed=0)
        dataset = generate_pk_fk(config)
        plan = planner.plan(dataset.normalized,
                            WorkloadDescriptor.logistic_regression(50))
        assert not plan.factorized
        assert plan.threshold_rule_choice == "materialize"

    def test_linreg_gd_prefers_lazy_memoization(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.linear_regression_gd(40))
        assert plan.engine == "lazy"

    def test_logreg_prefers_eager_over_lazy_bookkeeping(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.logistic_regression(40))
        assert plan.engine == "eager"

    def test_wide_matrix_linreg_gd_prefers_eager(self, planner):
        # On a short-and-wide matrix the lazy engine's per-iteration d x d
        # gram-vector product outweighs the hoisted data passes; the planner
        # must charge it (lazy_gram_applies) and pick eager.
        from repro.core.normalized_matrix import NormalizedMatrix
        from repro.la.ops import indicator_from_labels

        rng = np.random.default_rng(0)
        n_s, n_r = 200, 50
        entity = rng.standard_normal((n_s, 100))
        attribute = rng.standard_normal((n_r, 900))
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        wide = NormalizedMatrix(entity, [indicator_from_labels(labels, num_columns=n_r)],
                                [attribute])  # 200 x 1000
        plan = planner.plan(wide, WorkloadDescriptor.linear_regression_gd(200))
        assert plan.engine == "eager"

    def test_plain_input_never_plans_factorized(self, planner):
        plan = planner.plan(np.ones((100, 6)), WorkloadDescriptor.generic())
        assert all(not c.factorized for c in plan.candidates)
        assert plan.threshold_rule_choice is None

    def test_pinned_shard_count_restricts_the_axis(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.generic(), n_shards=2)
        assert {c.n_shards for c in plan.candidates} == {2}
        assert plan.n_jobs == 2
        assert plan.backend == "sharded"

    def test_shard_axis_clamped_to_row_count(self, planner):
        plan = planner.plan(np.ones((3, 2)), WorkloadDescriptor.generic())
        assert {c.n_shards for c in plan.candidates} == {1, 2}

    def test_sharding_wins_when_parallelism_is_cheap(self, redundant, monkeypatch):
        # Free fan-out, four workers, perfectly efficient: the cost model must
        # rank the 4-shard candidate first.
        from dataclasses import replace

        import repro.la.parallel as parallel

        monkeypatch.setattr(parallel, "default_workers", lambda: 4)
        cheap = replace(CalibrationProfile.default(),
                        dispatch_overhead_s=0.0, sparse_dispatch_overhead_s=0.0,
                        shard_overhead_s=0.0, parallel_efficiency=1.0)
        planner = Planner(calibration=cheap, shard_candidates=(4,))
        plan = planner.plan(redundant, WorkloadDescriptor.logistic_regression(30))
        assert plan.backend == "sharded"
        assert plan.n_jobs == 4

    def test_sharding_loses_when_fanout_is_expensive(self, planner, redundant):
        # The default profile's per-shard dispatch overhead dwarfs the
        # arithmetic of this small matrix, so serial execution must win.
        plan = planner.plan(redundant, WorkloadDescriptor.logistic_regression(30))
        assert plan.backend != "sharded"

    def test_chunked_candidates_only_when_requested(self, redundant):
        base = Planner(calibration=CalibrationProfile.default(), shard_candidates=())
        assert all(c.backend != "chunked" for c in base.plan(redundant).candidates)
        chunky = Planner(calibration=CalibrationProfile.default(),
                         shard_candidates=(), include_chunked=True)
        assert any(c.backend == "chunked" for c in chunky.plan(redundant).candidates)

    def test_cost_ties_never_prefer_the_chunked_backend(self):
        # A matrix smaller than chunk_rows makes the hypothetical chunked
        # candidate cost-identical to dense serial; the tie-break must rank
        # the in-memory backend first rather than recommending out-of-core
        # wrapping for zero benefit.
        planner = Planner(calibration=CalibrationProfile.default(),
                          shard_candidates=(), include_chunked=True)
        plan = planner.plan(np.ones((64, 4)))
        assert plan.backend != "chunked"
        chunked = [c for c in plan.candidates if c.backend == "chunked"]
        assert chunked and chunked[0].predicted_seconds == pytest.approx(
            plan.predicted_seconds)  # the tie really existed

    def test_candidates_sorted_by_predicted_cost(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.gnmf(5, 10))
        costs = [c.predicted_seconds for c in plan.candidates]
        assert costs == sorted(costs)
        assert plan.chosen is plan.candidates[0]


class TestPlanReporting:
    def test_explain_reports_predicted_vs_chosen_costs(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.logistic_regression(20))
        text = plan.explain()
        assert "chosen:" in text
        assert "predicted" in text
        assert "rank 2:" in text
        assert "x chosen" in text              # alternatives priced vs the pick
        assert "paper threshold rule" in text  # ties back to Section 5.1
        assert "calibration: default" in text

    def test_plan_to_json_is_serializable(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.kmeans(4, 6))
        payload = json.dumps(plan.to_json())
        decoded = json.loads(payload)
        assert decoded["chosen"]["factorized"] is True
        assert decoded["workload"]["name"] == "kmeans"
        assert len(decoded["candidates"]) == len(plan.candidates)

    def test_breakdown_terms_sum_to_prediction(self, planner, redundant):
        plan = planner.plan(redundant, WorkloadDescriptor.generic())
        for candidate in plan.candidates:
            assert candidate.predicted_seconds == pytest.approx(
                sum(candidate.breakdown.values()))

    def test_empty_plan_is_rejected(self, planner, redundant):
        complete = planner.plan(redundant)
        with pytest.raises(ValueError, match="at least one scored candidate"):
            Plan(candidates=(), workload=complete.workload,
                 data_summary=complete.data_summary,
                 calibration=complete.calibration)


class TestSurfaceIntegration:
    def test_normalized_matrix_plan_method(self, redundant):
        plan = redundant.plan()
        assert isinstance(plan, Plan)
        assert plan.workload.name == "generic"
        # the default matrix-level planner also scores the chunked backend
        assert any(c.backend == "chunked" for c in plan.candidates)

    def test_mn_matrix_plan_method(self, mn_dataset):
        _, normalized, _ = mn_dataset
        plan = normalized.plan()
        assert isinstance(plan, Plan)
        assert plan.data_summary["kind"] == "mn-normalized"

    def test_backend_capabilities_registry(self):
        caps = backend_capabilities()
        assert set(caps) == {"dense", "sparse", "fused", "chunked", "sharded"}
        assert caps["sharded"]["parallel"] is True
        assert caps["chunked"]["out_of_core"] is True
        assert caps["dense"]["parallel"] is False
        # The fused backend advertises whether the compiled set can run and
        # which kernel set best_available() resolves to.
        assert caps["fused"]["kernel_set"] in ("numba", "numpy")
        assert caps["fused"]["compiled"] == (caps["fused"]["kernel_set"] == "numba")

    def test_backend_partitions_for(self):
        from repro.la.backend import ChunkedBackend, DenseBackend, ShardedBackend

        assert DenseBackend().partitions_for(10_000) == 1
        assert ChunkedBackend(chunk_rows=100).partitions_for(250) == 3
        assert ShardedBackend(n_shards=4).partitions_for(3) == 3

    def test_auto_engine_exposes_plan(self, redundant):
        from repro.ml.logistic_regression import LogisticRegressionGD

        rng = np.random.default_rng(0)
        y = np.where(rng.standard_normal(redundant.shape[0]) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=3, engine="auto")
        model.planner = Planner(calibration=CalibrationProfile.default())
        model.fit(redundant, y)
        assert model.plan_ is not None
        assert "chosen:" in model.plan_.explain()
        assert model.coef_ is not None

    def test_auto_engine_matches_eager_reference(self, single_join_dense):
        from repro.ml.linear_regression import LinearRegressionGD

        _, normalized, materialized = single_join_dense
        rng = np.random.default_rng(1)
        y = rng.standard_normal(normalized.shape[0])
        auto = LinearRegressionGD(max_iter=4, engine="auto")
        auto.planner = Planner(calibration=CalibrationProfile.default())
        auto.fit(normalized, y)
        reference = LinearRegressionGD(max_iter=4).fit(materialized, y)
        assert np.allclose(auto.coef_, reference.coef_, atol=1e-8)

    def test_auto_engine_explicit_n_jobs_1_pins_serial(self, redundant, monkeypatch):
        # n_jobs=1 must guarantee serial execution even when the planner would
        # otherwise shard (cheap-parallelism profile, 4 workers).
        from dataclasses import replace

        import repro.la.parallel as parallel
        from repro.ml.logistic_regression import LogisticRegressionGD

        monkeypatch.setattr(parallel, "default_workers", lambda: 4)
        cheap = replace(CalibrationProfile.default(),
                        dispatch_overhead_s=0.0, sparse_dispatch_overhead_s=0.0,
                        shard_overhead_s=0.0, parallel_efficiency=1.0)
        rng = np.random.default_rng(8)
        y = np.where(rng.standard_normal(redundant.shape[0]) > 0, 1.0, -1.0)

        pinned = LogisticRegressionGD(max_iter=3, engine="auto", n_jobs=1)
        pinned.planner = Planner(calibration=cheap, shard_candidates=(4,))
        pinned.fit(redundant, y)
        assert {c.n_shards for c in pinned.plan_.candidates} == {1}

        free = LogisticRegressionGD(max_iter=3, engine="auto")
        free.planner = Planner(calibration=cheap, shard_candidates=(4,))
        free.fit(redundant, y)
        assert free.plan_.n_jobs == 4  # default None leaves the axis free

    def test_pinned_shard_count_clamped_to_rows(self, planner):
        from repro.datasets.synthetic import SyntheticPKFKConfig, generate_pk_fk

        config = SyntheticPKFKConfig.from_ratios(
            tuple_ratio=1, feature_ratio=1, num_attribute_rows=3,
            num_entity_features=2, seed=0)
        tiny = generate_pk_fk(config).normalized  # 3 rows
        plan = planner.plan(tiny, WorkloadDescriptor.generic(), n_shards=8)
        assert plan.n_jobs == 3  # clamped like shard_bounds itself

    def test_describe_data_plain_sharded_operand(self):
        from repro.core.shard import ShardedMatrix

        sharded = ShardedMatrix.from_matrix(np.ones((60, 5)), 4, pool="thread")
        profile = describe_data(sharded)
        assert profile.kind == "sharded"
        assert profile.layouts == (False,)
        assert profile.partitions == 4
        assert profile.parallel_partitions
        assert describe_data(sharded.T).kind == "sharded"  # transposed view
        plan = Planner(calibration=CalibrationProfile.default()).plan(sharded)
        assert plan.n_jobs == 4
        assert plan.backend == "sharded"

    def test_mn_plan_explain_reports_redundancy_rule(self, mn_dataset):
        _, normalized, _ = mn_dataset
        plan = Planner(calibration=CalibrationProfile.default()).plan(normalized)
        text = plan.explain()
        assert "redundancy rule" in text
        assert plan.threshold_rule_choice in ("factorize", "materialize")

    def test_describe_data_chunked_operand(self):
        from repro.la.chunked import ChunkedMatrix

        chunked = ChunkedMatrix.from_matrix(np.ones((100, 4)), chunk_rows=30)
        profile = describe_data(chunked)
        assert profile.kind == "chunked"
        assert profile.layouts == (False,)
        assert profile.partitions == 4
        assert describe_data(chunked.T).kind == "chunked"  # transposed view

    def test_chunked_operand_plan_reports_chunked_backend(self):
        from repro.la.chunked import ChunkedMatrix

        planner = Planner(calibration=CalibrationProfile.default(),
                          shard_candidates=(2, 4))
        chunked = ChunkedMatrix.from_matrix(np.ones((100, 4)), chunk_rows=10)
        plan = planner.plan(chunked, WorkloadDescriptor.logistic_regression(5))
        assert all(c.backend == "chunked" and c.n_shards == 1
                   for c in plan.candidates)
        # dispatch is priced at the real 10-chunk fan-out: strictly more than
        # the same workload on the equivalent monolithic matrix.
        mono = planner.plan(np.ones((100, 4)),
                            WorkloadDescriptor.logistic_regression(5),
                            n_shards=1)
        chunked_eager = next(c for c in plan.candidates if c.engine == "eager")
        mono_eager = next(c for c in mono.candidates if c.engine == "eager")
        assert chunked_eager.breakdown["dispatch"] > mono_eager.breakdown["dispatch"]

    def test_auto_engine_evaluates_composite_lazy_graph_once(self, single_join_dense):
        from repro.core.lazy.expr import LazyExpr
        from repro.ml.linear_regression import LinearRegressionGD

        _, normalized, materialized = single_join_dense
        rng = np.random.default_rng(9)
        y = rng.standard_normal(normalized.shape[0])
        graph = normalized.lazy() * 2.0
        evaluations = []
        original = LazyExpr.evaluate

        def counting_evaluate(self, cache=None):
            evaluations.append(self)
            return original(self, cache=cache)

        LazyExpr.evaluate = counting_evaluate
        try:
            model = LinearRegressionGD(max_iter=3, step_size=1e-3, engine="auto")
            model.planner = Planner(calibration=CalibrationProfile.default())
            model.fit(graph, y)
        finally:
            LazyExpr.evaluate = original
        # the composite input graph itself is evaluated exactly once
        assert sum(1 for e in evaluations if e is graph) == 1
        reference = LinearRegressionGD(max_iter=3, step_size=1e-3).fit(
            2.0 * materialized, y)
        assert np.allclose(model.coef_, reference.coef_, atol=1e-8)

    def test_auto_engine_pins_serial_for_undispatchable_operands(self):
        # Chunked operands pass through shard_for_jobs unchanged, so a sharded
        # plan could never be realized: the resolver pins the shard axis and
        # the reported plan matches what actually runs.
        from repro.la.chunked import ChunkedMatrix
        from repro.ml.linear_regression import LinearRegressionGD

        rng = np.random.default_rng(4)
        dense = rng.standard_normal((64, 5))
        chunked = ChunkedMatrix.from_matrix(dense, chunk_rows=16)
        y = rng.standard_normal(64)
        model = LinearRegressionGD(max_iter=3, step_size=1e-3, engine="auto")
        model.planner = Planner(calibration=CalibrationProfile.default(),
                                shard_candidates=(2, 4))
        model.fit(chunked, y)
        assert model.plan_.n_jobs == 1
        assert all(c.n_shards == 1 for c in model.plan_.candidates)
        reference = LinearRegressionGD(max_iter=3, step_size=1e-3).fit(dense, y)
        assert np.allclose(model.coef_, reference.coef_, atol=1e-10)

    def test_auto_engine_never_densifies_sharded_normalized_input(self, single_join_dense):
        # A pre-sharded normalized operand has a fixed layout: engine="auto"
        # must neither materialize the join output nor re-shard it, and the
        # fit must still run (shard-parallel) through the factorized rewrites.
        from repro.ml.logistic_regression import LogisticRegressionGD

        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(4, pool="serial")
        rng = np.random.default_rng(6)
        y = np.where(rng.standard_normal(normalized.shape[0]) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=3, engine="auto")
        model.planner = Planner(calibration=CalibrationProfile.default(),
                                shard_candidates=(2, 4))
        model.fit(sharded, y)
        assert getattr(sharded, "_materialized_view", None) is None
        # The plan truthfully reports the fixed factorized layout and the
        # operand's own 4-shard fan-out, and prices the engine choice with
        # factorized operator costs at that fan-out.
        assert model.plan_.factorized
        assert model.plan_.n_jobs == 4
        assert model.plan_.backend == "sharded"
        assert model.plan_.data_summary["kind"] == "sharded-normalized"
        assert all(c.factorized and c.n_shards == 4 for c in model.plan_.candidates)
        reference = LogisticRegressionGD(max_iter=3).fit(materialized, y)
        assert np.allclose(model.coef_, reference.coef_, atol=1e-8)

    def test_describe_data_sharded_normalized_uses_factorized_costs(self, single_join_dense):
        _, normalized, _ = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        profile = describe_data(sharded)
        assert profile.kind == "sharded-normalized"
        assert profile.layouts == (True,)
        assert profile.n_rows == normalized.shape[0]
        assert profile.n_cols == normalized.shape[1]
        assert profile.num_joins == normalized.num_joins
        assert profile.partitions == sharded.num_shards
        assert not profile.parallel_partitions  # serial pool: no speedup
        assert describe_data(normalized.shard(3, pool="thread")).parallel_partitions
        # transposed wrapper: same untransposed dimensions
        assert describe_data(sharded.T).n_rows == normalized.shape[0]

    def test_auto_engine_respects_explicit_n_jobs(self, single_join_dense):
        from repro.ml.logistic_regression import LogisticRegressionGD

        _, normalized, materialized = single_join_dense
        rng = np.random.default_rng(2)
        y = np.where(rng.standard_normal(normalized.shape[0]) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=3, engine="auto", n_jobs=2)
        model.planner = Planner(calibration=CalibrationProfile.default())
        model.fit(normalized, y)
        assert model.plan_.n_jobs == 2
        reference = LogisticRegressionGD(max_iter=3).fit(materialized, y)
        assert np.allclose(model.coef_, reference.coef_, atol=1e-8)


class TestPlanEvaluation:
    def test_slowdown_and_within(self):
        ev = PlanEvaluation(parameters={}, auto_label="a", auto_seconds=0.15,
                            best_label="b", best_seconds=0.1)
        assert ev.slowdown == pytest.approx(1.5)
        assert ev.within(1.5)
        assert not ev.within(1.4)

    def test_nan_measurements_never_pass(self):
        ev = PlanEvaluation(parameters={}, auto_label="a",
                            auto_seconds=float("nan"), best_label="b",
                            best_seconds=0.1)
        assert math.isnan(ev.slowdown)
        assert not ev.within(10.0)

    def test_zero_best_guard(self):
        ev = PlanEvaluation(parameters={}, auto_label="a", auto_seconds=0.1,
                            best_label="b", best_seconds=0.0)
        assert ev.slowdown == float("inf")
        ev2 = PlanEvaluation(parameters={}, auto_label="a", auto_seconds=0.0,
                             best_label="b", best_seconds=0.0)
        assert ev2.slowdown == 1.0
