"""Tests for the LMM / RMM rewrite rules (paper Sections 3.3.3 and 3.3.4)."""

import numpy as np
import pytest

from repro.core.rewrite import multiplication
from repro.exceptions import ShapeError


class TestLeftMultiplication:
    def test_vector_operand(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        w = rng.standard_normal((materialized.shape[1], 1))
        assert np.allclose(normalized @ w, materialized @ w)

    def test_matrix_operand(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        x = rng.standard_normal((materialized.shape[1], 7))
        assert np.allclose(normalized @ x, materialized @ x)

    def test_multi_join(self, multi_join_dense, rng):
        _, normalized, materialized = multi_join_dense
        x = rng.standard_normal((materialized.shape[1], 3))
        assert np.allclose(normalized @ x, materialized @ x)

    def test_sparse_base(self, single_join_sparse, rng):
        normalized, dense = single_join_sparse
        x = rng.standard_normal((dense.shape[1], 2))
        assert np.allclose(normalized @ x, dense @ x)

    def test_no_entity_features(self, no_entity_features, rng):
        normalized, dense = no_entity_features
        x = rng.standard_normal((dense.shape[1], 4))
        assert np.allclose(normalized @ x, dense @ x)

    def test_one_dimensional_operand_promoted(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        w = rng.standard_normal(materialized.shape[1])
        assert np.allclose((normalized @ w).ravel(), materialized @ w)

    def test_shape_mismatch_raises(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            normalized @ rng.standard_normal((3, 2))

    def test_dot_alias(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        w = rng.standard_normal((materialized.shape[1], 1))
        assert np.allclose(normalized.dot(w), materialized @ w)

    def test_result_is_regular_matrix(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        out = normalized @ rng.standard_normal((materialized.shape[1], 2))
        assert isinstance(out, np.ndarray)


class TestRightMultiplication:
    def test_row_vector(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        x = rng.standard_normal((1, materialized.shape[0]))
        assert np.allclose(x @ normalized, x @ materialized)

    def test_matrix_operand(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        x = rng.standard_normal((5, materialized.shape[0]))
        assert np.allclose(x @ normalized, x @ materialized)

    def test_multi_join(self, multi_join_dense, rng):
        _, normalized, materialized = multi_join_dense
        x = rng.standard_normal((4, materialized.shape[0]))
        assert np.allclose(x @ normalized, x @ materialized)

    def test_no_entity_features(self, no_entity_features, rng):
        normalized, dense = no_entity_features
        x = rng.standard_normal((2, dense.shape[0]))
        assert np.allclose(x @ normalized, x @ dense)

    def test_sparse_base(self, single_join_sparse, rng):
        normalized, dense = single_join_sparse
        x = rng.standard_normal((3, dense.shape[0]))
        assert np.allclose(x @ normalized, x @ dense)

    def test_shape_mismatch_raises(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            rng.standard_normal((2, 5)) @ normalized


class TestTransposedMultiplication:
    """Appendix A: T^T X and X T^T routed through the untransposed rewrites."""

    def test_transposed_lmm(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        p = rng.standard_normal((materialized.shape[0], 1))
        assert np.allclose(normalized.T @ p, materialized.T @ p)

    def test_transposed_lmm_matrix(self, multi_join_dense, rng):
        _, normalized, materialized = multi_join_dense
        p = rng.standard_normal((materialized.shape[0], 6))
        assert np.allclose(normalized.T @ p, materialized.T @ p)

    def test_transposed_rmm(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        x = rng.standard_normal((3, materialized.shape[1]))
        assert np.allclose(x @ normalized.T, x @ materialized.T)

    def test_gram_via_transpose_chain(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T @ materialized, materialized.T @ materialized)

    def test_transposed_sparse(self, single_join_sparse, rng):
        normalized, dense = single_join_sparse
        p = rng.standard_normal((dense.shape[0], 2))
        assert np.allclose(normalized.T @ p, dense.T @ p)


class TestRewriteFunctionsDirectly:
    """The free functions expose the multiplication-order ablation of Section 3.3.3."""

    def test_lmm_star_matches_materialized_order(self, single_join_dense, rng):
        dataset, normalized, materialized = single_join_dense
        x = rng.standard_normal((materialized.shape[1], 3))
        fast = multiplication.lmm_star(dataset.entity, dataset.indicators, dataset.attributes, x)
        slow = multiplication.lmm_star_materialized_order(
            dataset.entity, dataset.indicators, dataset.attributes, x)
        assert np.allclose(fast, slow)
        assert np.allclose(fast, materialized @ x)

    def test_lmm_star_shape_check(self, single_join_dense, rng):
        dataset, _, _ = single_join_dense
        with pytest.raises(ShapeError):
            multiplication.lmm_star(dataset.entity, dataset.indicators, dataset.attributes,
                                    rng.standard_normal((2, 2)))

    def test_rmm_star_shape_check(self, single_join_dense, rng):
        dataset, _, _ = single_join_dense
        with pytest.raises(ShapeError):
            multiplication.rmm_star(dataset.entity, dataset.indicators, dataset.attributes,
                                    rng.standard_normal((2, 2)))

    def test_lmm_mn_shape_check(self, mn_dataset, rng):
        dataset, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            multiplication.lmm_mn(normalized.indicators, normalized.attributes,
                                  rng.standard_normal((1, 1)))

    def test_rmm_mn_shape_check(self, mn_dataset, rng):
        dataset, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            multiplication.rmm_mn(normalized.indicators, normalized.attributes,
                                  rng.standard_normal((1, 1)))
