"""Streaming layer: batch iterator, streamed operators, planner memory dimension."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import NormalizedBatchIterator, StreamedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import CalibrationProfile, Planner
from repro.core.planner.memory import (
    batch_rows_for_budget,
    batch_rows_for_dims,
    entity_stream_nbytes,
    factorized_nbytes,
    materialized_nbytes,
    matrix_nbytes,
    streamed_batch_count,
)
from repro.exceptions import NotSupportedError, PlanningError, ShapeError


class TestNormalizedBatchIterator:
    def test_batches_cover_every_row_in_order(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        iterator = NormalizedBatchIterator(normalized, batch_size=17)
        seen = []
        for batch in iterator:
            assert batch.num_rows <= 17
            assert np.allclose(batch.data.to_dense(), materialized[batch.indices])
            seen.append(batch.indices)
        assert np.array_equal(np.concatenate(seen), np.arange(materialized.shape[0]))

    def test_len_and_num_batches(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        n = materialized.shape[0]
        iterator = NormalizedBatchIterator(normalized, batch_size=17)
        assert len(iterator) == -(-n // 17)

    def test_full_coverage_batch_is_the_operand_itself(self, single_join_dense):
        _, normalized, _ = single_join_dense
        batches = list(NormalizedBatchIterator(normalized))
        assert len(batches) == 1
        assert batches[0].data is normalized  # identity fast path: bit-for-bit

    def test_target_slices_align(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        target = np.asarray(dataset.target).reshape(-1, 1)
        for batch in NormalizedBatchIterator(normalized, target=dataset.target,
                                             batch_size=13):
            assert np.allclose(batch.target, target[batch.indices])

    def test_shuffle_is_seeded_and_varies_per_epoch(self, single_join_dense):
        _, normalized, _ = single_join_dense
        n = normalized.shape[0]
        it_a = NormalizedBatchIterator(normalized, batch_size=11, shuffle=True, seed=3)
        it_b = NormalizedBatchIterator(normalized, batch_size=11, shuffle=True, seed=3)
        epoch1_a = [b.indices for b in it_a]
        epoch1_b = [b.indices for b in it_b]
        epoch2_a = [b.indices for b in it_a]
        # Same seed, same epoch -> identical permutation; later epochs differ.
        assert all(np.array_equal(x, y) for x, y in zip(epoch1_a, epoch1_b))
        assert not all(np.array_equal(x, y) for x, y in zip(epoch1_a, epoch2_a))
        # Every epoch is still a permutation of all rows.
        assert sorted(np.concatenate(epoch2_a).tolist()) == list(range(n))

    def test_shuffled_batches_match_materialized(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        for batch in NormalizedBatchIterator(normalized, batch_size=23,
                                             shuffle=True, seed=9):
            assert np.allclose(batch.data.to_dense(), materialized[batch.indices])

    def test_mn_matrix_batches(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        for batch in NormalizedBatchIterator(normalized, batch_size=7):
            assert np.allclose(batch.data.to_dense(), materialized[batch.indices])

    def test_plain_matrix_batches(self, rng):
        dense = rng.standard_normal((31, 4))
        for batch in NormalizedBatchIterator(dense, batch_size=10):
            assert np.allclose(batch.data, dense[batch.indices])

    def test_sparse_plain_matrix_batches(self):
        matrix = sp.random(20, 5, density=0.4, random_state=0, format="csr")
        dense = np.asarray(matrix.todense())
        for batch in NormalizedBatchIterator(matrix, batch_size=6):
            assert np.allclose(np.asarray(batch.data.todense()), dense[batch.indices])

    def test_memory_budget_mode_bounds_batches(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        n, d = materialized.shape
        budget = 37 * d * 8  # roughly 37 densified rows
        iterator = NormalizedBatchIterator(normalized, memory_budget=budget)
        assert 1 <= iterator.batch_size < n
        for batch in iterator:
            assert batch.num_rows * d * 8 <= budget + d * 8

    def test_transposed_operand_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(NotSupportedError):
            NormalizedBatchIterator(normalized.T)

    def test_mismatched_target_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            NormalizedBatchIterator(normalized, target=np.zeros(3))

    def test_invalid_batch_size_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ValueError):
            NormalizedBatchIterator(normalized, batch_size=0)

    def test_unstreamable_operand_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        sharded = normalized.shard(2)
        with pytest.raises(NotSupportedError):
            NormalizedBatchIterator(sharded)

    def test_batches_method_on_normalized_matrix(self, single_join_dense):
        _, normalized, _ = single_join_dense
        iterator = normalized.batches(batch_size=9)
        assert isinstance(iterator, NormalizedBatchIterator)
        assert iterator.batch_size == 9


class TestStreamedMatrix:
    @pytest.fixture(params=["star", "mn", "plain"])
    def view_and_dense(self, request, multi_join_dense, mn_dataset, rng):
        if request.param == "star":
            _, normalized, dense = multi_join_dense
            return StreamedMatrix(normalized, batch_rows=23), np.asarray(dense)
        if request.param == "mn":
            _, normalized, dense = mn_dataset
            return StreamedMatrix(normalized, batch_rows=11), np.asarray(dense)
        dense = rng.standard_normal((37, 6))
        return StreamedMatrix(dense, batch_rows=10), dense

    def test_operator_surface_matches_dense(self, view_and_dense, rng):
        view, dense = view_and_dense
        n, d = dense.shape
        x = rng.standard_normal((d, 3))
        w = rng.standard_normal((2, n))
        y = rng.standard_normal((n, 2))
        assert view.shape == dense.shape
        assert np.allclose(view @ x, dense @ x)
        assert np.allclose(w @ view, w @ dense)
        assert np.allclose(view.T @ y, dense.T @ y)
        assert np.allclose(view.crossprod(), dense.T @ dense)
        assert np.allclose(view.T.crossprod(), dense @ dense.T)
        assert np.allclose(view.rowsums(), dense.sum(axis=1, keepdims=True))
        assert np.allclose(view.colsums(), dense.sum(axis=0, keepdims=True))
        assert np.isclose(view.total_sum(), dense.sum())
        assert np.allclose(view.to_dense(), dense)

    def test_scalar_ops_stay_streamed_and_match(self, view_and_dense, rng):
        view, dense = view_and_dense
        x = rng.standard_normal((dense.shape[1], 2))
        scaled = 2.5 * view
        assert isinstance(scaled, StreamedMatrix)
        assert np.allclose(scaled @ x, (2.5 * dense) @ x)
        assert np.allclose((view + 1.0).rowsums(), (dense + 1.0).sum(axis=1, keepdims=True))
        assert np.allclose((1.0 - view).colsums(), (1.0 - dense).sum(axis=0, keepdims=True))
        assert np.allclose((view / 2.0).total_sum(), (dense / 2.0).sum())
        assert np.allclose((view ** 2).colsums(), (dense ** 2).sum(axis=0, keepdims=True))
        assert np.allclose((-view).rowsums(), -dense.sum(axis=1, keepdims=True))
        assert np.allclose(view.apply(np.exp).colsums(),
                           np.exp(dense).sum(axis=0, keepdims=True))

    def test_elementwise_matrix_op_streams_and_matches(self, view_and_dense, rng):
        view, dense = view_and_dense
        other = rng.standard_normal(dense.shape)
        assert np.allclose(view * other, dense * other)
        assert np.allclose(view.T + other.T, dense.T + other.T)

    def test_solve_matches_lstsq(self, multi_join_dense, rng):
        _, normalized, dense = multi_join_dense
        view = StreamedMatrix(normalized, batch_rows=19)
        rhs = rng.standard_normal((dense.shape[0], 1))
        expected = np.linalg.lstsq(np.asarray(dense), rhs, rcond=None)[0]
        assert np.allclose(view.solve(rhs), expected, atol=1e-6)

    def test_transpose_round_trip(self, view_and_dense):
        view, dense = view_and_dense
        assert view.T.shape == dense.T.shape
        assert view.T.T.shape == dense.shape

    def test_shape_mismatches_rejected(self, view_and_dense):
        view, dense = view_and_dense
        with pytest.raises(ShapeError):
            view @ np.zeros((dense.shape[1] + 1, 2))
        with pytest.raises(ShapeError):
            np.zeros((2, dense.shape[0] + 1)) @ view
        with pytest.raises(ShapeError):
            view * np.zeros((dense.shape[0] + 1, dense.shape[1]))

    def test_scalar_ops_are_deferred_and_work_on_sparse_sources(self):
        # Regression: scalar ops used to transform the source eagerly --
        # building a full source-sized copy and crashing on sparse plain
        # sources (scipy rejects sparse + nonzero scalar).
        matrix = sp.random(12, 4, density=0.5, random_state=0, format="csr")
        dense = np.asarray(matrix.todense())
        view = StreamedMatrix(matrix, batch_rows=5)
        shifted = view + 2.0
        assert shifted.source is view.source  # deferred: no transformed copy
        assert np.allclose(shifted.rowsums(), (dense + 2.0).sum(axis=1, keepdims=True))
        assert np.allclose((3.0 - view).colsums(),
                           (3.0 - dense).sum(axis=0, keepdims=True))
        composed = (view * 2.0).apply(np.exp)
        assert np.allclose(composed.crossprod(),
                           np.exp(dense * 2.0).T @ np.exp(dense * 2.0))
        assert np.allclose((view + 1.0).T.crossprod(),
                           (dense + 1.0) @ (dense + 1.0).T)

    def test_stream_method_and_memory_budget(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        n, d = materialized.shape
        view = normalized.stream(memory_budget=29 * d * 8)
        assert isinstance(view, StreamedMatrix)
        assert 1 <= view.batch_rows < n
        assert view.num_batches > 1
        assert np.allclose(view.crossprod(), materialized.T @ materialized)


class TestMemoryModel:
    def test_matrix_nbytes(self, rng):
        dense = rng.standard_normal((10, 4))
        assert matrix_nbytes(dense) == dense.nbytes
        sparse = sp.random(50, 20, density=0.1, random_state=0, format="csr")
        assert matrix_nbytes(sparse) > 0
        assert matrix_nbytes(None) == 0

    def test_normalized_footprints_ordering(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert materialized_nbytes(normalized) == materialized.size * 8
        assert 0 < entity_stream_nbytes(normalized) <= factorized_nbytes(normalized)
        assert factorized_nbytes(normalized) < materialized_nbytes(normalized)

    def test_batch_rows_for_budget_clamps(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        n, d = materialized.shape
        assert batch_rows_for_budget(normalized, 10 * d * 8) <= n
        assert batch_rows_for_budget(normalized, 1) == 1  # degrades, never refuses
        assert batch_rows_for_budget(normalized, 1e12) == n
        with pytest.raises(ValueError):
            batch_rows_for_budget(normalized, 0)

    def test_batch_rows_for_dims_without_row_count(self):
        # Streaming CSV ingestion sizes chunks before knowing the row count.
        rows = batch_rows_for_dims(0, 10, 1, memory_budget=8000)
        assert rows >= 1

    def test_streamed_batch_count(self):
        assert streamed_batch_count(10, 3) == 4
        assert streamed_batch_count(9, 3) == 3
        assert streamed_batch_count(0, 3) == 0


class TestPlannerMemoryDimension:
    def _planner(self, budget):
        return Planner(calibration=CalibrationProfile.default(), memory_budget=budget)

    def test_tight_budget_chooses_streamed(self, single_join_dense):
        _, normalized, _ = single_join_dense
        budget = entity_stream_nbytes(normalized) // 2
        plan = self._planner(budget).plan(normalized)
        assert plan.chosen.backend == "streamed"
        assert plan.chosen.factorized
        assert plan.chosen.batch_rows >= 1
        assert "streamed" in plan.chosen.label

    def test_mid_budget_drops_materialized_candidates(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        budget = (entity_stream_nbytes(normalized) + materialized.size * 8) // 2
        plan = self._planner(budget).plan(normalized)
        assert all(c.factorized for c in plan.candidates)

    def test_loose_budget_keeps_all_candidates(self, single_join_dense):
        _, normalized, _ = single_join_dense
        loose = self._planner(1e12).plan(normalized)
        unbudgeted = Planner(calibration=CalibrationProfile.default()).plan(normalized)
        assert {c.label for c in unbudgeted.candidates} <= {c.label for c in loose.candidates}

    def test_streamed_batch_rows_respect_budget(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        d = materialized.shape[1]
        budget = 41 * d * 8
        plan = self._planner(budget).plan(normalized)
        streamed = [c for c in plan.candidates if c.backend == "streamed"]
        assert streamed and streamed[0].batch_rows * d * 8 <= budget

    def test_summary_reports_memory(self, single_join_dense):
        _, normalized, _ = single_join_dense
        plan = self._planner(1e12).plan(normalized)
        assert plan.data_summary["materialized_bytes"] > 0
        assert plan.data_summary["factorized_bytes"] > 0
        assert plan.data_summary["memory_budget"] == 1e12

    def test_unstreamable_operand_over_budget_raises(self, rng):
        dense = rng.standard_normal((64, 8))
        chunked_planner = self._planner(8)  # 1 element worth of budget
        from repro.la.chunked import ChunkedMatrix

        with pytest.raises(PlanningError):
            chunked_planner.plan(ChunkedMatrix.from_matrix(dense, 16))

    def test_plan_json_round_trips_batch_rows(self, single_join_dense):
        import json

        _, normalized, _ = single_join_dense
        budget = entity_stream_nbytes(normalized) // 2
        plan = self._planner(budget).plan(normalized)
        payload = json.loads(json.dumps(plan.to_json()))
        assert payload["chosen"]["backend"] == "streamed"
        assert payload["chosen"]["batch_rows"] == plan.chosen.batch_rows


class TestZeroRowStreaming:
    def test_empty_iterator_yields_nothing(self):
        attribute = np.arange(6.0).reshape(3, 2)
        indicator = sp.csr_matrix((0, 3))
        normalized = NormalizedMatrix(np.zeros((0, 1)), [indicator], [attribute],
                                      validate=False)
        iterator = NormalizedBatchIterator(normalized, batch_size=4)
        assert len(iterator) == 0
        assert list(iterator) == []

    def test_empty_streamed_matrix_aggregates(self):
        attribute = np.arange(6.0).reshape(3, 2)
        indicator = sp.csr_matrix((0, 3))
        normalized = NormalizedMatrix(np.zeros((0, 1)), [indicator], [attribute],
                                      validate=False)
        view = StreamedMatrix(normalized, batch_rows=4)
        assert view.shape == (0, 3)
        assert view.colsums().shape == (1, 3)
        assert view.total_sum() == 0.0
