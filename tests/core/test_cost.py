"""Tests for the arithmetic-operation cost models (paper Table 3 / Table 11)."""

import pytest

from repro.core.cost import (
    CostModel,
    Dimensions,
    Operator,
    asymptotic_speedup,
    factorized_cost,
    operator_cost,
    standard_cost,
)


@pytest.fixture
def dims() -> Dimensions:
    # TR = 10, FR = 2: well inside the factorization-wins region.
    return Dimensions(n_s=10_000, d_s=20, n_r=1_000, d_r=40)


class TestDimensions:
    def test_total_features(self, dims):
        assert dims.d == 60

    def test_tuple_ratio(self, dims):
        assert dims.tuple_ratio == 10.0

    def test_feature_ratio(self, dims):
        assert dims.feature_ratio == 2.0

    def test_zero_denominators(self):
        dims = Dimensions(n_s=10, d_s=0, n_r=0, d_r=5)
        assert dims.tuple_ratio == float("inf")
        assert dims.feature_ratio == float("inf")


class TestTableThreeFormulas:
    def test_scalar_standard(self, dims):
        assert standard_cost(Operator.SCALAR, dims) == dims.n_s * dims.d

    def test_scalar_factorized(self, dims):
        assert factorized_cost(Operator.SCALAR, dims) == dims.n_s * dims.d_s + dims.n_r * dims.d_r

    def test_lmm_scales_with_operand_width(self, dims):
        assert standard_cost(Operator.LMM, dims, x_cols=3) == 3 * standard_cost(Operator.LMM, dims, x_cols=1)
        assert factorized_cost(Operator.LMM, dims, x_cols=3) == 3 * factorized_cost(Operator.LMM, dims, x_cols=1)

    def test_rmm_matches_lmm_structure(self, dims):
        assert standard_cost(Operator.RMM, dims, 2) == standard_cost(Operator.LMM, dims, 2)

    def test_crossprod_standard(self, dims):
        assert standard_cost(Operator.CROSSPROD, dims) == 0.5 * dims.d ** 2 * dims.n_s

    def test_crossprod_factorized(self, dims):
        expected = (0.5 * dims.d_s ** 2 * dims.n_s + 0.5 * dims.d_r ** 2 * dims.n_r
                    + dims.d_s * dims.d_r * dims.n_r)
        assert factorized_cost(Operator.CROSSPROD, dims) == expected

    def test_pseudoinverse_positive(self, dims):
        assert standard_cost(Operator.PSEUDOINVERSE, dims) > 0
        assert factorized_cost(Operator.PSEUDOINVERSE, dims) > 0

    def test_pseudoinverse_wide_branch(self):
        wide = Dimensions(n_s=50, d_s=40, n_r=10, d_r=30)
        assert standard_cost(Operator.PSEUDOINVERSE, wide) > 0
        assert factorized_cost(Operator.PSEUDOINVERSE, wide) > 0

    def test_unknown_operator_combination(self, dims):
        with pytest.raises(ValueError):
            standard_cost("not an operator", dims)  # type: ignore[arg-type]


class TestSpeedupPredictions:
    def test_factorized_cheaper_in_redundant_region(self, dims):
        for operator in (Operator.SCALAR, Operator.LMM, Operator.RMM, Operator.CROSSPROD):
            cost = operator_cost(operator, dims)
            assert cost.speedup > 1.0

    def test_factorized_not_cheaper_without_redundancy(self):
        dims = Dimensions(n_s=100, d_s=40, n_r=100, d_r=2)  # TR=1, FR=0.05
        cost = operator_cost(Operator.SCALAR, dims)
        assert cost.speedup <= 1.05

    def test_speedup_monotone_in_tuple_ratio(self):
        speedups = []
        for n_s in (1_000, 5_000, 20_000):
            dims = Dimensions(n_s=n_s, d_s=20, n_r=1_000, d_r=40)
            speedups.append(operator_cost(Operator.SCALAR, dims).speedup)
        assert speedups == sorted(speedups)

    def test_speedup_monotone_in_feature_ratio(self):
        speedups = []
        for d_r in (10, 40, 160):
            dims = Dimensions(n_s=20_000, d_s=20, n_r=1_000, d_r=d_r)
            speedups.append(operator_cost(Operator.LMM, dims).speedup)
        assert speedups == sorted(speedups)

    def test_crossprod_speedup_larger_than_linear_ops(self, dims):
        linear = operator_cost(Operator.LMM, dims).speedup
        quadratic = operator_cost(Operator.CROSSPROD, dims).speedup
        assert quadratic > linear

    def test_zero_factorized_cost_gives_infinite_speedup(self):
        from repro.core.cost import OperatorCost
        assert OperatorCost(Operator.SCALAR, 10.0, 0.0).speedup == float("inf")


class TestAsymptoticSpeedups:
    def test_linear_operators_approach_one_plus_fr(self):
        speedup = asymptotic_speedup(Operator.LMM, tuple_ratio=1e9, feature_ratio=3.0)
        assert speedup == pytest.approx(4.0, rel=1e-6)

    def test_linear_operators_approach_tr(self):
        speedup = asymptotic_speedup(Operator.SCALAR, tuple_ratio=12.0, feature_ratio=1e9)
        assert speedup == pytest.approx(12.0, rel=1e-3)

    def test_crossprod_approaches_squared_limit(self):
        speedup = asymptotic_speedup(Operator.CROSSPROD, tuple_ratio=1e9, feature_ratio=3.0)
        assert speedup == pytest.approx(16.0, rel=1e-6)


class TestCostModelClass:
    def test_single_join_matches_free_functions(self, dims):
        model = CostModel(dims.n_s, dims.d_s, [(dims.n_r, dims.d_r)])
        assert model.scalar().standard == standard_cost(Operator.SCALAR, dims)
        assert model.scalar().factorized == factorized_cost(Operator.SCALAR, dims)
        assert model.crossprod().factorized == factorized_cost(Operator.CROSSPROD, dims)

    def test_multi_join_costs_add(self):
        model = CostModel(10_000, 20, [(1_000, 40), (500, 10)])
        assert model.total_features == 70
        assert model.scalar().factorized == 10_000 * 20 + 1_000 * 40 + 500 * 10

    def test_dict_input_accepted(self):
        model = CostModel(100, 5, {"r1": (10, 3), "r2": (20, 4)})
        assert model.total_features == 12

    def test_summary_keys(self, dims):
        model = CostModel(dims.n_s, dims.d_s, [(dims.n_r, dims.d_r)])
        assert set(model.summary()) == {"scalar", "lmm", "rmm", "crossprod"}

    def test_lmm_rmm_scale_with_operand(self, dims):
        model = CostModel(dims.n_s, dims.d_s, [(dims.n_r, dims.d_r)])
        assert model.lmm(4).standard == 4 * model.lmm(1).standard
        assert model.rmm(4).factorized == 4 * model.rmm(1).factorized
