"""Tests for row selection on normalized matrices (train/test splits stay factorized)."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import NotSupportedError, ShapeError
from repro.ml import LogisticRegressionGD, train_test_split_rows


class TestTakeRows:
    def test_selected_rows_match_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        indices = np.array([0, 5, 9, 17, 3])
        subset = normalized.take_rows(indices)
        assert isinstance(subset, NormalizedMatrix)
        assert np.allclose(subset.to_dense(), materialized[indices, :])

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        indices = np.arange(0, materialized.shape[0], 3)
        assert np.allclose(normalized.take_rows(indices).to_dense(), materialized[indices, :])

    def test_no_entity_features(self, no_entity_features):
        normalized, materialized = no_entity_features
        indices = np.array([2, 4, 6])
        assert np.allclose(normalized.take_rows(indices).to_dense(), materialized[indices, :])

    def test_boolean_mask(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        mask = np.zeros(materialized.shape[0], dtype=bool)
        mask[::4] = True
        assert np.allclose(normalized.take_rows(mask).to_dense(), materialized[mask, :])

    def test_attribute_tables_are_shared(self, single_join_dense):
        _, normalized, _ = single_join_dense
        subset = normalized.take_rows(np.array([0, 1, 2]))
        assert subset.attributes[0] is normalized.attributes[0]

    def test_duplicate_and_reordered_rows(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        indices = np.array([7, 7, 1, 0])
        assert np.allclose(normalized.take_rows(indices).to_dense(), materialized[indices, :])

    def test_out_of_range_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            normalized.take_rows(np.array([0, normalized.shape[0]]))

    def test_wrong_mask_length_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            normalized.take_rows(np.zeros(3, dtype=bool))

    def test_transposed_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(NotSupportedError):
            normalized.T.take_rows(np.array([0]))

    def test_train_test_split_workflow(self, single_join_dense):
        dataset, normalized, materialized = single_join_dense
        train_idx, test_idx = train_test_split_rows(materialized.shape[0], 0.25, seed=1)
        train_view = normalized.take_rows(train_idx)
        test_view = normalized.take_rows(test_idx)
        factorized = LogisticRegressionGD(max_iter=5, step_size=1e-3)
        factorized.fit(train_view, dataset.target[train_idx])
        standard = LogisticRegressionGD(max_iter=5, step_size=1e-3)
        standard.fit(materialized[train_idx], dataset.target[train_idx])
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)
        assert np.array_equal(factorized.predict(test_view),
                              standard.predict(materialized[test_idx]))
