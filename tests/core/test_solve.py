"""Tests for the factorized least-squares solve (Section 3.3.6's `solve` rewrite)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError


def least_squares_reference(materialized: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    solution, *_ = np.linalg.lstsq(materialized, rhs, rcond=None)
    return solution


class TestStarSolve:
    def test_matches_numpy_lstsq(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        rhs = rng.standard_normal((materialized.shape[0], 1))
        assert np.allclose(normalized.solve(rhs), least_squares_reference(materialized, rhs),
                           atol=1e-6)

    def test_multi_join(self, multi_join_dense, rng):
        _, normalized, materialized = multi_join_dense
        rhs = rng.standard_normal((materialized.shape[0], 1))
        assert np.allclose(normalized.solve(rhs), least_squares_reference(materialized, rhs),
                           atol=1e-6)

    def test_multiple_right_hand_sides(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        rhs = rng.standard_normal((materialized.shape[0], 3))
        assert np.allclose(normalized.solve(rhs), least_squares_reference(materialized, rhs),
                           atol=1e-6)

    def test_exact_recovery_without_noise(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        weights = rng.standard_normal((materialized.shape[1], 1))
        rhs = materialized @ weights
        assert np.allclose(normalized.solve(rhs), weights, atol=1e-6)

    def test_ridge_shrinks_solution(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        rhs = rng.standard_normal((materialized.shape[0], 1))
        plain = normalized.solve(rhs)
        ridged = normalized.solve(rhs, ridge=100.0)
        assert np.linalg.norm(ridged) < np.linalg.norm(plain)

    def test_shape_mismatch(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            normalized.solve(rng.standard_normal((3, 1)))

    def test_sparse_base(self, single_join_sparse, rng):
        normalized, dense = single_join_sparse
        rhs = rng.standard_normal((dense.shape[0], 1))
        assert np.allclose(normalized.solve(rhs), least_squares_reference(dense, rhs), atol=1e-6)


class TestMNSolve:
    def test_matches_numpy_lstsq(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        rhs = rng.standard_normal((materialized.shape[0], 1))
        assert np.allclose(normalized.solve(rhs), least_squares_reference(materialized, rhs),
                           atol=1e-6)

    def test_shape_mismatch(self, mn_dataset, rng):
        _, normalized, _ = mn_dataset
        with pytest.raises(ShapeError):
            normalized.solve(rng.standard_normal((2, 1)))
