"""Tests for the heuristic decision rule and the morpheus factory (Sections 3.7 / 5.1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.cost import Dimensions
from repro.core.decision import (
    DEFAULT_FEATURE_RATIO_THRESHOLD,
    DEFAULT_TUPLE_RATIO_THRESHOLD,
    CostBasedStrategy,
    DecisionRule,
    ThresholdStrategy,
    get_strategy,
    morpheus,
    morpheus_mn,
    should_factorize,
)
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix


class TestDecisionRule:
    def test_default_thresholds_match_paper(self):
        rule = DecisionRule()
        assert rule.tuple_ratio_threshold == 5.0 == DEFAULT_TUPLE_RATIO_THRESHOLD
        assert rule.feature_ratio_threshold == 1.0 == DEFAULT_FEATURE_RATIO_THRESHOLD

    def test_factorize_in_redundant_region(self):
        assert DecisionRule().predict(tuple_ratio=10, feature_ratio=2)

    def test_materialize_when_tuple_ratio_low(self):
        assert not DecisionRule().predict(tuple_ratio=2, feature_ratio=4)

    def test_materialize_when_feature_ratio_low(self):
        assert not DecisionRule().predict(tuple_ratio=20, feature_ratio=0.5)

    def test_rule_is_disjunctive(self):
        # Both ratios low -> still materialize (no double counting).
        assert not DecisionRule().predict(tuple_ratio=1, feature_ratio=0.1)

    def test_boundary_values_factorize(self):
        assert DecisionRule().predict(tuple_ratio=5.0, feature_ratio=1.0)

    def test_just_below_boundary_materializes(self):
        assert not DecisionRule().predict(tuple_ratio=4.999, feature_ratio=1.0)
        assert not DecisionRule().predict(tuple_ratio=5.0, feature_ratio=0.999)

    def test_custom_thresholds(self):
        rule = DecisionRule(tuple_ratio_threshold=2, feature_ratio_threshold=0.5)
        assert rule.predict(tuple_ratio=3, feature_ratio=0.6)

    def test_explain_mentions_decision(self):
        text = DecisionRule().explain(10, 2)
        assert "factorize" in text
        text = DecisionRule().explain(1, 0.1)
        assert "materialize" in text

    def test_module_level_wrapper(self):
        assert should_factorize(10, 2)
        assert not should_factorize(1, 2)
        assert should_factorize(1, 2, rule=DecisionRule(tuple_ratio_threshold=0.5))


class TestBoundaryAndDegenerateInputs:
    """tau = 5 / rho = 1 boundary behaviour and division-by-zero guards."""

    def test_exactly_at_both_thresholds_factorizes(self):
        # The rule is >= on both axes: the boundary point belongs to the
        # factorize region (Section 5.1's conservative tuning).
        rule = DecisionRule()
        assert rule.predict(tuple_ratio=5.0, feature_ratio=1.0)
        assert rule.predict(tuple_ratio=5.0, feature_ratio=100.0)
        assert rule.predict(tuple_ratio=100.0, feature_ratio=1.0)

    def test_epsilon_below_either_threshold_materializes(self):
        rule = DecisionRule()
        eps = 1e-12
        assert not rule.predict(tuple_ratio=5.0 - eps, feature_ratio=1.0)
        assert not rule.predict(tuple_ratio=5.0, feature_ratio=1.0 - eps)

    def test_dimensions_zero_attribute_rows_gives_infinite_tuple_ratio(self):
        dims = Dimensions(n_s=10, d_s=3, n_r=0, d_r=2)
        assert dims.tuple_ratio == float("inf")

    def test_dimensions_zero_entity_features_gives_infinite_feature_ratio(self):
        dims = Dimensions(n_s=10, d_s=0, n_r=5, d_r=2)
        assert dims.feature_ratio == float("inf")

    def test_normalized_matrix_zero_row_attribute_table(self):
        # A degenerate empty attribute table must not raise ZeroDivisionError;
        # it contributes an infinite tuple ratio, which factorizes.
        entity = np.zeros((5, 2))
        indicator = sp.csr_matrix((5, 0))
        attribute = np.zeros((0, 3))
        normalized = NormalizedMatrix(entity, [indicator], [attribute], validate=False)
        assert normalized.tuple_ratio == float("inf")
        assert should_factorize(normalized.tuple_ratio, normalized.feature_ratio)

    def test_normalized_matrix_zero_entity_features(self):
        indicator = sp.csr_matrix(np.eye(4))
        normalized = NormalizedMatrix(None, [indicator], [np.ones((4, 2))])
        assert normalized.feature_ratio == float("inf")
        assert normalized.entity_width == 0

    def test_infinite_ratios_flow_through_the_rule(self):
        rule = DecisionRule()
        assert rule.predict(float("inf"), float("inf"))
        assert not rule.predict(float("inf"), 0.0)
        assert not rule.predict(0.0, float("inf"))

    def test_explain_reports_both_ratios_and_thresholds(self):
        text = DecisionRule().explain(7.5, 2.25)
        assert "tuple_ratio=7.50" in text
        assert "feature_ratio=2.25" in text
        assert "threshold 5.0" in text
        assert "threshold 1.0" in text
        assert text.endswith("factorize")

    def test_explain_at_boundary_says_factorize(self):
        assert DecisionRule().explain(5.0, 1.0).endswith("factorize")

    def test_explain_below_boundary_says_materialize(self):
        assert DecisionRule().explain(4.999, 1.0).endswith("materialize")


class TestStrategies:
    """The threshold rule and the cost-based planner behind one interface."""

    def test_get_strategy_by_name(self):
        assert isinstance(get_strategy("threshold"), ThresholdStrategy)
        assert isinstance(get_strategy("cost"), CostBasedStrategy)

    def test_get_strategy_passthrough_and_unknown(self):
        strategy = ThresholdStrategy()
        assert get_strategy(strategy) is strategy
        with pytest.raises(ValueError, match="unknown execution strategy"):
            get_strategy("oracle")

    def test_threshold_strategy_matches_rule(self, single_join_dense):
        _, normalized, _ = single_join_dense
        strategy = ThresholdStrategy()
        assert strategy.should_factorize(normalized) == DecisionRule().predict(
            normalized.tuple_ratio, normalized.feature_ratio
        )
        assert "tuple_ratio" in strategy.explain(normalized)

    @staticmethod
    def _arithmetic_only_planner():
        """A planner whose profile has negligible overheads, so the decision is
        driven purely by the Table-3 arithmetic (deterministic for plumbing
        tests regardless of the fixture's small scale)."""
        from dataclasses import replace

        from repro.core.planner import CalibrationProfile, Planner

        profile = replace(CalibrationProfile.default(),
                          dispatch_overhead_s=1e-9, sparse_dispatch_overhead_s=1e-9,
                          shard_overhead_s=1e-9, lazy_node_overhead_s=1e-9)
        return Planner(calibration=profile)

    def test_cost_strategy_factorizes_redundant_data(self, single_join_dense):
        _, normalized, _ = single_join_dense
        strategy = CostBasedStrategy(planner=self._arithmetic_only_planner())
        assert strategy.should_factorize(normalized)
        assert "chosen:" in strategy.explain(normalized)

    def test_morpheus_accepts_strategy_argument(self, single_join_dense):
        dataset, _, _ = single_join_dense
        strategy = CostBasedStrategy(planner=self._arithmetic_only_planner())
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes,
                       strategy=strategy)
        assert isinstance(out, NormalizedMatrix)

    def test_morpheus_rejects_rule_and_strategy_together(self, single_join_dense):
        # A custom rule silently ignored because strategy= was also given
        # would be a trap; the conflict raises instead.
        dataset, _, _ = single_join_dense
        with pytest.raises(ValueError, match="not both"):
            morpheus(dataset.entity, dataset.indicators, dataset.attributes,
                     rule=DecisionRule(tuple_ratio_threshold=2.0),
                     strategy="threshold")

    def test_cost_strategy_memoizes_decide_then_explain(self, single_join_dense):
        _, normalized, _ = single_join_dense
        strategy = CostBasedStrategy(planner=self._arithmetic_only_planner())
        strategy.should_factorize(normalized)
        first = strategy.plan(normalized)
        assert strategy.plan(normalized) is first  # no second scoring pass


class TestMorpheusFactory:
    def test_returns_normalized_when_redundant(self, single_join_dense):
        dataset, _, _ = single_join_dense
        # TR = 6, FR = 2: above both thresholds.
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes)
        assert isinstance(out, NormalizedMatrix)

    def test_returns_materialized_when_not_redundant(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        strict = DecisionRule(tuple_ratio_threshold=100.0)
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes, rule=strict)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, materialized)

    def test_force_factorized_overrides_rule(self, single_join_dense):
        dataset, _, _ = single_join_dense
        strict = DecisionRule(tuple_ratio_threshold=100.0)
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes,
                       rule=strict, force_factorized=True)
        assert isinstance(out, NormalizedMatrix)

    def test_factory_output_is_numerically_correct(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes)
        assert np.allclose(out.to_dense(), materialized)


class TestMorpheusMNFactory:
    def test_returns_normalized_for_high_redundancy(self, mn_dataset):
        dataset, _, _ = mn_dataset
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right])
        assert isinstance(out, MNNormalizedMatrix)

    def test_returns_materialized_below_threshold(self, mn_dataset):
        dataset, normalized, materialized = mn_dataset
        threshold = normalized.redundancy_ratio() + 1.0
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right],
                          redundancy_threshold=threshold)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, materialized)

    def test_force_factorized(self, mn_dataset):
        dataset, _, _ = mn_dataset
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right],
                          redundancy_threshold=1e9, force_factorized=True)
        assert isinstance(out, MNNormalizedMatrix)
