"""Tests for the heuristic decision rule and the morpheus factory (Sections 3.7 / 5.1)."""

import numpy as np
import pytest

from repro.core.decision import (
    DEFAULT_FEATURE_RATIO_THRESHOLD,
    DEFAULT_TUPLE_RATIO_THRESHOLD,
    DecisionRule,
    morpheus,
    morpheus_mn,
    should_factorize,
)
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix


class TestDecisionRule:
    def test_default_thresholds_match_paper(self):
        rule = DecisionRule()
        assert rule.tuple_ratio_threshold == 5.0 == DEFAULT_TUPLE_RATIO_THRESHOLD
        assert rule.feature_ratio_threshold == 1.0 == DEFAULT_FEATURE_RATIO_THRESHOLD

    def test_factorize_in_redundant_region(self):
        assert DecisionRule().predict(tuple_ratio=10, feature_ratio=2)

    def test_materialize_when_tuple_ratio_low(self):
        assert not DecisionRule().predict(tuple_ratio=2, feature_ratio=4)

    def test_materialize_when_feature_ratio_low(self):
        assert not DecisionRule().predict(tuple_ratio=20, feature_ratio=0.5)

    def test_rule_is_disjunctive(self):
        # Both ratios low -> still materialize (no double counting).
        assert not DecisionRule().predict(tuple_ratio=1, feature_ratio=0.1)

    def test_boundary_values_factorize(self):
        assert DecisionRule().predict(tuple_ratio=5.0, feature_ratio=1.0)

    def test_just_below_boundary_materializes(self):
        assert not DecisionRule().predict(tuple_ratio=4.999, feature_ratio=1.0)
        assert not DecisionRule().predict(tuple_ratio=5.0, feature_ratio=0.999)

    def test_custom_thresholds(self):
        rule = DecisionRule(tuple_ratio_threshold=2, feature_ratio_threshold=0.5)
        assert rule.predict(tuple_ratio=3, feature_ratio=0.6)

    def test_explain_mentions_decision(self):
        text = DecisionRule().explain(10, 2)
        assert "factorize" in text
        text = DecisionRule().explain(1, 0.1)
        assert "materialize" in text

    def test_module_level_wrapper(self):
        assert should_factorize(10, 2)
        assert not should_factorize(1, 2)
        assert should_factorize(1, 2, rule=DecisionRule(tuple_ratio_threshold=0.5))


class TestMorpheusFactory:
    def test_returns_normalized_when_redundant(self, single_join_dense):
        dataset, _, _ = single_join_dense
        # TR = 6, FR = 2: above both thresholds.
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes)
        assert isinstance(out, NormalizedMatrix)

    def test_returns_materialized_when_not_redundant(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        strict = DecisionRule(tuple_ratio_threshold=100.0)
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes, rule=strict)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, materialized)

    def test_force_factorized_overrides_rule(self, single_join_dense):
        dataset, _, _ = single_join_dense
        strict = DecisionRule(tuple_ratio_threshold=100.0)
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes,
                       rule=strict, force_factorized=True)
        assert isinstance(out, NormalizedMatrix)

    def test_factory_output_is_numerically_correct(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        out = morpheus(dataset.entity, dataset.indicators, dataset.attributes)
        assert np.allclose(out.to_dense(), materialized)


class TestMorpheusMNFactory:
    def test_returns_normalized_for_high_redundancy(self, mn_dataset):
        dataset, _, _ = mn_dataset
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right])
        assert isinstance(out, MNNormalizedMatrix)

    def test_returns_materialized_below_threshold(self, mn_dataset):
        dataset, normalized, materialized = mn_dataset
        threshold = normalized.redundancy_ratio() + 1.0
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right],
                          redundancy_threshold=threshold)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, materialized)

    def test_force_factorized(self, mn_dataset):
        dataset, _, _ = mn_dataset
        out = morpheus_mn([dataset.left_indicator, dataset.right_indicator],
                          [dataset.left, dataset.right],
                          redundancy_threshold=1e9, force_factorized=True)
        assert isinstance(out, MNNormalizedMatrix)
