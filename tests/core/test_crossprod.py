"""Tests for the cross-product rewrite rules (paper Section 3.3.5, Algorithms 1/2)."""

import numpy as np
import pytest

from repro.core.rewrite import crossprod as rules


class TestCrossprodEfficient:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.crossprod(), materialized.T @ materialized)

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.crossprod(), materialized.T @ materialized)

    def test_sparse(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose(normalized.crossprod(), dense.T @ dense)

    def test_no_entity_features(self, no_entity_features):
        normalized, dense = no_entity_features
        assert np.allclose(normalized.crossprod(), dense.T @ dense)

    def test_result_is_symmetric(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        gram = normalized.crossprod()
        assert np.allclose(gram, gram.T)

    def test_gram_alias(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.gram(), materialized.T @ materialized)


class TestCrossprodNaive:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.crossprod("naive"), materialized.T @ materialized)

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.crossprod("naive"), materialized.T @ materialized)

    def test_naive_equals_efficient(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        assert np.allclose(normalized.crossprod("naive"), normalized.crossprod("efficient"))

    def test_method_set_at_construction(self, single_join_dense):
        dataset, _, materialized = single_join_dense
        from repro.core.normalized_matrix import NormalizedMatrix
        naive = NormalizedMatrix(dataset.entity, dataset.indicators, dataset.attributes,
                                 crossprod_method="naive")
        assert np.allclose(naive.crossprod(), materialized.T @ materialized)


class TestGramTransposed:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.crossprod(), materialized @ materialized.T)

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.T.crossprod(), materialized @ materialized.T)

    def test_sparse(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose(normalized.T.crossprod(), dense @ dense.T)

    def test_no_entity_features(self, no_entity_features):
        normalized, dense = no_entity_features
        assert np.allclose(normalized.T.crossprod(), dense @ dense.T)


class TestRewriteFunctionsDirectly:
    def test_star_naive_function(self, multi_join_dense):
        dataset, _, materialized = multi_join_dense
        out = rules.crossprod_star_naive(dataset.entity, dataset.indicators, dataset.attributes)
        assert np.allclose(out, materialized.T @ materialized)

    def test_star_efficient_function(self, multi_join_dense):
        dataset, _, materialized = multi_join_dense
        out = rules.crossprod_star_efficient(dataset.entity, dataset.indicators, dataset.attributes)
        assert np.allclose(out, materialized.T @ materialized)

    def test_gram_transposed_star_function(self, multi_join_dense):
        dataset, _, materialized = multi_join_dense
        out = rules.gram_transposed_star(dataset.entity, dataset.indicators, dataset.attributes)
        assert np.allclose(out, materialized @ materialized.T)

    def test_mn_naive_function(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        out = rules.crossprod_mn_naive(normalized.indicators, normalized.attributes)
        assert np.allclose(out, materialized.T @ materialized)

    def test_mn_efficient_function(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        out = rules.crossprod_mn_efficient(normalized.indicators, normalized.attributes)
        assert np.allclose(out, materialized.T @ materialized)

    def test_gram_transposed_mn_function(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        out = rules.gram_transposed_mn(normalized.indicators, normalized.attributes)
        assert np.allclose(out, materialized @ materialized.T)


class TestCrossprodComposition:
    """Cross-product after scalar rewrites -- normalized output feeds normalized input."""

    def test_crossprod_of_scaled_matrix(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        scaled = normalized * 2.0
        assert np.allclose(scaled.crossprod(), (2.0 * materialized).T @ (2.0 * materialized))

    def test_crossprod_of_squared_matrix(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        squared = normalized ** 2
        reference = (materialized ** 2).T @ (materialized ** 2)
        assert np.allclose(squared.crossprod(), reference)
