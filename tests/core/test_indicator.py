"""Tests for indicator-matrix validation in :mod:`repro.core.indicator`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.indicator import (
    indicator_stats,
    validate_mn_indicator,
    validate_pk_fk_indicator,
)
from repro.exceptions import IndicatorError
from repro.la.ops import indicator_from_labels


def valid_indicator() -> sp.csr_matrix:
    return indicator_from_labels(np.array([0, 1, 2, 1, 0]))


class TestPkFkValidation:
    def test_valid_matrix_passes(self):
        out = validate_pk_fk_indicator(valid_indicator())
        assert out.shape == (5, 3)

    def test_returns_csr(self):
        out = validate_pk_fk_indicator(valid_indicator().tocoo())
        assert out.format == "csr"

    def test_dense_input_accepted(self):
        dense = valid_indicator().toarray()
        out = validate_pk_fk_indicator(dense)
        assert sp.issparse(out)

    def test_row_with_two_nonzeros_rejected(self):
        bad = valid_indicator().toarray()
        bad[0, 2] = 1.0
        with pytest.raises(IndicatorError):
            validate_pk_fk_indicator(bad)

    def test_row_with_zero_nonzeros_rejected(self):
        bad = valid_indicator().toarray()
        bad[0, :] = 0.0
        with pytest.raises(IndicatorError):
            validate_pk_fk_indicator(bad)

    def test_non_unit_entry_rejected(self):
        bad = valid_indicator().toarray()
        bad[0, 0] = 2.0
        with pytest.raises(IndicatorError):
            validate_pk_fk_indicator(bad)

    def test_unreferenced_column_rejected(self):
        bad = indicator_from_labels(np.array([0, 0, 1]), num_columns=3)
        with pytest.raises(IndicatorError):
            validate_pk_fk_indicator(bad)

    def test_unreferenced_column_allowed_when_not_required(self):
        bad = indicator_from_labels(np.array([0, 0, 1]), num_columns=3)
        out = validate_pk_fk_indicator(bad, require_full_columns=False)
        assert out.shape == (3, 3)


class TestMnValidation:
    def test_valid_matrix_passes(self):
        out = validate_mn_indicator(valid_indicator())
        assert out.nnz == 5

    def test_row_with_two_nonzeros_rejected(self):
        bad = valid_indicator().toarray()
        bad[1, 0] = 1.0
        with pytest.raises(IndicatorError):
            validate_mn_indicator(bad)

    def test_noncontributing_column_rejected(self):
        bad = indicator_from_labels(np.array([0, 1]), num_columns=3)
        with pytest.raises(IndicatorError):
            validate_mn_indicator(bad)

    def test_noncontributing_column_allowed_when_not_required(self):
        bad = indicator_from_labels(np.array([0, 1]), num_columns=3)
        assert validate_mn_indicator(bad, require_full_columns=False).shape == (2, 3)


class TestIndicatorStats:
    def test_nnz_equals_rows(self):
        stats = indicator_stats(valid_indicator())
        assert stats.nnz == 5
        assert stats.shape == (5, 3)

    def test_fanout_range(self):
        stats = indicator_stats(valid_indicator())
        assert stats.min_rows_per_column == 1
        assert stats.max_rows_per_column == 2

    def test_average_fanout(self):
        stats = indicator_stats(valid_indicator())
        assert stats.average_fanout == pytest.approx(5 / 3)

    def test_empty_columns_edge_case(self):
        stats = indicator_stats(sp.csr_matrix((3, 0)))
        assert stats.average_fanout == 0.0
