"""Tests for double matrix multiplication (paper Appendix C)."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.rewrite import multiplication
from repro.exceptions import ShapeError
from repro.la.ops import indicator_from_labels


def build_single_join(n_s: int, d_s: int, n_r: int, d_r: int, seed: int) -> NormalizedMatrix:
    rng = np.random.default_rng(seed)
    entity = rng.standard_normal((n_s, d_s))
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(labels)
    indicator = indicator_from_labels(labels, num_columns=n_r)
    return NormalizedMatrix(entity, [indicator], [attribute])


class TestPlainDMM:
    def test_single_join_pair(self):
        # A is (20 x 8); B must be (8 x anything): n_SB = d_A = 8.
        a = build_single_join(n_s=20, d_s=5, n_r=4, d_r=3, seed=1)
        b = build_single_join(n_s=8, d_s=4, n_r=3, d_r=6, seed=2)
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        assert np.allclose(a @ b, ta @ tb)

    def test_output_is_regular_matrix(self):
        a = build_single_join(20, 5, 4, 3, seed=3)
        b = build_single_join(8, 4, 3, 6, seed=4)
        assert isinstance(a @ b, np.ndarray)

    def test_shape_mismatch_raises(self):
        a = build_single_join(20, 5, 4, 3, seed=5)
        b = build_single_join(10, 4, 5, 6, seed=6)
        with pytest.raises(ShapeError):
            a @ b

    def test_multi_join_falls_back_to_materialization(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        d = materialized.shape[1]
        other = build_single_join(n_s=d, d_s=3, n_r=4, d_r=5, seed=7)
        expected = materialized @ np.asarray(other.materialize())
        assert np.allclose(normalized @ other, expected)


class TestTransposedDMM:
    def test_gram_pair_a_transposed(self):
        """A^T B with both operands sharing the row dimension."""
        a = build_single_join(n_s=25, d_s=4, n_r=5, d_r=3, seed=8)
        b = build_single_join(n_s=25, d_s=6, n_r=5, d_r=2, seed=9)
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        assert np.allclose(a.T @ b, ta.T @ tb)

    def test_outer_pair_equal_entity_widths(self):
        a = build_single_join(n_s=15, d_s=4, n_r=5, d_r=3, seed=10)
        b = build_single_join(n_s=12, d_s=4, n_r=4, d_r=3, seed=11)
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        assert np.allclose(a @ b.T, ta @ tb.T)

    def test_outer_pair_a_narrower_entity(self):
        a = build_single_join(n_s=15, d_s=2, n_r=5, d_r=5, seed=12)
        b = build_single_join(n_s=12, d_s=4, n_r=4, d_r=3, seed=13)
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        assert np.allclose(a @ b.T, ta @ tb.T)

    def test_outer_pair_a_wider_entity(self):
        a = build_single_join(n_s=15, d_s=5, n_r=5, d_r=2, seed=14)
        b = build_single_join(n_s=12, d_s=3, n_r=4, d_r=4, seed=15)
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        assert np.allclose(a @ b.T, ta @ tb.T)

    def test_both_transposed(self):
        a = build_single_join(n_s=8, d_s=4, n_r=3, d_r=6, seed=16)   # d_A = 10
        b = build_single_join(n_s=20, d_s=5, n_r=4, d_r=3, seed=17)  # B is 20 x 8
        ta = np.asarray(a.materialize())
        tb = np.asarray(b.materialize())
        # A^T is 10 x 8, B^T is 8 x 20.
        assert np.allclose(a.T @ b.T, ta.T @ tb.T)


class TestDMMFunctions:
    def test_dmm_single_function(self):
        a = build_single_join(20, 5, 4, 3, seed=18)
        b = build_single_join(8, 4, 3, 6, seed=19)
        out = multiplication.dmm_single(
            a.entity, a.indicators[0], a.attributes[0],
            b.entity, b.indicators[0], b.attributes[0],
        )
        assert np.allclose(out, np.asarray(a.materialize()) @ np.asarray(b.materialize()))

    def test_gram_pair_function_row_mismatch(self):
        a = build_single_join(20, 5, 4, 3, seed=20)
        b = build_single_join(12, 5, 4, 3, seed=21)
        with pytest.raises(ShapeError):
            multiplication.dmm_gram_pair(
                a.entity, a.indicators[0], a.attributes[0],
                b.entity, b.indicators[0], b.attributes[0],
            )

    def test_outer_pair_function_width_mismatch(self):
        a = build_single_join(15, 4, 5, 3, seed=22)
        b = build_single_join(12, 4, 4, 5, seed=23)
        with pytest.raises(ShapeError):
            multiplication.dmm_outer_pair(
                a.entity, a.indicators[0], a.attributes[0],
                b.entity, b.indicators[0], b.attributes[0],
            )


class TestNnzBounds:
    """Theorems C.1 and C.2: bounds on nnz(K_A^T K_B)."""

    def test_crossing_product_nnz_bounds(self):
        rng = np.random.default_rng(29)
        n_s = 40
        n_ra, n_rb = 6, 9
        labels_a = np.concatenate([np.arange(n_ra), rng.integers(0, n_ra, size=n_s - n_ra)])
        labels_b = np.concatenate([np.arange(n_rb), rng.integers(0, n_rb, size=n_s - n_rb)])
        k_a = indicator_from_labels(labels_a, num_columns=n_ra)
        k_b = indicator_from_labels(labels_b, num_columns=n_rb)
        product = (k_a.T @ k_b).tocsr()
        product.eliminate_zeros()
        assert product.nnz >= max(n_ra, n_rb)
        assert product.nnz <= n_s
        assert product.sum() == pytest.approx(n_s)
