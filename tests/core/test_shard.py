"""Sharded parallel execution: shard geometry, operators, pools, edge cases."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.shard import ShardedMatrix, ShardedNormalizedMatrix, shard_bounds
from repro.exceptions import ShapeError
from repro.la.chunked import ChunkedMatrix, row_apply
from repro.la.backend import ShardedBackend, get_backend
from repro.la.parallel import (
    ParallelExecutor,
    ProcessPool,
    SerialPool,
    ThreadPool,
    resolve_pool,
)


class TestShardBounds:
    def test_balanced_partition(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_exact_division(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_single_shard(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_one_row(self):
        assert shard_bounds(1, 1) == [(0, 1)]

    def test_shard_count_clamped_to_rows(self):
        assert shard_bounds(3, 100) == [(0, 1), (1, 2), (2, 3)]
        assert shard_bounds(1, 8) == [(0, 1)]

    def test_covers_every_row_exactly_once(self):
        for n_rows in (1, 2, 5, 17, 64):
            for n_shards in (1, 2, 3, 7, 100):
                bounds = shard_bounds(n_rows, n_shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n_rows
                assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ShapeError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(5, 0)

    def test_zero_rows_yield_a_single_empty_shard(self):
        # Regression: divmod(0, min(k, 0)) used to raise instead of degrading
        # to an empty partition.
        for n_shards in (1, 2, 8):
            assert shard_bounds(0, n_shards) == [(0, 0)]

    def test_zero_row_sharded_matrix(self):
        empty = np.zeros((0, 4))
        sharded = ShardedMatrix.from_matrix(empty, 3)
        assert sharded.shape == (0, 4)
        assert sharded.num_shards == 1
        assert sharded.colsums().shape == (1, 4)
        assert np.allclose(sharded.crossprod(), np.zeros((4, 4)))
        assert sharded.to_dense().shape == (0, 4)

    def test_zero_row_normalized_shard(self):
        attribute = np.arange(6.0).reshape(3, 2)
        indicator = sp.csr_matrix((0, 3))
        normalized = NormalizedMatrix(np.zeros((0, 2)), [indicator], [attribute],
                                      validate=False)
        sharded = normalized.shard(4)
        assert sharded.shape == (0, 4)
        assert sharded.num_shards == 1
        assert np.allclose(sharded.crossprod(), np.zeros((4, 4)))


class TestPools:
    def test_resolve_named_pools(self):
        assert isinstance(resolve_pool("serial"), SerialPool)
        assert isinstance(resolve_pool("thread"), ThreadPool)
        assert isinstance(resolve_pool("process"), ProcessPool)

    def test_resolve_int_and_instance(self):
        pool = resolve_pool(3)
        assert isinstance(pool, ThreadPool) and pool.max_workers == 3
        assert resolve_pool(pool) is pool

    def test_resolve_wraps_raw_executor(self):
        with ThreadPoolExecutor(max_workers=2) as executor:
            pool = resolve_pool(executor)
            assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_resolve_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            resolve_pool("warp-drive")
        with pytest.raises(ValueError):
            resolve_pool(0)
        with pytest.raises(TypeError):
            resolve_pool(object())

    def test_maps_preserve_order(self):
        items = list(range(50))
        for spec in ("serial", "thread"):
            assert resolve_pool(spec).map(lambda x: x + 1, items) == [x + 1 for x in items]

    def test_executor_single_item_runs_inline(self):
        executor = ParallelExecutor("thread")
        assert executor.map(lambda x: x * 10, [4]) == [40]
        # the lazily-created thread pool was never needed
        assert executor.pool._executor is None

    def test_map_reduce(self):
        executor = ParallelExecutor("serial")
        assert executor.map_reduce(lambda x: x * x, [1, 2, 3], sum) == 14


@pytest.fixture
def dense_matrix(rng):
    return rng.standard_normal((23, 5))


class TestShardedMatrix:
    def test_from_matrix_roundtrip(self, dense_matrix):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 4, pool="serial")
        assert sharded.shape == dense_matrix.shape
        assert sharded.num_shards == 4
        assert np.array_equal(sharded.to_dense(), dense_matrix)

    def test_operators_match_dense(self, dense_matrix, rng):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 3, pool="thread")
        x = rng.standard_normal((5, 2))
        w = rng.standard_normal((2, 23))
        y = rng.standard_normal((23, 4))
        assert np.allclose((sharded @ x).to_dense(), dense_matrix @ x)
        assert np.allclose(w @ sharded, w @ dense_matrix)
        assert np.allclose(sharded.T @ y, dense_matrix.T @ y)
        assert np.allclose(sharded.crossprod(), dense_matrix.T @ dense_matrix)
        assert np.allclose(sharded.rowsums(), dense_matrix.sum(axis=1, keepdims=True))
        assert np.allclose(sharded.colsums(), dense_matrix.sum(axis=0, keepdims=True))
        assert sharded.total_sum() == pytest.approx(dense_matrix.sum())
        assert np.allclose((2 * sharded - 1).to_dense(), 2 * dense_matrix - 1)
        assert np.allclose((sharded ** 2).to_dense(), dense_matrix ** 2)
        assert np.allclose((-sharded).to_dense(), -dense_matrix)
        assert np.allclose(sharded.elementwise(np.exp).to_dense(), np.exp(dense_matrix))

    def test_elementwise_matrix_operands(self, dense_matrix):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 4, pool="serial")
        other = dense_matrix + 3.0
        assert np.allclose((sharded * other).to_dense(), dense_matrix * other)
        assert np.allclose((sharded - other).to_dense(), dense_matrix - other)
        assert np.allclose((other / (sharded + 10.0)).to_dense(), other / (dense_matrix + 10.0))
        with pytest.raises(ShapeError):
            sharded * other[:5, :]

    def test_sparse_shards_stay_sparse(self):
        matrix = sp.random(40, 6, density=0.3, random_state=0, format="csr")
        sharded = ShardedMatrix.from_matrix(matrix, 3, pool="serial")
        assert sp.issparse(sharded.to_matrix())
        assert np.allclose(sharded.to_dense(), matrix.toarray())
        assert np.allclose(sharded.crossprod(), (matrix.T @ matrix).toarray())

    def test_transposed_view(self, dense_matrix):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 3)
        view = sharded.T
        assert view.shape == (5, 23)
        assert view.T is sharded
        assert np.array_equal(view.to_dense(), dense_matrix.T)

    def test_results_share_executor(self, dense_matrix):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 3, pool="serial")
        product = sharded @ np.eye(5)
        assert product.executor is sharded.executor

    def test_sum_axis_dispatch(self, dense_matrix):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 2, pool="serial")
        assert sharded.sum() == pytest.approx(dense_matrix.sum())
        assert np.allclose(sharded.sum(axis=0), dense_matrix.sum(axis=0, keepdims=True))
        assert np.allclose(sharded.sum(axis=1), dense_matrix.sum(axis=1, keepdims=True))
        with pytest.raises(ValueError):
            sharded.sum(axis=2)

    def test_shape_validation(self, dense_matrix, rng):
        sharded = ShardedMatrix.from_matrix(dense_matrix, 2)
        with pytest.raises(ShapeError):
            sharded @ rng.standard_normal((4, 2))
        with pytest.raises(ShapeError):
            rng.standard_normal((2, 9)) @ sharded
        with pytest.raises(ShapeError):
            ShardedMatrix([])
        with pytest.raises(ShapeError):
            ShardedMatrix([np.ones((2, 3)), np.ones((2, 4))])


class TestShardedNormalizedMatrix:
    def test_single_join_operators_match_materialized(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(4, pool="thread")
        x = rng.standard_normal((materialized.shape[1], 3))
        y = rng.standard_normal((materialized.shape[0], 2))
        w = rng.standard_normal((2, materialized.shape[0]))
        assert sharded.shape == materialized.shape
        assert np.allclose((sharded @ x).to_dense(), materialized @ x, atol=1e-8)
        assert np.allclose(w @ sharded, w @ materialized, atol=1e-8)
        assert np.allclose(sharded.T @ y, materialized.T @ y, atol=1e-8)
        assert np.allclose(sharded.crossprod(), materialized.T @ materialized, atol=1e-8)
        assert np.allclose(sharded.rowsums(), materialized.sum(axis=1, keepdims=True))
        assert np.allclose(sharded.colsums(), materialized.sum(axis=0, keepdims=True))
        assert sharded.total_sum() == pytest.approx(materialized.sum())

    def test_scalar_ops_stay_sharded_and_factorized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        doubled = 2.0 * sharded + 1.0
        assert isinstance(doubled, ShardedNormalizedMatrix)
        assert doubled.num_shards == sharded.num_shards
        assert np.allclose(doubled.to_dense(), 2.0 * materialized + 1.0)
        squared = sharded ** 2
        assert isinstance(squared, ShardedNormalizedMatrix)
        assert np.allclose(squared.to_dense(), materialized ** 2)

    def test_apply_is_closed(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        result = sharded.apply(np.exp)
        assert isinstance(result, ShardedNormalizedMatrix)
        assert np.allclose(result.to_dense(), np.exp(materialized))

    def test_transposed_operators(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        transposed = normalized.shard(4, pool="serial").T
        y = rng.standard_normal((materialized.shape[0], 2))
        x = rng.standard_normal((3, materialized.shape[1]))
        assert transposed.shape == (materialized.shape[1], materialized.shape[0])
        assert np.allclose(transposed @ y, materialized.T @ y, atol=1e-8)
        assert np.allclose(x @ transposed, x @ materialized.T, atol=1e-8)
        assert np.allclose(transposed.crossprod(), materialized @ materialized.T, atol=1e-8)
        assert np.allclose(transposed.rowsums(), materialized.T.sum(axis=1, keepdims=True))
        assert np.allclose(transposed.colsums(), materialized.T.sum(axis=0, keepdims=True))
        assert transposed.T.transposed is False

    def test_sharding_a_transposed_matrix(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.T.shard(3, pool="serial")
        assert sharded.transposed
        y = rng.standard_normal((materialized.shape[0], 2))
        assert np.allclose(sharded @ y, materialized.T @ y, atol=1e-8)

    def test_one_shard_is_bit_for_bit_serial(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(1, pool="serial")
        assert sharded.num_shards == 1
        x = rng.standard_normal((materialized.shape[1], 3))
        y = rng.standard_normal((materialized.shape[0], 2))
        assert np.array_equal((sharded @ x).to_dense(), np.asarray(normalized @ x))
        assert np.array_equal(sharded.T @ y, np.asarray(normalized.T @ y))
        assert np.array_equal(sharded.crossprod(), normalized.crossprod())
        assert np.array_equal(sharded.rowsums(), normalized.rowsums())
        assert np.array_equal(sharded.colsums(), normalized.colsums())

    def test_shard_count_exceeding_rows_is_clamped(self):
        rng = np.random.default_rng(0)
        entity = rng.standard_normal((3, 2))
        indicator = sp.csr_matrix(np.eye(3))
        attribute = rng.standard_normal((3, 2))
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        sharded = normalized.shard(16)
        assert sharded.num_shards == 3
        assert np.allclose(sharded.to_dense(), normalized.to_dense())

    def test_one_row_matrix(self):
        entity = np.array([[1.0, 2.0]])
        indicator = sp.csr_matrix(np.array([[1.0]]))
        attribute = np.array([[3.0, 4.0]])
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        sharded = normalized.shard(4, pool="serial")
        assert sharded.num_shards == 1
        assert np.allclose(sharded.to_dense(), [[1.0, 2.0, 3.0, 4.0]])
        assert np.allclose(sharded.crossprod(), normalized.crossprod())

    def test_empty_attribute_list_entity_only(self, rng):
        """A normalized matrix with no joins (entity features only) still shards."""
        entity = rng.standard_normal((12, 4))
        normalized = NormalizedMatrix(entity, [], [])
        sharded = normalized.shard(3, pool="serial")
        assert sharded.num_shards == 3
        x = rng.standard_normal((4, 2))
        assert np.allclose((sharded @ x).to_dense(), entity @ x)
        assert np.allclose(sharded.crossprod(), entity.T @ entity, atol=1e-8)

    def test_no_entity_features(self, no_entity_features, rng):
        normalized, materialized = no_entity_features
        sharded = normalized.shard(4, pool="serial")
        x = rng.standard_normal((materialized.shape[1], 2))
        assert np.allclose((sharded @ x).to_dense(), materialized @ x, atol=1e-8)
        assert np.allclose(sharded.crossprod(), materialized.T @ materialized, atol=1e-8)

    def test_sparse_bases(self, single_join_sparse, rng):
        normalized, materialized = single_join_sparse
        sharded = normalized.shard(5, pool="serial")
        x = rng.standard_normal((materialized.shape[1], 2))
        assert np.allclose((sharded @ x).to_dense(), materialized @ x, atol=1e-8)
        assert np.allclose(sharded.crossprod(), materialized.T @ materialized, atol=1e-8)
        assert np.allclose(sharded.to_dense(), materialized)

    def test_multi_join_star(self, multi_join_dense, rng):
        _, normalized, materialized = multi_join_dense
        sharded = normalized.shard(4, pool="serial")
        x = rng.standard_normal((materialized.shape[1], 2))
        assert np.allclose((sharded @ x).to_dense(), materialized @ x, atol=1e-8)
        assert np.allclose(sharded.crossprod(), materialized.T @ materialized, atol=1e-8)

    def test_mn_matrix(self, mn_dataset, rng):
        _, normalized, materialized = mn_dataset
        dense = np.asarray(
            materialized.todense() if sp.issparse(materialized) else materialized
        )
        sharded = normalized.shard(4, pool="serial")
        x = rng.standard_normal((dense.shape[1], 2))
        assert np.allclose((sharded @ x).to_dense(), dense @ x, atol=1e-8)
        assert np.allclose(sharded.crossprod(), dense.T @ dense, atol=1e-8)
        assert np.allclose(sharded.T.crossprod(), dense @ dense.T, atol=1e-8)

    def test_attribute_matrices_are_shared_not_copied(self, single_join_dense):
        _, normalized, _ = single_join_dense
        sharded = normalized.shard(3)
        for piece in sharded.pieces:
            assert piece.attributes[0] is normalized.attributes[0]

    def test_ginv_matches_pinv(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        assert np.allclose(sharded.ginv(), np.linalg.pinv(materialized), atol=1e-7)
        assert np.allclose(sharded.T.ginv(), np.linalg.pinv(materialized.T), atol=1e-7)

    def test_solve_matches_lstsq(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        y = rng.standard_normal((materialized.shape[0], 1))
        expected = np.linalg.lstsq(materialized, y, rcond=None)[0]
        assert np.allclose(sharded.solve(y), expected, atol=1e-7)

    def test_solve_on_transposed_matrix(self, single_join_dense, rng):
        """Regression: the projected RHS of a transposed solve stays sharded
        and must be densified; result must match the eager transposed solve
        (the system is underdetermined, so lstsq's minimum-norm answer is not
        the reference -- the eager normal-equation path is)."""
        _, normalized, materialized = single_join_dense
        transposed = normalized.shard(3, pool="serial").T
        rhs = rng.standard_normal((materialized.shape[1], 1))
        expected = normalized.T.solve(rhs)
        assert np.allclose(transposed.solve(rhs), expected, atol=1e-8)

    def test_crossprod_accepts_method_argument(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        assert np.allclose(sharded.crossprod("naive"), materialized.T @ materialized,
                           atol=1e-8)
        plain = ShardedMatrix.from_matrix(materialized, 3, pool="serial")
        assert np.allclose(plain.crossprod("naive"), materialized.T @ materialized,
                           atol=1e-8)

    def test_elementwise_matrix_op(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        other = materialized + 0.5
        assert np.allclose((sharded * other).to_dense(), materialized * other)
        assert np.allclose(sharded.T * other.T, materialized.T * other.T)
        with pytest.raises(ShapeError):
            sharded + other[:-1, :]

    def test_equals_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        assert sharded.equals_materialized(materialized)
        assert not sharded.equals_materialized(materialized + 1.0)

    def test_process_pool_executes(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(2, pool=ProcessPool(max_workers=2))
        x = rng.standard_normal((materialized.shape[1], 2))
        try:
            assert np.allclose((sharded @ x).to_dense(), materialized @ x, atol=1e-8)
        finally:
            sharded.executor.pool.close()

    def test_lazy_composes_with_sharding(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        lazy = sharded.lazy()
        x = rng.standard_normal((materialized.shape[1], 2))
        gram_node = lazy.crossprod()
        first = (gram_node @ x).evaluate()
        second = (gram_node @ x).evaluate()
        assert np.allclose(first, materialized.T @ materialized @ x, atol=1e-8)
        assert np.allclose(first, second)
        stats = lazy.cache.stats()
        assert stats.hits >= 1  # the crossprod node is served from the cache

    def test_rejects_transposed_pieces(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            ShardedNormalizedMatrix([normalized.T])
        with pytest.raises(ShapeError):
            ShardedNormalizedMatrix([])


class TestRowApplyParallel:
    def test_serial_default_unchanged(self, rng):
        chunked = ChunkedMatrix.from_matrix(rng.standard_normal((20, 3)), 6)
        results = row_apply(chunked, lambda c: c.sum())
        assert len(results) == chunked.num_chunks

    def test_parallel_pool_matches_serial(self, rng):
        matrix = rng.standard_normal((20, 3))
        chunked = ChunkedMatrix.from_matrix(matrix, 6)
        serial = row_apply(chunked, lambda c: float(c.sum()))
        threaded = row_apply(chunked, lambda c: float(c.sum()), pool="thread")
        assert serial == threaded

    def test_bound_method(self, rng):
        chunked = ChunkedMatrix.from_matrix(rng.standard_normal((9, 2)), 3)
        assert chunked.row_apply(lambda c: c.shape[0], pool=2) == [3, 3, 3]


class TestShardedBackend:
    def test_registry_lookup(self):
        backend = get_backend("sharded", n_shards=3)
        assert isinstance(backend, ShardedBackend)
        assert backend.n_shards == 3

    def test_from_dense_and_sparse(self, rng):
        backend = ShardedBackend(n_shards=2, pool="serial")
        dense = backend.from_dense(rng.standard_normal((10, 3)))
        assert isinstance(dense, ShardedMatrix) and dense.num_shards == 2
        sparse = backend.from_sparse(sp.random(10, 3, density=0.4, random_state=1))
        assert isinstance(sparse, ShardedMatrix)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedBackend(n_shards=0)


class TestShardedOperandComposition:
    """Sharded results feeding straight back into transposed products.

    ``T.T @ (T @ w)`` is the textbook gradient composition: the inner LMM
    returns a ShardedMatrix, which must be accepted as the row-aligned right
    operand of the transposed product (regression test -- this used to raise
    ShapeError through ensure_2d(np.asarray(ShardedMatrix))).
    """

    def test_normalized_gradient_composition(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        w = np.random.default_rng(0).standard_normal((materialized.shape[1], 1))
        sharded = normalized.shard(3, pool="serial")
        product = sharded @ w
        assert isinstance(product, ShardedMatrix)
        gradient = sharded.T @ product
        assert np.allclose(np.asarray(gradient), materialized.T @ (materialized @ w))

    def test_plain_gradient_composition(self, rng):
        matrix = rng.standard_normal((31, 4))
        w = rng.standard_normal((4, 1))
        sharded = ShardedMatrix.from_matrix(matrix, 4)
        gradient = sharded.T @ (sharded @ w)
        assert np.allclose(np.asarray(gradient), matrix.T @ (matrix @ w))

    def test_mismatched_bounds_are_concretized(self, rng):
        matrix = rng.standard_normal((30, 4))
        w = rng.standard_normal((4, 2))
        sharded = ShardedMatrix.from_matrix(matrix, 3)
        other = ShardedMatrix.from_matrix(matrix @ w, 5)  # different bounds
        gradient = sharded.T @ other
        assert np.allclose(np.asarray(gradient), matrix.T @ (matrix @ w))

    def test_transposed_crossprod_symmetric_block_grid(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        sharded = normalized.shard(3, pool="serial")
        gram = sharded.T.crossprod()
        assert np.allclose(gram, materialized @ materialized.T)
        assert np.allclose(gram, gram.T)
