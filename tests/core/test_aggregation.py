"""Tests for the aggregation rewrite rules (paper Section 3.3.2)."""

import numpy as np
import pytest


class TestRowSums:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.rowsums().ravel(), materialized.sum(axis=1))

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.rowsums().ravel(), materialized.sum(axis=1))

    def test_sparse(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose(normalized.rowsums().ravel(), dense.sum(axis=1))

    def test_no_entity_features(self, no_entity_features):
        normalized, dense = no_entity_features
        assert np.allclose(normalized.rowsums().ravel(), dense.sum(axis=1))

    def test_shape_is_column(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert normalized.rowsums().shape == (materialized.shape[0], 1)

    def test_transposed(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.rowsums().ravel(), materialized.T.sum(axis=1))


class TestColSums:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.colsums().ravel(), materialized.sum(axis=0))

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose(normalized.colsums().ravel(), materialized.sum(axis=0))

    def test_sparse(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose(normalized.colsums().ravel(), dense.sum(axis=0))

    def test_no_entity_features(self, no_entity_features):
        normalized, dense = no_entity_features
        assert np.allclose(normalized.colsums().ravel(), dense.sum(axis=0))

    def test_shape_is_row(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert normalized.colsums().shape == (1, materialized.shape[1])

    def test_transposed(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.colsums().ravel(), materialized.T.sum(axis=0))


class TestTotalSum:
    def test_single_join(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.isclose(normalized.total_sum(), materialized.sum())

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.isclose(normalized.total_sum(), materialized.sum())

    def test_sparse(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.isclose(normalized.total_sum(), dense.sum())

    def test_transposed_sum_equals_sum(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert np.isclose(normalized.T.total_sum(), normalized.total_sum())

    def test_consistency_with_row_and_col_sums(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        assert np.isclose(normalized.rowsums().sum(), normalized.total_sum())
        assert np.isclose(normalized.colsums().sum(), normalized.total_sum())


class TestNumpyStyleSum:
    def test_axis_none(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.isclose(normalized.sum(), materialized.sum())

    def test_axis_zero(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.sum(axis=0).ravel(), materialized.sum(axis=0))

    def test_axis_one(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.sum(axis=1).ravel(), materialized.sum(axis=1))

    def test_invalid_axis(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ValueError):
            normalized.sum(axis=2)


class TestAggregationAfterScalarOps:
    """Aggregations compose with scalar rewrites (rowSums(T^2) is the K-Means idiom)."""

    def test_rowsums_of_square(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose((normalized ** 2).rowsums().ravel(), (materialized ** 2).sum(axis=1))

    def test_colsums_of_scaled(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose((normalized * 3.0).colsums().ravel(), (materialized * 3.0).sum(axis=0))

    def test_sum_of_exp(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.isclose((normalized.apply(np.exp)).total_sum(), np.exp(materialized).sum())
