"""Tests for the lazy expression graph and the cross-iteration memoization.

Covers the four contract areas the lazy subsystem promises:

* graph construction (operator nodes, shape propagation, invariance marking,
  fail-fast shape errors),
* memoization semantics (hit/miss counting, per-matrix cache reuse,
  distinct keys for differing operands, non-invariant nodes never cached),
* cache mechanics (LRU eviction, clearing, counter snapshots), and
* eager-vs-lazy numerical equivalence for every Table-1 operator on PK-FK and
  M:N normalized matrices with dense and sparse base matrices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lazy import (
    FactorizedCache,
    LazyExpr,
    LeafExpr,
    as_lazy,
    constant,
    evaluate,
    find_cache,
    wrap,
)
from repro.exceptions import ShapeError
from repro.la.generic import to_dense_result
from repro.la.types import to_dense


def dense_of(result) -> np.ndarray:
    """Densify an evaluation result that may be normalized/sparse/scalar."""
    if isinstance(result, (int, float, np.floating)):
        return np.array([float(result)])
    if hasattr(result, "materialize"):
        return to_dense(result.materialize())
    return np.atleast_1d(to_dense_result(result))


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------

class TestGraphConstruction:
    def test_lazy_returns_invariant_leaf_with_cache(self, single_join_dense):
        _, normalized, _ = single_join_dense
        leaf = normalized.lazy()
        assert isinstance(leaf, LeafExpr)
        assert leaf.op == "leaf"
        assert leaf.invariant
        assert isinstance(leaf.cache, FactorizedCache)
        assert leaf.shape == normalized.shape

    def test_repeated_lazy_calls_share_cache_and_token(self, single_join_dense):
        _, normalized, _ = single_join_dense
        first, second = normalized.lazy(), normalized.lazy()
        assert first.cache is second.cache
        assert first.key == second.key

    def test_operator_nodes_and_shapes(self, single_join_dense):
        _, normalized, _ = single_join_dense
        n, d = normalized.shape
        lt = normalized.lazy()
        assert lt.T.shape == (d, n)
        assert lt.crossprod().shape == (d, d)
        assert lt.ginv().shape == (d, n)
        assert lt.rowsums().shape == (n, 1)
        assert lt.colsums().shape == (1, d)
        assert lt.total_sum().shape == ()
        assert (lt @ np.ones((d, 3))).shape == (n, 3)
        assert (2.0 * lt).shape == (n, d)
        assert lt.exp().shape == (n, d)
        assert (lt.sum(axis=0)).op == "colsums"
        assert (lt.sum(axis=1)).op == "rowsums"
        assert (lt.sum()).op == "total_sum"

    def test_construction_performs_no_linear_algebra(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        expr = (2 * lt).crossprod().ginv() @ (lt.T @ np.ones((normalized.shape[0], 1)))
        # Nothing was evaluated: the cache never saw a lookup or a store.
        assert lt.cache.stats().lookups == 0
        assert len(lt.cache) == 0
        assert expr.num_nodes() >= 7

    def test_shape_mismatch_raises_at_construction(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        with pytest.raises(ShapeError):
            lt @ np.ones((normalized.shape[1] + 1, 2))
        with pytest.raises(ShapeError):
            lt + np.ones((3, 3))

    def test_invariance_propagation(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        w = np.ones((normalized.shape[1], 1))
        assert lt.crossprod().invariant
        assert (2 * lt).T.invariant
        assert (lt.T @ constant(np.ones((normalized.shape[0], 1)))).invariant
        assert not (lt @ w).invariant          # auto-wrapped operands are mutable
        assert not (lt @ wrap(w)).invariant
        y = np.ones((normalized.shape[0], 1))
        assert not ((lt @ w) - constant(y)).invariant

    def test_axis_validation(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ValueError):
            normalized.lazy().sum(axis=2)

    def test_describe_renders_tree(self, single_join_dense):
        _, normalized, _ = single_join_dense
        text = normalized.lazy().crossprod().describe()
        assert "crossprod" in text and "leaf" in text


# ---------------------------------------------------------------------------
# Memoization semantics
# ---------------------------------------------------------------------------

class TestMemoization:
    def test_crossprod_memoized_across_graphs(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        first = lt.crossprod().evaluate()
        second = normalized.lazy().crossprod().evaluate()  # fresh graph, same matrix
        stats = lt.cache.stats()
        assert stats.misses == 1 and stats.hits == 1
        assert first is second  # served from cache, not recomputed
        np.testing.assert_allclose(first, materialized.T @ materialized, atol=1e-9)

    def test_differing_scalar_operands_use_distinct_entries(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        doubled = (2 * lt).crossprod().evaluate()
        tripled = (3 * lt).crossprod().evaluate()
        assert lt.cache.stats().hits == 0  # no false sharing between 2T and 3T
        np.testing.assert_allclose(doubled, 4 * (materialized.T @ materialized), atol=1e-8)
        np.testing.assert_allclose(tripled, 9 * (materialized.T @ materialized), atol=1e-8)

    def test_differing_constants_use_distinct_entries(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        y1 = np.ones((normalized.shape[0], 1))
        y2 = 2 * y1
        first = (lt.T @ constant(y1)).evaluate()
        second = (lt.T @ constant(y2)).evaluate()
        # Three distinct entries: the shared transpose node plus one matmul per
        # constant -- the differing constants never share a product entry (the
        # single hit is the shared transpose subexpression).
        stats = lt.cache.stats()
        assert stats.misses == 3 and stats.hits == 1
        np.testing.assert_allclose(second, materialized.T @ y2, atol=1e-9)
        np.testing.assert_allclose(first, materialized.T @ y1, atol=1e-9)

    def test_equal_content_constants_share_entries(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        y = np.arange(normalized.shape[0], dtype=np.float64).reshape(-1, 1)
        (lt.T @ constant(y)).evaluate()
        (lt.T @ constant(y.copy())).evaluate()  # equal content, different object
        assert lt.cache.stats().hits == 1

    def test_non_invariant_nodes_never_cached(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        w = np.ones((normalized.shape[1], 1))
        (lt @ w).evaluate()
        (lt @ w).evaluate()
        stats = lt.cache.stats()
        assert stats.lookups == 0 and len(lt.cache) == 0

    def test_invariant_subexpression_cached_inside_variant_graph(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        w = 0.01 * np.ones((normalized.shape[1], 1))
        gram = lt.crossprod()
        for iteration in range(4):
            result = (gram @ w).evaluate()
            np.testing.assert_allclose(
                result, (materialized.T @ materialized) @ w, atol=1e-8
            )
        stats = lt.cache.stats()
        assert stats.misses == 1 and stats.hits == 3  # >= 1 hit per later iteration

    def test_two_matrices_never_collide(self, single_join_dense, multi_join_dense):
        _, single, single_t = single_join_dense
        _, multi, multi_t = multi_join_dense
        shared = FactorizedCache()
        a = single.lazy(cache=shared).colsums().evaluate()
        b = multi.lazy(cache=shared).colsums().evaluate()
        assert shared.stats().misses == 2 and shared.stats().hits == 0
        np.testing.assert_allclose(np.asarray(a).ravel(), single_t.sum(axis=0), atol=1e-9)
        np.testing.assert_allclose(np.asarray(b).ravel(), multi_t.sum(axis=0), atol=1e-9)

    def test_shared_dag_node_evaluated_once_per_call(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        gram = lt.crossprod()
        diff = (gram @ np.eye(normalized.shape[1])) - gram
        np.testing.assert_allclose(
            diff.evaluate(), np.zeros((normalized.shape[1],) * 2), atol=1e-9
        )
        # One shared invariant node: one miss on first use plus at most one
        # hit for the second reference within the same evaluation.
        assert lt.cache.stats().misses == 1

    def test_explicit_cache_argument_wins(self, single_join_dense):
        _, normalized, _ = single_join_dense
        private = FactorizedCache()
        normalized.lazy().crossprod().evaluate(cache=private)
        assert private.stats().misses == 1
        assert len(normalized.lazy().cache) == 0

    def test_find_cache_locates_leaf_cache(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        expr = (2 * lt).crossprod() @ np.ones((normalized.shape[1], 1))
        assert find_cache(expr) is lt.cache

    def test_evaluate_without_any_cache_still_works(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        leaf = LeafExpr(normalized, invariant=True)  # no cache attached
        result = leaf.crossprod().evaluate()
        np.testing.assert_allclose(result, materialized.T @ materialized, atol=1e-9)

    def test_evaluate_rejects_non_expressions(self):
        with pytest.raises(TypeError):
            evaluate(np.ones((2, 2)))

    def test_distinct_lambdas_never_share_a_cache_entry(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        plus_one = dense_of(lt.apply(lambda v: v + 1.0).evaluate())
        times_ten = dense_of(lt.apply(lambda v: v * 10.0).evaluate())
        np.testing.assert_allclose(plus_one, materialized + 1.0, atol=1e-9)
        np.testing.assert_allclose(times_ten, materialized * 10.0, atol=1e-9)

    def test_bound_methods_of_distinct_instances_never_share(self, single_join_dense):
        _, normalized, materialized = single_join_dense

        class Scaler:
            __slots__ = ("factor",)

            def __init__(self, factor):
                self.factor = factor

            def transform(self, v):
                return v * self.factor

        lt = normalized.lazy()
        doubled = dense_of(lt.apply(Scaler(2.0).transform).evaluate())
        tenfold = dense_of(lt.apply(Scaler(10.0).transform).evaluate())
        np.testing.assert_allclose(doubled, materialized * 2.0, atol=1e-9)
        np.testing.assert_allclose(tenfold, materialized * 10.0, atol=1e-9)

    def test_one_dimensional_operands_are_promoted(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        n, d = normalized.shape
        w1d = np.linspace(-1.0, 1.0, d)
        lt = normalized.lazy()
        np.testing.assert_allclose(
            dense_of((lt @ w1d).evaluate()), materialized @ w1d.reshape(-1, 1), atol=1e-9
        )
        y1d = np.ones(n)
        np.testing.assert_allclose(
            dense_of((lt.T @ constant(y1d)).evaluate()),
            materialized.T @ y1d.reshape(-1, 1), atol=1e-9,
        )
        assert wrap(w1d).shape == (d, 1)
        assert as_lazy(np.ones(5)).shape == (5, 1)

    def test_same_function_object_is_memoized(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        shift = lambda v: v + 1.0  # noqa: E731 - needs a reusable function object
        lt.apply(shift).evaluate()
        lt.apply(shift).evaluate()
        assert lt.cache.stats().hits == 1

    def test_cached_dense_results_are_read_only(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        lt = normalized.lazy()
        first = lt.rowsums().evaluate()
        with pytest.raises(ValueError):
            first[0, 0] = 123.0  # mutating a cached result must not corrupt it
        again = lt.rowsums().evaluate()
        np.testing.assert_allclose(
            again, materialized.sum(axis=1, keepdims=True), atol=1e-9
        )


# ---------------------------------------------------------------------------
# Cache mechanics
# ---------------------------------------------------------------------------

class TestFactorizedCache:
    def test_lru_eviction(self):
        cache = FactorizedCache(maxsize=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == (True, 1)  # refresh "a"; "b" becomes LRU
        cache.store("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().evictions == 1

    def test_counters_and_hit_rate(self):
        cache = FactorizedCache()
        assert cache.hit_rate == 0.0
        cache.lookup("missing")
        cache.store("x", 42)
        cache.lookup("x")
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5 and stats.lookups == 2

    def test_clear_and_reset(self):
        cache = FactorizedCache()
        cache.store("x", 1)
        cache.lookup("x")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
        cache.reset_counters()
        assert cache.stats().lookups == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            FactorizedCache(maxsize=0)


# ---------------------------------------------------------------------------
# Eager-vs-lazy operator equivalence
# ---------------------------------------------------------------------------

def _operator_cases(lt, eager, dense):
    n, d = dense.shape
    w = np.linspace(-1.0, 1.0, d).reshape(-1, 1)
    x = np.linspace(0.5, 1.5, 2 * n).reshape(n, 2)
    return [
        ("matmul", lt @ w, eager @ w),
        ("rmatmul", x.T @ lt, x.T @ eager),
        ("transpose-matmul", lt.T @ x, eager.T @ x),
        ("crossprod", lt.crossprod(), eager.crossprod()),
        ("crossprod-naive", lt.crossprod("naive"), eager.crossprod("naive")),
        ("gramian", lt.T.crossprod(), eager.T.crossprod()),
        ("ginv", lt.ginv(), eager.ginv()),
        ("rowsums", lt.rowsums(), eager.rowsums()),
        ("colsums", lt.colsums(), eager.colsums()),
        ("total_sum", lt.total_sum(), eager.total_sum()),
        ("scale", 2.5 * lt, 2.5 * eager),
        ("shift", lt + 1.0, eager + 1.0),
        ("rsub", 1.0 - lt, 1.0 - eager),
        ("power", lt ** 2, eager ** 2),
        ("negate", -lt, -eager),
        ("chain", ((lt * 2.0) + 1.0).rowsums(), ((eager * 2.0) + 1.0).rowsums()),
        ("apply-exp", (lt * 0.01).exp(), (eager * 0.01).exp()),
        ("elemwise-matrix", lt * np.full((n, d), 0.5), eager * np.full((n, d), 0.5)),
        ("elemwise-sub", lt - np.full((n, d), 0.25), eager - np.full((n, d), 0.25)),
    ]


class TestOperatorEquivalence:
    @pytest.mark.parametrize("fixture_name", [
        "single_join_dense", "multi_join_dense", "no_entity_features",
    ])
    def test_pkfk_operators(self, fixture_name, request):
        item = request.getfixturevalue(fixture_name)
        normalized, dense = (item[1], to_dense(item[2])) if len(item) == 3 else \
            (item[0], to_dense(item[1]))
        lt = normalized.lazy()
        for name, lazy_expr, eager_result in _operator_cases(lt, normalized, dense):
            np.testing.assert_allclose(
                dense_of(lazy_expr.evaluate()), dense_of(eager_result),
                atol=1e-8, err_msg=f"operator {name} diverged",
            )

    def test_sparse_base_matrices(self, single_join_sparse):
        normalized, dense = single_join_sparse
        lt = normalized.lazy()
        w = np.ones((dense.shape[1], 1))
        np.testing.assert_allclose(dense_of((lt @ w).evaluate()), dense @ w, atol=1e-8)
        np.testing.assert_allclose(lt.crossprod().evaluate(), dense.T @ dense, atol=1e-8)
        np.testing.assert_allclose(
            dense_of((2 * lt).rowsums().evaluate()),
            (2 * dense).sum(axis=1, keepdims=True), atol=1e-8,
        )

    def test_mn_operators(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        dense = to_dense(materialized)
        lt = normalized.lazy()
        w = np.ones((dense.shape[1], 1))
        np.testing.assert_allclose(dense_of((lt @ w).evaluate()), dense @ w, atol=1e-8)
        np.testing.assert_allclose(lt.crossprod().evaluate(), dense.T @ dense, atol=1e-8)
        np.testing.assert_allclose(
            dense_of(lt.colsums().evaluate()).ravel(), dense.sum(axis=0), atol=1e-8
        )
        np.testing.assert_allclose(
            dense_of((lt ** 2).rowsums().evaluate()),
            (dense ** 2).sum(axis=1, keepdims=True), atol=1e-8,
        )
        assert lt.cache is normalized.lazy().cache

    def test_as_lazy_on_plain_matrix(self):
        rng = np.random.default_rng(5)
        data = rng.standard_normal((30, 4))
        lt = as_lazy(data)
        assert lt.invariant and lt.cache is not None
        np.testing.assert_allclose(lt.crossprod().evaluate(), data.T @ data, atol=1e-9)
        lt.crossprod().evaluate()
        assert lt.cache.stats().hits == 1

    def test_as_lazy_passthrough(self, single_join_dense):
        _, normalized, _ = single_join_dense
        lt = normalized.lazy()
        assert as_lazy(lt) is lt

    def test_constant_accepts_no_token_override(self):
        # Keys always come from the content digest, so two different
        # constants can never be forced onto one cache entry.
        with pytest.raises(TypeError):
            constant(np.ones((2, 1)), name="y")

    def test_constant_repins_non_invariant_leaves(self):
        y = np.ones((4, 1))
        assert not wrap(y).invariant
        assert constant(wrap(y)).invariant
        # Content hashing still applies, so equal content shares a key.
        assert constant(wrap(y)).key == constant(y).key

    def test_as_lazy_honours_explicit_empty_cache(self):
        # An empty FactorizedCache is falsy (it has __len__); it must still be
        # adopted when passed explicitly.
        data = np.arange(12, dtype=np.float64).reshape(4, 3)
        shared = FactorizedCache()
        lt = as_lazy(data, cache=shared)
        assert lt.cache is shared
        lt.crossprod().evaluate()
        lt.crossprod().evaluate()
        assert shared.stats().hits == 1 and shared.stats().misses == 1
