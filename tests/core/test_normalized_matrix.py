"""Construction, metadata and materialization tests for :class:`NormalizedMatrix`."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import IndicatorError, ShapeError
from repro.la.ops import indicator_from_labels


class TestConstruction:
    def test_shapes_and_joins(self, single_join_dense):
        dataset, normalized, materialized = single_join_dense
        assert normalized.shape == materialized.shape
        assert normalized.num_joins == 1

    def test_multi_join_shape(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert normalized.shape == materialized.shape
        assert normalized.num_joins == 2

    def test_entity_and_attribute_widths(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        assert normalized.entity_width == 4
        assert normalized.attribute_widths == [6, 3]

    def test_logical_dimensions(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert normalized.logical_rows == materialized.shape[0]
        assert normalized.logical_cols == materialized.shape[1]

    def test_ndim_is_two(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert normalized.ndim == 2

    def test_mismatched_indicator_attribute_counts(self, single_join_dense):
        dataset, _, _ = single_join_dense
        with pytest.raises(ShapeError):
            NormalizedMatrix(dataset.entity, dataset.indicators, [])

    def test_indicator_row_mismatch_rejected(self, single_join_dense):
        dataset, _, _ = single_join_dense
        short_entity = dataset.entity[:-1, :]
        with pytest.raises(ShapeError):
            NormalizedMatrix(short_entity, dataset.indicators, dataset.attributes)

    def test_indicator_column_mismatch_rejected(self, single_join_dense):
        dataset, _, _ = single_join_dense
        wrong_attribute = dataset.attributes[0][:-1, :]
        with pytest.raises(ShapeError):
            NormalizedMatrix(dataset.entity, dataset.indicators, [wrong_attribute])

    def test_invalid_indicator_rejected(self, single_join_dense):
        dataset, _, _ = single_join_dense
        bad = dataset.indicators[0].toarray()
        bad[0, :] = 0
        with pytest.raises(IndicatorError):
            NormalizedMatrix(dataset.entity, [bad], dataset.attributes)

    def test_requires_entity_or_join(self):
        with pytest.raises(ShapeError):
            NormalizedMatrix(None, [], [])

    def test_invalid_crossprod_method(self, single_join_dense):
        dataset, _, _ = single_join_dense
        with pytest.raises(ValueError):
            NormalizedMatrix(dataset.entity, dataset.indicators, dataset.attributes,
                             crossprod_method="fast")

    def test_entity_only_matrix(self):
        entity = np.ones((4, 3))
        normalized = NormalizedMatrix(entity, [], [])
        assert normalized.shape == (4, 3)
        assert np.allclose(normalized.to_dense(), entity)

    def test_no_entity_features(self, no_entity_features):
        normalized, materialized = no_entity_features
        assert normalized.entity_width == 0
        assert normalized.shape == materialized.shape


class TestMaterialization:
    def test_materialize_matches_block_structure(self, multi_join_dense):
        dataset, normalized, materialized = multi_join_dense
        expected = np.hstack([dataset.entity] + [
            np.asarray(k @ r) for k, r in zip(dataset.indicators, dataset.attributes)
        ])
        assert np.allclose(materialized, expected)
        assert np.allclose(normalized.to_dense(), expected)

    def test_materialize_sparse_inputs(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose(normalized.to_dense(), dense)

    def test_transposed_materialize(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.to_dense(), materialized.T)

    def test_equals_materialized_helper(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert normalized.equals_materialized(materialized)
        assert not normalized.equals_materialized(materialized + 1.0)
        assert not normalized.equals_materialized(materialized[:, :-1])


class TestTransposeFlag:
    def test_transpose_flips_shape(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert normalized.T.shape == materialized.T.shape

    def test_double_transpose_restores(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert normalized.T.T.shape == normalized.shape
        assert not normalized.T.T.transposed

    def test_transpose_shares_components(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert normalized.T.entity is normalized.entity
        assert normalized.T.indicators is not None

    def test_transpose_method_alias(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert normalized.transpose().transposed


class TestRatios:
    def test_tuple_ratio(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        expected = dataset.entity.shape[0] / dataset.attributes[0].shape[0]
        assert normalized.tuple_ratio == pytest.approx(expected)

    def test_feature_ratio(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        expected = dataset.attributes[0].shape[1] / dataset.entity.shape[1]
        assert normalized.feature_ratio == pytest.approx(expected)

    def test_feature_ratio_infinite_without_entity_features(self, no_entity_features):
        normalized, _ = no_entity_features
        assert normalized.feature_ratio == float("inf")

    def test_redundancy_ratio_exceeds_one_for_redundant_join(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert normalized.redundancy_ratio() > 1.0

    def test_redundancy_ratio_matches_definition(self, single_join_dense):
        dataset, normalized, materialized = single_join_dense
        base = dataset.entity.size + dataset.attributes[0].size
        assert normalized.redundancy_ratio() == pytest.approx(materialized.size / base)
