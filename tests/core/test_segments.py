"""Column-segment metadata: accessors, partition invariants, fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ColumnSegment, schema_fingerprint
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.segments import build_segments, segment_widths


class TestColumnSegmentsStar:
    def test_segments_partition_columns(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        segments = normalized.column_segments()
        assert segments[0].name == "entity"
        assert segments[0].is_entity
        assert [s.name for s in segments[1:]] == ["table_0", "table_1"]
        assert segments[0].start == 0
        for before, after in zip(segments, segments[1:]):
            assert before.stop == after.start
        assert segments[-1].stop == normalized.logical_cols

    def test_widths_match_matrix_metadata(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        segments = normalized.column_segments()
        assert segments[0].width == normalized.entity_width
        assert [s.width for s in segments[1:]] == normalized.attribute_widths
        assert normalized.n_features_per_table == {
            "entity": normalized.entity_width,
            "table_0": normalized.attribute_widths[0],
            "table_1": normalized.attribute_widths[1],
        }

    def test_segment_slices_reassemble_matmul(self, multi_join_dense):
        """Slicing a weight vector by segments reproduces the full product."""
        _, normalized, materialized = multi_join_dense
        rng = np.random.default_rng(3)
        w = rng.standard_normal((normalized.logical_cols, 2))
        dense = np.asarray(materialized)
        total = np.zeros((normalized.logical_rows, 2))
        for segment in normalized.column_segments():
            total += dense[:, segment.slice()] @ w[segment.slice()]
        np.testing.assert_allclose(total, dense @ w, rtol=1e-12, atol=1e-12)

    def test_absent_entity_matrix_has_no_entity_segment(self, no_entity_features):
        normalized, _ = no_entity_features
        segments = normalized.column_segments()
        assert [s.name for s in segments] == ["table_0"]
        assert segments[0].table_index == 0
        assert segments[-1].stop == normalized.logical_cols
        assert normalized.n_features_per_table == {"table_0": normalized.attribute_widths[0]}


class TestColumnSegmentsMN:
    def test_components_have_no_entity_block(self, mn_multi_component):
        normalized, _ = mn_multi_component
        segments = normalized.column_segments()
        assert [s.name for s in segments] == ["component_0", "component_1", "component_2"]
        assert all(not s.is_entity for s in segments)
        assert [s.width for s in segments] == normalized.component_widths
        assert segments[-1].stop == normalized.logical_cols
        assert normalized.n_features_per_table == {
            f"component_{i}": w for i, w in enumerate(normalized.component_widths)
        }


class TestBuildSegments:
    def test_entity_none_vs_zero(self):
        assert build_segments(None, [3]) == [ColumnSegment("table_0", 0, 3, 0)]
        with_zero = build_segments(0, [3])
        assert with_zero[0] == ColumnSegment("entity", 0, 0, None)
        assert with_zero[1] == ColumnSegment("table_0", 0, 3, 0)

    def test_segment_widths_mapping(self):
        segments = build_segments(2, [3, 4])
        assert segment_widths(segments) == {"entity": 2, "table_0": 3, "table_1": 4}


class TestSchemaFingerprint:
    def test_stable_across_row_counts(self, single_join_dense, rng):
        """Fingerprints ignore row counts (the freshness story needs that)."""
        _, normalized, _ = single_join_dense
        grown = NormalizedMatrix(
            normalized.entity,
            normalized.indicators,
            [np.vstack([np.asarray(normalized.attributes[0]),
                        rng.standard_normal((5, normalized.attribute_widths[0]))])],
            validate=False,
        )
        assert schema_fingerprint(grown) == schema_fingerprint(normalized)

    def test_changes_with_widths_and_kind(self, single_join_dense, mn_dataset):
        _, star, _ = single_join_dense
        _, mn, _ = mn_dataset
        wider = NormalizedMatrix(
            star.entity, star.indicators,
            [np.hstack([np.asarray(star.attributes[0]),
                        np.zeros((star.attributes[0].shape[0], 1))])],
            validate=False,
        )
        fingerprints = {schema_fingerprint(star), schema_fingerprint(wider),
                        schema_fingerprint(mn)}
        assert len(fingerprints) == 3

    def test_transpose_does_not_change_fingerprint(self, single_join_dense):
        _, normalized, _ = single_join_dense
        assert schema_fingerprint(normalized.T) == schema_fingerprint(normalized)


def test_indicator_codes_roundtrip(single_join_dense):
    from repro.core import indicator_codes
    from repro.la.ops import indicator_from_labels

    _, normalized, _ = single_join_dense
    codes = indicator_codes(normalized.indicators[0])
    rebuilt = indicator_from_labels(codes, num_columns=normalized.attributes[0].shape[0])
    assert (rebuilt != normalized.indicators[0]).nnz == 0


def test_indicator_codes_rejects_multi_nonzero_rows():
    import scipy.sparse as sp

    from repro.core import indicator_codes
    from repro.exceptions import IndicatorError

    bad = sp.csr_matrix(np.array([[1.0, 1.0], [0.0, 1.0]]))
    with pytest.raises(IndicatorError):
        indicator_codes(bad)
