"""Tests for the element-wise scalar rewrite rules (paper Section 3.3.1)."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import ShapeError


class TestScalarArithmetic:
    @pytest.mark.parametrize("expression,reference", [
        (lambda t: t * 3.0, lambda m: m * 3.0),
        (lambda t: 3.0 * t, lambda m: 3.0 * m),
        (lambda t: t + 2.0, lambda m: m + 2.0),
        (lambda t: 2.0 + t, lambda m: 2.0 + m),
        (lambda t: t - 1.5, lambda m: m - 1.5),
        (lambda t: 1.5 - t, lambda m: 1.5 - m),
        (lambda t: t / 4.0, lambda m: m / 4.0),
        (lambda t: t ** 2, lambda m: m ** 2),
        (lambda t: -t, lambda m: -m),
    ])
    def test_matches_materialized(self, single_join_dense, expression, reference):
        _, normalized, materialized = single_join_dense
        result = expression(normalized)
        assert isinstance(result, NormalizedMatrix)
        assert np.allclose(result.to_dense(), reference(materialized))

    def test_reverse_division(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        shifted = normalized + 10.0  # keep entries away from zero
        result = 2.0 / shifted
        assert np.allclose(result.to_dense(), 2.0 / (materialized + 10.0))

    def test_output_keeps_structure(self, single_join_dense):
        _, normalized, _ = single_join_dense
        result = normalized * 5.0
        assert result.num_joins == normalized.num_joins
        assert result.indicators[0] is normalized.indicators[0]

    def test_numpy_scalar_operand(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        result = np.float64(2.5) * normalized
        assert isinstance(result, NormalizedMatrix)
        assert np.allclose(result.to_dense(), 2.5 * materialized)

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        assert np.allclose((normalized * 2.0 + 1.0).to_dense(), materialized * 2.0 + 1.0)

    def test_no_entity_features(self, no_entity_features):
        normalized, materialized = no_entity_features
        assert np.allclose((normalized * 7.0).to_dense(), materialized * 7.0)

    def test_sparse_base_matrices(self, single_join_sparse):
        normalized, dense = single_join_sparse
        assert np.allclose((normalized * 2.0).to_dense(), dense * 2.0)

    def test_transposed_scalar_op(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        result = normalized.T * 3.0
        assert result.transposed
        assert np.allclose(result.to_dense(), materialized.T * 3.0)

    def test_chained_scalar_ops(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        result = ((normalized * 2.0) + 3.0) / 4.0
        assert isinstance(result, NormalizedMatrix)
        assert np.allclose(result.to_dense(), ((materialized * 2.0) + 3.0) / 4.0)


class TestScalarFunctions:
    def test_apply_exp(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.apply(np.exp).to_dense(), np.exp(materialized))

    def test_exp_convenience(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.exp().to_dense(), np.exp(materialized))

    def test_sqrt_convenience(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        shifted = normalized * 0.0 + 4.0
        assert np.allclose(shifted.sqrt().to_dense(), np.full(materialized.shape, 2.0))

    def test_log_convenience(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        positive = normalized.apply(np.abs) + 1.0
        assert np.allclose(positive.log().to_dense(), np.log(np.abs(materialized) + 1.0))

    def test_apply_on_transposed(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(normalized.T.apply(np.tanh).to_dense(), np.tanh(materialized.T))

    def test_apply_returns_new_object(self, single_join_dense):
        _, normalized, _ = single_join_dense
        out = normalized.apply(np.exp)
        assert out is not normalized
        assert out.indicators[0] is normalized.indicators[0]


class TestNonFactorizableMatrixOps:
    def test_addition_with_regular_matrix_returns_regular(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        other = rng.standard_normal(materialized.shape)
        result = normalized + other
        assert isinstance(result, np.ndarray)
        assert np.allclose(result, materialized + other)

    def test_elementwise_multiplication_with_matrix(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        other = rng.standard_normal(materialized.shape)
        assert np.allclose(normalized * other, materialized * other)

    def test_reverse_subtraction_with_matrix(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        other = rng.standard_normal(materialized.shape)
        assert np.allclose(other - normalized, other - materialized)

    def test_matrix_op_shape_mismatch(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        with pytest.raises(ShapeError):
            normalized + rng.standard_normal((3, 3))

    def test_unsupported_operand_type(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(TypeError):
            normalized + "not a matrix"
