"""Acceptance test: a two-hop snowflake schema behind the declarative frontend.

The schema is orders -> customers -> regions (a two-hop chain: the regions
indicator is the product of the customers and regions hops) plus one shared
``locations`` dimension joined under two roles (``ship_loc`` / ``bill_loc``).
Built through :func:`normalized_from_schema`, all four ML algorithms must
reproduce the dense materialized reference to 1e-8 on every engine, the
planner must explain its chain-collapse decision, and the serving scorer must
score the chained matrix exactly.
"""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import CalibrationProfile, Planner
from repro.core.stream import StreamedMatrix
from repro.la.chain import ChainedIndicator
from repro.ml import (
    GNMF,
    KMeans,
    LinearRegressionGD,
    LogisticRegressionGD,
    ServingExport,
)
from repro.relational import Join, SchemaGraph, Table, normalized_from_schema
from repro.serve import FactorizedScorer

TOL = dict(atol=1e-8, rtol=1e-8)
ITERS = 5
ENGINES = ("eager", "lazy", "sharded", "streamed", "auto")


@pytest.fixture(scope="module")
def snowflake():
    rng = np.random.default_rng(23)
    n, n_cust, n_reg, n_loc = 90, 12, 4, 6

    def surjective(size, count):
        labels = np.concatenate([np.arange(count),
                                 rng.integers(0, count, size=size - count)])
        rng.shuffle(labels)
        return labels

    tables = {
        "orders": Table("orders", {
            "cust_id": surjective(n, n_cust),
            "ship_to": surjective(n, n_loc),
            "bill_to": surjective(n, n_loc),
            "quantity": rng.uniform(1, 9, size=n),
            "total": rng.uniform(5, 500, size=n),
        }),
        "customers": Table("customers", {
            "id": np.arange(n_cust),
            "region_id": surjective(n_cust, n_reg),
            "age": rng.uniform(18, 80, size=n_cust),
            "income": rng.uniform(20, 200, size=n_cust),
        }),
        "regions": Table("regions", {
            "id": np.arange(n_reg),
            "gdp": rng.uniform(1, 10, size=n_reg),
        }),
        "locations": Table("locations", {
            "id": np.arange(n_loc),
            "tax": rng.uniform(0.0, 0.3, size=n_loc),
        }),
    }
    graph = SchemaGraph("orders", [
        Join("orders.cust_id", "customers.id"),
        Join("customers.region_id", "regions.id"),
        Join("orders.ship_to", "locations.id", alias="ship_loc"),
        Join("orders.bill_to", "locations.id", alias="bill_loc"),
    ])
    dataset = normalized_from_schema(graph, tables, target_column="total")

    # Hand-materialized reference, in the graph's breadth-first alias order:
    # customers, ship_loc, bill_loc, regions.
    orders = tables["orders"]
    cust = orders.column("cust_id")
    region_of_cust = tables["customers"].column("region_id")[cust]
    tax = tables["locations"].column("tax")
    dense = np.column_stack([
        orders.column("quantity"),
        tables["customers"].column("age")[cust],
        tables["customers"].column("income")[cust],
        tax[orders.column("ship_to")],
        tax[orders.column("bill_to")],
        tables["regions"].column("gdp")[region_of_cust],
    ])
    return graph, tables, dataset, dense


def _deterministic_planner() -> Planner:
    return Planner(calibration=CalibrationProfile.default())


def _fit(estimator_cls, engine, data, *fit_args, **kwargs):
    if engine == "sharded":
        est = estimator_cls(n_jobs=2, **kwargs)
    elif engine == "streamed":
        est = estimator_cls(**kwargs)
        data = StreamedMatrix(data, batch_rows=16)
    elif engine == "auto":
        est = estimator_cls(engine="auto", **kwargs)
        est.planner = _deterministic_planner()
    else:
        est = estimator_cls(engine=engine, **kwargs)
    return est.fit(data, *fit_args)


class TestSchemaConstruction:
    def test_structure(self, snowflake):
        _, _, dataset, dense = snowflake
        assert isinstance(dataset.matrix, NormalizedMatrix)
        assert dataset.matrix.shape == dense.shape
        assert dataset.feature_names == [
            "quantity", "customers.age", "customers.income",
            "ship_loc.tax", "bill_loc.tax", "regions.gdp",
        ]

    def test_two_hop_chain_kept_factorized(self, snowflake):
        _, _, dataset, _ = snowflake
        chains = [k for k in dataset.matrix.indicators
                  if isinstance(k, ChainedIndicator)]
        assert len(chains) == 1
        assert chains[0].num_hops == 2

    def test_materializes_to_reference(self, snowflake):
        _, _, dataset, dense = snowflake
        np.testing.assert_allclose(np.asarray(dataset.matrix.to_dense()),
                                   dense, **TOL)


@pytest.mark.parametrize("engine", ENGINES)
class TestAllAlgorithmsAllEngines:
    def test_linear_regression(self, snowflake, engine):
        _, _, dataset, dense = snowflake
        y = dataset.target
        model = _fit(LinearRegressionGD, engine, dataset.matrix, y,
                     max_iter=ITERS, step_size=1e-4)
        reference = LinearRegressionGD(max_iter=ITERS, step_size=1e-4).fit(dense, y)
        np.testing.assert_allclose(model.coef_, reference.coef_, **TOL)

    def test_logistic_regression(self, snowflake, engine):
        _, _, dataset, dense = snowflake
        labels = np.where(dataset.target > np.median(dataset.target), 1.0, -1.0)
        model = _fit(LogisticRegressionGD, engine, dataset.matrix, labels,
                     max_iter=ITERS, step_size=1e-3)
        reference = LogisticRegressionGD(max_iter=ITERS, step_size=1e-3).fit(
            dense, labels)
        np.testing.assert_allclose(model.coef_, reference.coef_, **TOL)

    def test_kmeans(self, snowflake, engine):
        _, _, dataset, dense = snowflake
        model = _fit(KMeans, engine, dataset.matrix,
                     num_clusters=3, max_iter=ITERS, seed=0)
        reference = KMeans(num_clusters=3, max_iter=ITERS, seed=0).fit(dense)
        np.testing.assert_allclose(model.centroids_, reference.centroids_, **TOL)
        np.testing.assert_array_equal(model.labels_, reference.labels_)

    def test_gnmf(self, snowflake, engine):
        # All snowflake features are drawn non-negative, so GNMF applies as-is.
        _, _, dataset, dense = snowflake
        model = _fit(GNMF, engine, dataset.matrix, rank=3, max_iter=ITERS, seed=1)
        reference = GNMF(rank=3, max_iter=ITERS, seed=1).fit(dense)
        np.testing.assert_allclose(model.w_, reference.w_, **TOL)
        np.testing.assert_allclose(model.h_, reference.h_, **TOL)


class TestPlannerExplainsChains:
    def test_auto_plan_reports_chain_decision(self, snowflake):
        _, _, dataset, _ = snowflake
        model = _fit(LinearRegressionGD, "auto", dataset.matrix, dataset.target,
                     max_iter=ITERS, step_size=1e-4)
        explanation = model.plan_.explain()
        assert "multi-hop indicator chains:" in explanation
        assert "2 hops" in explanation
        assert "kept factorized" in explanation or "collapsed" in explanation

    def test_collapsed_build_records_decision(self, snowflake):
        graph, tables, _, dense = snowflake
        dataset = normalized_from_schema(graph, tables, target_column="total",
                                         collapse="always")
        assert not any(isinstance(k, ChainedIndicator)
                       for k in dataset.matrix.indicators)
        [decision] = dataset.matrix.chain_decisions
        assert decision["collapse"] is True
        np.testing.assert_allclose(np.asarray(dataset.matrix.to_dense()),
                                   dense, **TOL)


class TestServingOverChains:
    def test_factorized_scorer_matches_dense(self, snowflake):
        _, _, dataset, dense = snowflake
        rng = np.random.default_rng(5)
        weights = rng.standard_normal((dense.shape[1], 1))
        scorer = FactorizedScorer(ServingExport("linear_regression", weights),
                                  dataset.matrix)
        rows = np.arange(dense.shape[0])
        np.testing.assert_allclose(scorer.score_rows(rows), dense @ weights,
                                   **TOL)
