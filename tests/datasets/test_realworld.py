"""Tests for the real-dataset stand-ins (Table 6 schemas) and the registry."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.realworld import AttributeTableSpec, RealWorldSpec, generate_real_dataset
from repro.datasets.registry import REAL_DATASET_SPECS, list_real_datasets, load_real_dataset
from repro.exceptions import DataGenerationError


class TestRegistry:
    def test_all_seven_datasets_registered(self):
        assert list_real_datasets() == [
            "expedia", "movies", "yelp", "walmart", "lastfm", "books", "flights",
        ]

    def test_published_dimensions_recorded(self):
        expedia = REAL_DATASET_SPECS["expedia"]
        assert expedia.num_entity_rows == 942_142
        assert expedia.num_entity_features == 27
        assert expedia.attribute_tables[0].num_rows == 11_939

    def test_flights_has_three_attribute_tables(self):
        assert REAL_DATASET_SPECS["flights"].num_joins == 3

    def test_movies_has_no_entity_features(self):
        assert REAL_DATASET_SPECS["movies"].num_entity_features == 0

    def test_load_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_real_dataset("netflix")

    def test_load_real_dataset_returns_dataset(self):
        dataset = load_real_dataset("walmart", scale=0.02, seed=0)
        assert dataset.normalized.shape[0] == dataset.target.shape[0]


class TestScaling:
    def test_scaled_preserves_join_count(self):
        scaled = REAL_DATASET_SPECS["flights"].scaled(0.05)
        assert scaled.num_joins == 3

    def test_scaled_rows_shrink(self):
        original = REAL_DATASET_SPECS["yelp"]
        scaled = original.scaled(0.01)
        assert scaled.num_entity_rows < original.num_entity_rows
        assert scaled.attribute_tables[0].num_rows < original.attribute_tables[0].num_rows

    def test_scaled_attribute_rows_never_exceed_entity_rows(self):
        scaled = REAL_DATASET_SPECS["books"].scaled(0.01)
        for table in scaled.attribute_tables:
            assert table.num_rows <= scaled.num_entity_rows

    def test_invalid_scale_rejected(self):
        with pytest.raises(DataGenerationError):
            REAL_DATASET_SPECS["yelp"].scaled(0.0)
        with pytest.raises(DataGenerationError):
            REAL_DATASET_SPECS["yelp"].scaled(1.5)

    def test_nnz_per_row_roughly_preserved(self):
        original = REAL_DATASET_SPECS["expedia"]
        scaled = original.scaled(0.02)
        original_per_row = original.attribute_tables[1].nnz / original.attribute_tables[1].num_rows
        scaled_per_row = scaled.attribute_tables[1].nnz / scaled.attribute_tables[1].num_rows
        assert scaled_per_row == pytest.approx(original_per_row, rel=0.2)

    def test_nnz_never_exceeds_capacity(self):
        for name, spec in REAL_DATASET_SPECS.items():
            scaled = spec.scaled(0.01)
            for table in scaled.attribute_tables:
                assert table.nnz <= table.num_rows * table.num_features


class TestGeneration:
    @pytest.fixture(scope="class")
    def walmart(self):
        return load_real_dataset("walmart", scale=0.02, seed=3)

    def test_base_matrices_are_sparse(self, walmart):
        for attribute in walmart.attributes:
            assert sp.issparse(attribute)

    def test_every_attribute_row_referenced(self, walmart):
        for indicator in walmart.indicators:
            assert np.all(np.asarray(indicator.sum(axis=0)).ravel() >= 1)

    def test_normalized_matches_materialized(self, walmart):
        dense = np.asarray(walmart.materialized.todense())
        assert np.allclose(walmart.normalized.to_dense(), dense)

    def test_binary_target_values(self, walmart):
        assert set(np.unique(walmart.binary_target)).issubset({-1.0, 1.0})

    def test_entity_absent_when_no_features(self):
        movies = load_real_dataset("movies", scale=0.005, seed=4)
        assert movies.entity is None
        assert movies.normalized.entity_width == 0

    def test_deterministic_for_seed(self):
        a = load_real_dataset("flights", scale=0.02, seed=5)
        b = load_real_dataset("flights", scale=0.02, seed=5)
        assert np.allclose(a.target, b.target)

    def test_custom_spec_generation(self):
        spec = RealWorldSpec(
            name="toy", num_entity_rows=50, num_entity_features=3, entity_nnz=150,
            attribute_tables=(AttributeTableSpec(10, 8, 40),),
        )
        dataset = generate_real_dataset(spec, seed=6)
        assert dataset.normalized.shape == (50, 3 + 8)
