"""Tests for the synthetic PK-FK and M:N data generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    MNDataset,
    PKFKDataset,
    SyntheticMNConfig,
    SyntheticPKFKConfig,
    generate_mn,
    generate_pk_fk,
    generate_star,
)
from repro.exceptions import DataGenerationError


class TestPKFKConfig:
    def test_from_ratios_dimensions(self):
        config = SyntheticPKFKConfig.from_ratios(tuple_ratio=10, feature_ratio=2,
                                                 num_attribute_rows=500,
                                                 num_entity_features=20)
        assert config.num_entity_rows == 5000
        assert config.num_attribute_features == [40]

    def test_from_ratios_invalid_tuple_ratio(self):
        with pytest.raises(DataGenerationError):
            SyntheticPKFKConfig.from_ratios(tuple_ratio=0.5, feature_ratio=1)

    def test_from_ratios_invalid_feature_ratio(self):
        with pytest.raises(DataGenerationError):
            SyntheticPKFKConfig.from_ratios(tuple_ratio=5, feature_ratio=0)

    def test_attribute_larger_than_entity_rejected(self):
        with pytest.raises(DataGenerationError):
            SyntheticPKFKConfig(num_entity_rows=10, num_entity_features=2,
                                num_attribute_rows=[20], num_attribute_features=[3])

    def test_mismatched_lists_rejected(self):
        with pytest.raises(DataGenerationError):
            SyntheticPKFKConfig(num_entity_rows=10, num_entity_features=2,
                                num_attribute_rows=[5, 5], num_attribute_features=[3])

    def test_requires_attribute_table(self):
        with pytest.raises(DataGenerationError):
            SyntheticPKFKConfig(num_entity_rows=10, num_entity_features=2,
                                num_attribute_rows=[], num_attribute_features=[])


class TestPKFKGeneration:
    def test_shapes(self):
        dataset = generate_pk_fk(SyntheticPKFKConfig.from_ratios(5, 2, 40, 6, seed=1))
        assert dataset.entity.shape == (200, 6)
        assert dataset.attributes[0].shape == (40, 12)
        assert dataset.indicators[0].shape == (200, 40)
        assert dataset.target.shape == (200, 1)

    def test_every_attribute_row_referenced(self):
        dataset = generate_pk_fk(SyntheticPKFKConfig.from_ratios(5, 1, 30, 4, seed=2))
        column_counts = np.asarray(dataset.indicators[0].sum(axis=0)).ravel()
        assert np.all(column_counts >= 1)

    def test_normalized_matches_materialized(self):
        dataset = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 2, 25, 5, seed=3))
        assert np.allclose(dataset.normalized.to_dense(), dataset.materialized)

    def test_ratios_reported(self):
        dataset = generate_pk_fk(SyntheticPKFKConfig.from_ratios(8, 3, 50, 10, seed=4))
        assert dataset.tuple_ratio == pytest.approx(8.0)
        assert dataset.feature_ratio == pytest.approx(3.0)

    def test_target_is_binary(self):
        dataset = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 1, 20, 4, seed=5))
        assert set(np.unique(dataset.target)).issubset({-1.0, 1.0})

    def test_deterministic_for_seed(self):
        a = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 1, 20, 4, seed=6))
        b = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 1, 20, 4, seed=6))
        assert np.allclose(a.entity, b.entity)
        assert np.allclose(a.target, b.target)

    def test_different_seeds_differ(self):
        a = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 1, 20, 4, seed=7))
        b = generate_pk_fk(SyntheticPKFKConfig.from_ratios(4, 1, 20, 4, seed=8))
        assert not np.allclose(a.entity, b.entity)

    def test_generate_star_multi_table(self):
        dataset = generate_star(120, 4, [(20, 3), (30, 5)], seed=9)
        assert isinstance(dataset, PKFKDataset)
        assert dataset.normalized.num_joins == 2
        assert dataset.materialized.shape == (120, 4 + 3 + 5)


class TestMNConfig:
    def test_uniqueness_degree(self):
        config = SyntheticMNConfig(num_rows=100, num_features=5, domain_size=10)
        assert config.uniqueness_degree == pytest.approx(0.1)

    def test_invalid_domain_size(self):
        with pytest.raises(DataGenerationError):
            SyntheticMNConfig(num_rows=10, num_features=5, domain_size=0)
        with pytest.raises(DataGenerationError):
            SyntheticMNConfig(num_rows=10, num_features=5, domain_size=11)

    def test_invalid_rows(self):
        with pytest.raises(DataGenerationError):
            SyntheticMNConfig(num_rows=0, num_features=5, domain_size=1)


class TestMNGeneration:
    def test_shapes(self):
        dataset = generate_mn(SyntheticMNConfig(num_rows=40, num_features=6, domain_size=8, seed=1))
        assert isinstance(dataset, MNDataset)
        assert dataset.left.shape == (40, 6)
        assert dataset.right.shape == (40, 6)
        assert dataset.left_indicator.shape[1] == 40
        assert dataset.materialized.shape[1] == 12

    def test_output_rows_scale_with_domain_size(self):
        small_domain = generate_mn(SyntheticMNConfig(40, 4, domain_size=4, seed=2))
        large_domain = generate_mn(SyntheticMNConfig(40, 4, domain_size=20, seed=2))
        assert small_domain.output_rows > large_domain.output_rows

    def test_expected_output_size(self):
        # Round-robin assignment gives exactly n^2 / n_U output rows when n_U divides n.
        dataset = generate_mn(SyntheticMNConfig(num_rows=40, num_features=3, domain_size=10, seed=3))
        assert dataset.output_rows == 40 * 40 // 10

    def test_normalized_matches_materialized(self):
        dataset = generate_mn(SyntheticMNConfig(num_rows=30, num_features=4, domain_size=6, seed=4))
        assert np.allclose(dataset.normalized.to_dense(), dataset.materialized)

    def test_every_base_row_contributes(self):
        dataset = generate_mn(SyntheticMNConfig(num_rows=30, num_features=4, domain_size=5, seed=5))
        assert np.all(np.asarray(dataset.left_indicator.sum(axis=0)).ravel() >= 1)
        assert np.all(np.asarray(dataset.right_indicator.sum(axis=0)).ravel() >= 1)

    def test_deterministic_for_seed(self):
        a = generate_mn(SyntheticMNConfig(num_rows=20, num_features=3, domain_size=4, seed=6))
        b = generate_mn(SyntheticMNConfig(num_rows=20, num_features=3, domain_size=4, seed=6))
        assert np.allclose(a.left, b.left)
        assert a.output_rows == b.output_rows
