"""ModelRegistry: versioned round-trips, fingerprint binding, corruption."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import RegistryError, SchemaMismatchError
from repro.ml import (
    GNMF,
    KMeans,
    LinearRegressionGD,
    LogisticRegressionGD,
    ServingExport,
)
from repro.serve import FactorizedScorer, ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _fit_all(normalized, materialized, rng):
    dense = np.asarray(materialized)
    y = rng.standard_normal(dense.shape[0])
    labels = np.where(y > 0, 1.0, -1.0)
    nonneg = NormalizedMatrix(
        np.abs(np.asarray(normalized.entity)), normalized.indicators,
        [np.abs(np.asarray(r)) for r in normalized.attributes],
    )
    return {
        "linreg": (LinearRegressionGD(max_iter=4).fit(normalized, y), normalized),
        "logreg": (LogisticRegressionGD(max_iter=4).fit(normalized, labels), normalized),
        "kmeans": (KMeans(num_clusters=3, max_iter=4).fit(normalized), normalized),
        "gnmf": (GNMF(rank=2, max_iter=4).fit(nonneg), nonneg),
    }


class TestRoundTrip:
    def test_all_four_model_kinds_roundtrip(self, registry, single_join_dense, rng):
        """Registry round-trip preserves scoring exactly for every model kind."""
        _, normalized, materialized = single_join_dense
        rows = np.arange(normalized.shape[0])
        for name, (model, matrix) in _fit_all(normalized, materialized, rng).items():
            version = registry.save(name, model, matrix)
            assert version == 1
            loaded = registry.scorer(name, matrix)
            direct = FactorizedScorer.from_model(model, matrix)
            np.testing.assert_allclose(
                loaded.score_rows(rows), direct.score_rows(rows), rtol=0, atol=0
            )
            np.testing.assert_allclose(
                loaded.predict_rows(rows), direct.predict_rows(rows), rtol=0, atol=0
            )
        assert registry.models() == sorted(["linreg", "logreg", "kmeans", "gnmf"])

    def test_offsets_and_metadata_survive(self, registry, single_join_dense):
        _, normalized, _ = single_join_dense
        model = KMeans(num_clusters=3, max_iter=3).fit(normalized)
        registry.save("km", model, normalized)
        loaded = registry.load("km")
        export = model.export_weights()
        np.testing.assert_array_equal(loaded.offsets, export.offsets)
        assert loaded.metadata == {"num_clusters": 3}
        assert loaded.kind == "kmeans"
        assert loaded.registry_version == 1

    def test_versions_increment_and_latest_wins(self, registry, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        first = LinearRegressionGD(max_iter=2).fit(normalized, y)
        second = LinearRegressionGD(max_iter=6).fit(normalized, y)
        assert registry.save("m", first, normalized) == 1
        assert registry.save("m", second, normalized) == 2
        assert registry.versions("m") == [1, 2]
        assert registry.latest("m") == 2
        np.testing.assert_array_equal(registry.load("m").weights, second.coef_)
        np.testing.assert_array_equal(registry.load("m", version=1).weights, first.coef_)


class TestSchemaBinding:
    def test_mismatched_schema_rejected_at_scoring(self, registry, single_join_dense,
                                                   multi_join_dense, rng):
        _, single, _ = single_join_dense
        _, multi, _ = multi_join_dense
        y = rng.standard_normal(single.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(single, y), single)
        with pytest.raises(SchemaMismatchError):
            registry.scorer("m", multi)

    def test_row_count_changes_do_not_invalidate(self, registry, single_join_dense, rng):
        """Attribute-table growth (freshness) keeps the fingerprint valid."""
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        old = np.asarray(normalized.attributes[0])
        grown = NormalizedMatrix(
            normalized.entity, normalized.indicators,
            [np.vstack([old, rng.standard_normal((3, old.shape[1]))])],
            validate=False,
        )
        registry.scorer("m", grown)  # must not raise

    def test_save_rejects_wrong_width_export(self, registry, single_join_dense):
        _, normalized, _ = single_join_dense
        bad = ServingExport("linear_regression", np.zeros((normalized.logical_cols + 2, 1)))
        with pytest.raises(SchemaMismatchError):
            registry.save("m", bad, normalized)

    def test_save_rejects_rebinding_a_loaded_export(self, registry, single_join_dense, rng):
        """A loaded export must not be re-saved against a different schema,
        even one with the same total width (segment structure differs)."""
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        loaded = registry.load("m")
        entity = np.asarray(normalized.entity)
        attribute = np.asarray(normalized.attributes[0])
        # move one attribute column into the entity block: same logical_cols,
        # different (entity, table_0) widths.
        reshaped = NormalizedMatrix(
            np.hstack([entity, np.zeros((entity.shape[0], 1))]),
            normalized.indicators, [attribute[:, :-1]],
        )
        assert reshaped.logical_cols == normalized.logical_cols
        with pytest.raises(SchemaMismatchError, match="fingerprint"):
            registry.save("other", loaded, reshaped)

    def test_valid_json_with_missing_fields_reported_corrupt(self, registry,
                                                             single_join_dense, rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        for payload in ("{}", '"hello"', '{"kind": "linear_regression", "metadata": null}'):
            (registry.root / "m" / "v0001" / "meta.json").write_text(payload)
            with pytest.raises(RegistryError, match="corrupt"):
                registry.load("m")


class TestFailureModes:
    def test_unknown_model_and_version(self, registry, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        with pytest.raises(RegistryError):
            registry.latest("ghost")
        with pytest.raises(RegistryError):
            registry.load("ghost")
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        with pytest.raises(RegistryError):
            registry.load("m", version=9)

    def test_aborted_save_is_invisible_and_reported(self, registry, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        aborted = registry.root / "m" / "v0002"
        aborted.mkdir()
        (aborted / "weights.npz").write_bytes(b"not a real archive")
        # no meta.json: the version never completed, so listing ignores it ...
        assert registry.versions("m") == [1]
        assert registry.latest("m") == 1
        # ... and loading it explicitly names the corruption.
        with pytest.raises(RegistryError, match="incomplete"):
            registry.load("m", version=2)

    def test_corrupt_weights_reported(self, registry, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        directory = registry.root / "m" / "v0001"
        (directory / "weights.npz").write_bytes(b"garbage")
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load("m")
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["kind"] == "linear_regression"

    def test_truncated_zip_weights_reported(self, registry, single_join_dense, rng):
        """A weights file that *looks* like a zip but is truncated (BadZipFile)."""
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        registry.save("m", LinearRegressionGD(max_iter=2).fit(normalized, y), normalized)
        weights_path = registry.root / "m" / "v0001" / "weights.npz"
        weights_path.write_bytes(weights_path.read_bytes()[:40])
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load("m")

    def test_claimed_version_directory_is_skipped(self, registry, single_join_dense, rng):
        """A racing/aborted save's directory is an allocation token to skip."""
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        model = LinearRegressionGD(max_iter=2).fit(normalized, y)
        registry.save("m", model, normalized)
        (registry.root / "m" / "v0002").mkdir()  # concurrent saver got here first
        assert registry.save("m", model, normalized) == 3
        assert registry.versions("m") == [1, 3]
        assert registry.latest("m") == 3

    def test_invalid_names_rejected(self, registry, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        model = LinearRegressionGD(max_iter=2).fit(normalized, y)
        for name in ("", "a/b", ".hidden"):
            with pytest.raises(RegistryError):
                registry.save(name, model, normalized)

    def test_unservable_model_rejected(self, registry, single_join_dense):
        from repro.exceptions import ServingError

        _, normalized, _ = single_join_dense
        with pytest.raises(ServingError):
            registry.save("m", object(), normalized)


class TestSaveFailureCleanup:
    """Regression: a save that fails mid-write used to leak its version dir.

    Non-serializable metadata wrote ``weights.npz`` and then died in
    ``json.dump``, leaving an incomplete ``vNNNN`` directory that burned a
    version number on every later save (the directory is the allocation
    token).  Metadata is now validated before the directory is claimed, and
    any write failure removes the claimed directory.
    """

    def test_non_serializable_metadata_rejected_without_leak(
            self, registry, single_join_dense):
        _, normalized, _ = single_join_dense
        bad = ServingExport("linear_regression",
                            np.zeros((normalized.logical_cols, 1)),
                            metadata={"bad": {1, 2}})  # sets are not JSON
        with pytest.raises(RegistryError, match="not JSON-serializable"):
            registry.save("m", bad, normalized)
        # No version directory was claimed at all -- not even an aborted one.
        assert not (registry.root / "m").exists()

    def test_next_save_gets_the_expected_version(self, registry, single_join_dense,
                                                 rng):
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        model = LinearRegressionGD(max_iter=2).fit(normalized, y)
        assert registry.save("m", model, normalized) == 1
        bad = ServingExport("linear_regression",
                            np.zeros((normalized.logical_cols, 1)),
                            metadata={"when": object()})
        for _ in range(3):  # repeated failures must not burn version numbers
            with pytest.raises(RegistryError, match="not JSON-serializable"):
                registry.save("m", bad, normalized)
        assert sorted(p.name for p in (registry.root / "m").iterdir()) == ["v0001"]
        assert registry.save("m", model, normalized) == 2

    def test_write_failure_cleans_up_claimed_directory(
            self, registry, single_join_dense, rng, monkeypatch):
        """Even a failure *after* claiming the directory must not leak it."""
        _, normalized, _ = single_join_dense
        y = rng.standard_normal(normalized.shape[0])
        model = LinearRegressionGD(max_iter=2).fit(normalized, y)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("repro.serve.registry.np.savez", boom)
        with pytest.raises(OSError, match="disk full"):
            registry.save("m", model, normalized)
        monkeypatch.undo()
        assert registry.versions("m") == []
        assert not (registry.root / "m" / "v0001").exists()
        # The failed attempt released its number: the next save reuses v1.
        assert registry.save("m", model, normalized) == 1
