"""Top-k exactness and zone-map consistency.

The bound-pruned search must return *exactly* the full-scan ranking -- same
rows, same order, deterministic tie-break -- on every schema class, for every
k (including the k = 0 and k >= N edges), on adversarial all-equal-score
inputs, and immediately after ``update_table`` and ``apply_delta`` snapshot
swaps.  The pruning statistics are also pinned: on clustered skewed data the
search must actually skip blocks, and on structureless data it must still be
correct (just without savings).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta import MatrixDelta
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import ServingError
from repro.la.ops import indicator_from_labels
from repro.ml import ServingExport
from repro.serve import (
    FactorizedScorer,
    ScoringService,
    ZoneMaps,
    full_scan_top_k,
)

K_GRID = (0, 1, 3, 10, 37)


def _random_export(matrix, m=2, seed=0, kind="linear_regression"):
    rng = np.random.default_rng(seed)
    return ServingExport(kind, rng.standard_normal((matrix.logical_cols, m)))


def _assert_exact(scorer, k_values=K_GRID, outputs=(0,), snapshot=None):
    """scorer.top_k == full-scan reference for every (k, largest, output)."""
    full = scorer.score_rows(np.arange(scorer.n_rows), snapshot=snapshot)
    for k in list(k_values) + [scorer.n_rows, scorer.n_rows + 5]:
        for largest in (True, False):
            for output in outputs:
                result = scorer.top_k(k, largest=largest, output=output,
                                      snapshot=snapshot)
                ref_rows, ref_scores = full_scan_top_k(full[:, output], k, largest)
                np.testing.assert_array_equal(result.rows, ref_rows)
                np.testing.assert_array_equal(result.scores, ref_scores)
                stats = result.stats
                assert (stats["blocks_visited"] + stats["blocks_skipped"]
                        == stats["blocks_total"])


def _clustered_skewed_scorer(n_s=4096, n_r=64, d_r=5, block_size=128, seed=0,
                             m=2):
    """A star schema with FK locality and a heavy-tailed score distribution."""
    rng = np.random.default_rng(seed)
    entity = rng.standard_normal((n_s, 3)) * 0.01
    # A few hot attribute rows dominate the score; sorted codes give locality.
    attribute = rng.standard_normal((n_r, d_r)) * np.exp(
        rng.standard_normal((n_r, 1)) * 3)
    labels = np.sort(np.concatenate([np.arange(n_r),
                                     rng.integers(0, n_r, size=n_s - n_r)]))
    normalized = NormalizedMatrix(entity, [indicator_from_labels(labels, num_columns=n_r)],
                                  [attribute])
    export = _random_export(normalized, m=m, seed=seed + 1)
    return FactorizedScorer(export, normalized, zone_block_size=block_size), normalized


class TestExactness:
    @pytest.mark.parametrize("fixture", ["single_join_dense", "multi_join_dense"])
    def test_star_schemas(self, fixture, request):
        _, normalized, _ = request.getfixturevalue(fixture)
        scorer = FactorizedScorer(_random_export(normalized), normalized,
                                  zone_block_size=16)
        _assert_exact(scorer, outputs=(0, 1))

    def test_sparse_star(self, single_join_sparse):
        normalized, _ = single_join_sparse
        scorer = FactorizedScorer(_random_export(normalized, seed=3), normalized,
                                  zone_block_size=16)
        _assert_exact(scorer)

    def test_no_entity_features(self, no_entity_features):
        normalized, _ = no_entity_features
        scorer = FactorizedScorer(_random_export(normalized, seed=5), normalized,
                                  zone_block_size=8)
        _assert_exact(scorer)

    def test_mn_schemas(self, mn_dataset, mn_multi_component):
        for normalized in (mn_dataset[1], mn_multi_component[0]):
            scorer = FactorizedScorer(_random_export(normalized, seed=7), normalized,
                                      zone_block_size=8)
            _assert_exact(scorer)

    def test_all_equal_scores_tie_break(self):
        """Adversarial input: every row scores identically; no pruning is
        sound, and the result must be the first k row indices."""
        n_s, n_r = 600, 12
        entity = np.zeros((n_s, 2))
        attribute = np.ones((n_r, 3))
        labels = np.sort(np.concatenate([np.arange(n_r),
                                         np.zeros(n_s - n_r, dtype=np.int64)]))
        normalized = NormalizedMatrix(entity, [indicator_from_labels(labels, num_columns=n_r)],
                                      [attribute])
        weights = np.ones((normalized.logical_cols, 1))
        scorer = FactorizedScorer(ServingExport("linear_regression", weights),
                                  normalized, zone_block_size=32)
        for largest in (True, False):
            result = scorer.top_k(25, largest=largest)
            np.testing.assert_array_equal(result.rows, np.arange(25))
        _assert_exact(scorer, outputs=(0,))

    def test_k_edges(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized,
                                  zone_block_size=16)
        empty = scorer.top_k(0)
        assert len(empty) == 0
        assert empty.rows.dtype == np.int64
        everything = scorer.top_k(scorer.n_rows * 3)
        assert len(everything) == scorer.n_rows
        with pytest.raises(ServingError, match="non-negative"):
            scorer.top_k(-1)
        with pytest.raises(ServingError, match="out of range"):
            scorer.top_k(3, output=99)

    def test_seeded_random_property_sweep(self):
        """Many random schemas x block sizes: pruned == full scan, always."""
        for seed in range(8):
            rng = np.random.default_rng(seed)
            n_r = int(rng.integers(4, 40))
            n_s = int(rng.integers(n_r, 900))
            d_s = int(rng.integers(0, 4))
            entity = rng.standard_normal((n_s, d_s)) if d_s else None
            attribute = rng.standard_normal((n_r, int(rng.integers(1, 6))))
            labels = np.concatenate([np.arange(n_r),
                                     rng.integers(0, n_r, size=n_s - n_r)])
            if seed % 2:
                labels = np.sort(labels)  # clustered half the time
            else:
                rng.shuffle(labels)
            normalized = NormalizedMatrix(
                entity, [indicator_from_labels(labels, num_columns=n_r)], [attribute])
            scorer = FactorizedScorer(
                _random_export(normalized, m=1, seed=seed), normalized,
                zone_block_size=int(rng.integers(4, 128)))
            _assert_exact(scorer, k_values=(0, 1, 5, n_s // 3))


class TestZoneMapConsistency:
    def test_update_table_rebuilds_zone_maps(self, multi_join_dense, rng):
        _, normalized, _ = multi_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized,
                                  zone_block_size=16)
        before = scorer.current_snapshot().zones
        new_table = rng.standard_normal(np.asarray(normalized.attributes[1]).shape)
        scorer.update_table(1, new_table)
        snapshot = scorer.current_snapshot()
        fresh = ZoneMaps.build(snapshot.zones.index, snapshot.partials)
        np.testing.assert_array_equal(snapshot.zones.upper, fresh.upper)
        np.testing.assert_array_equal(snapshot.zones.lower, fresh.lower)
        assert not np.array_equal(before.upper, snapshot.zones.upper)
        # untouched table's bounds are shared, not recomputed
        assert snapshot.zones.table_lo[0] is before.table_lo[0]
        _assert_exact(scorer, outputs=(0, 1))

    def test_apply_delta_patches_zone_maps(self):
        scorer, normalized = _clustered_skewed_scorer()
        attribute = np.asarray(normalized.attributes[0])
        rng = np.random.default_rng(42)
        rows = np.array([1, 7, 40])
        delta = MatrixDelta.upsert(rows, rng.standard_normal((3, attribute.shape[1])) * 50,
                                   attribute)
        scorer.apply_delta(0, delta)
        snapshot = scorer.current_snapshot()
        fresh = ZoneMaps.build(snapshot.zones.index, snapshot.partials)
        np.testing.assert_array_equal(snapshot.zones.upper, fresh.upper)
        np.testing.assert_array_equal(snapshot.zones.lower, fresh.lower)
        for got, want in zip(snapshot.zones.partial_hi, fresh.partial_hi):
            np.testing.assert_array_equal(got, want)
        _assert_exact(scorer, outputs=(0, 1))

    def test_growing_delta_keeps_adhoc_bounds_current(self):
        """Appended attribute rows enter the ad-hoc partial bounds."""
        scorer, normalized = _clustered_skewed_scorer(n_s=512, n_r=16, block_size=64)
        attribute = np.asarray(normalized.attributes[0])
        lo_before, hi_before = scorer.partial_score_bounds()[0]
        grown = np.full((2, attribute.shape[1]), 1e3)
        delta = MatrixDelta.upsert(np.array([16, 17]), grown, attribute)
        scorer.apply_delta(0, delta)
        lo_after, hi_after = scorer.partial_score_bounds()[0]
        assert hi_after != hi_before or lo_after != lo_before
        snapshot = scorer.current_snapshot()
        fresh = ZoneMaps.build(snapshot.zones.index, snapshot.partials)
        np.testing.assert_array_equal(snapshot.zones.upper, fresh.upper)
        _assert_exact(scorer, outputs=(0, 1))

    def test_chained_swaps_and_deltas_stay_consistent(self, rng):
        scorer, normalized = _clustered_skewed_scorer(n_s=1024, n_r=32, block_size=64)
        attribute = np.asarray(normalized.attributes[0])
        for step in range(4):
            if step % 2:
                attribute = rng.standard_normal(attribute.shape)
                scorer.update_table(0, attribute)
            else:
                rows = rng.choice(attribute.shape[0], size=3, replace=False)
                new_values = rng.standard_normal((3, attribute.shape[1])) * 20
                delta = MatrixDelta.upsert(np.sort(rows), new_values, attribute)
                attribute = np.asarray(delta.apply_to(attribute))
                scorer.apply_delta(0, delta)
            snapshot = scorer.current_snapshot()
            fresh = ZoneMaps.build(snapshot.zones.index, snapshot.partials)
            np.testing.assert_array_equal(snapshot.zones.upper, fresh.upper)
            np.testing.assert_array_equal(snapshot.zones.lower, fresh.lower)
            _assert_exact(scorer, k_values=(5, 20), outputs=(0,))

    def test_topk_pinned_snapshot_survives_swap(self, rng):
        """A pinned snapshot keeps answering with its own bounds + partials."""
        scorer, normalized = _clustered_skewed_scorer(n_s=1024, n_r=32, block_size=64)
        pinned = scorer.current_snapshot()
        expected = scorer.top_k(10, snapshot=pinned)
        scorer.update_table(0, rng.standard_normal(
            np.asarray(normalized.attributes[0]).shape))
        replay = scorer.top_k(10, snapshot=pinned)
        np.testing.assert_array_equal(replay.rows, expected.rows)
        np.testing.assert_array_equal(replay.scores, expected.scores)


class TestPruning:
    def test_clustered_skew_skips_majority_of_blocks(self):
        scorer, _ = _clustered_skewed_scorer()
        result = scorer.top_k(16)
        stats = result.stats
        assert stats["pruned"]
        assert stats["blocks_skipped"] > stats["blocks_total"] // 2
        assert stats["rows_scored"] < scorer.n_rows // 2

    def test_full_scan_fallback_when_k_covers_the_data(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized,
                                  zone_block_size=16)
        result = scorer.top_k(scorer.n_rows)
        assert not result.stats["pruned"]
        assert result.stats["rows_scored"] == scorer.n_rows

    def test_partial_score_bounds_cover_all_adhoc_requests(self):
        scorer, normalized = _clustered_skewed_scorer(m=1)
        snapshot = scorer.current_snapshot()
        (lo, hi), = scorer.partial_score_bounds()
        partial = snapshot.partials[0]
        assert lo == partial[:, 0].min() and hi == partial[:, 0].max()


class TestService:
    def test_service_topk_matches_scorer_and_counts(self):
        scorer, _ = _clustered_skewed_scorer()
        service = ScoringService(scorer)
        direct = scorer.top_k(12, largest=False, output=1)
        via_service = service.top_k(12, largest=False, output=1)
        np.testing.assert_array_equal(via_service.rows, direct.rows)
        np.testing.assert_array_equal(via_service.scores, direct.scores)
        stats = service.stats()
        assert stats["topk_requests"] == 1
        assert (stats["topk_blocks_visited"] + stats["topk_blocks_skipped"]
                == direct.stats["blocks_total"])
        assert stats["topk_rows_scored"] == direct.stats["rows_scored"]

    def test_service_topk_after_delta(self, rng):
        scorer, normalized = _clustered_skewed_scorer(n_s=1024, n_r=32, block_size=64)
        service = ScoringService(scorer)
        attribute = np.asarray(normalized.attributes[0])
        delta = MatrixDelta.upsert(np.array([2, 9]),
                                   rng.standard_normal((2, attribute.shape[1])) * 30,
                                   attribute)
        service.apply_delta(0, delta)
        full = scorer.score_rows(np.arange(scorer.n_rows))
        ref_rows, _ = full_scan_top_k(full[:, 0], 8)
        np.testing.assert_array_equal(service.top_k(8).rows, ref_rows)


class TestLegacySnapshots:
    def test_zoneless_snapshot_falls_back_to_full_scan(self, single_join_dense):
        """Hand-built snapshots without zone maps still answer exactly."""
        from repro.serve import ServingSnapshot

        _, normalized, _ = single_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized)
        bare = ServingSnapshot(scorer.current_snapshot().partials)
        assert bare.zones is None
        result = scorer.top_k(5, snapshot=bare)
        full = scorer.score_rows(np.arange(scorer.n_rows), snapshot=bare)
        ref_rows, _ = full_scan_top_k(full[:, 0], 5)
        np.testing.assert_array_equal(result.rows, ref_rows)
        assert not result.stats["pruned"]
