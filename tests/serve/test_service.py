"""ScoringService: micro-batching, LRU behaviour, and concurrent consistency.

The concurrency tests pin the snapshot-swap contract: a scoring call reads
one immutable snapshot, so its whole result must match either the pre-swap
or the post-swap model -- never a torn mixture of the two.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import ServingError
from repro.ml import ServingExport
from repro.serve import FactorizedScorer, ScoringService


def _scorer_for(normalized, m=2, seed=0):
    rng = np.random.default_rng(seed)
    export = ServingExport("linear_regression",
                           rng.standard_normal((normalized.logical_cols, m)))
    return FactorizedScorer(export, normalized), export


class TestMicroBatching:
    def test_batches_are_chunked_and_equal_unbatched(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        scorer, export = _scorer_for(normalized)
        service = ScoringService(scorer, max_batch_size=16)
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(
            service.score_rows(rows),
            np.asarray(materialized) @ export.weights, rtol=1e-12, atol=1e-12,
        )
        stats = service.stats()
        expected_chunks = -(-normalized.shape[0] // 16)
        assert stats["micro_batches"] == expected_chunks
        assert stats["requests"] == normalized.shape[0]

    def test_adhoc_request_batching(self, multi_join_dense):
        from repro.core import indicator_codes

        _, normalized, _ = multi_join_dense
        scorer, _ = _scorer_for(normalized, seed=1)
        service = ScoringService(scorer, max_batch_size=8)
        keys = np.stack([indicator_codes(k) for k in normalized.indicators], axis=1)
        features = np.asarray(normalized.entity)
        rows = np.arange(40)
        np.testing.assert_allclose(
            service.score(features[rows], keys[rows]),
            scorer.score_rows(rows), rtol=1e-12, atol=1e-12,
        )
        assert service.stats()["micro_batches"] == 5

    def test_boolean_mask_rows_are_resolved_before_chunking(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        scorer, export = _scorer_for(normalized, seed=4)
        service = ScoringService(scorer, max_batch_size=16)
        mask = np.zeros(normalized.shape[0], dtype=bool)
        mask[::5] = True
        np.testing.assert_allclose(
            service.score_rows(mask),
            np.asarray(materialized)[mask] @ export.weights, rtol=1e-12, atol=1e-12,
        )
        assert service.stats()["requests"] == int(mask.sum())
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            service.score_rows(mask[:-3])  # wrong-length mask still rejected

    def test_empty_batch(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer)
        assert service.score_rows([]).shape == (0, 2)
        empty = service.score(np.empty((0, scorer.entity_width)),
                              np.empty((0, 1), dtype=np.int64))
        assert empty.shape == (0, 2)
        # an empty key array has no dtype information (float64 by default)
        # and must still reach the shaped-empty-result path
        assert service.score(np.empty((0, scorer.entity_width)), []).shape == (0, 2)

    def test_empty_flat_keys_on_multi_table_schema(self, multi_join_dense):
        """An empty flat key list is an empty batch, not one zero-key request."""
        _, normalized, _ = multi_join_dense
        scorer, _ = _scorer_for(normalized, seed=5)
        service = ScoringService(scorer)
        assert service.score(np.empty((0, scorer.entity_width)), []).shape == (0, 2)

    def test_empty_batch_keeps_head_shape(self, single_join_dense):
        """Empty predict batches keep the head's shape (1-D labels for K-Means)."""
        from repro.ml import KMeans

        _, normalized, _ = single_join_dense
        model = KMeans(num_clusters=3, max_iter=2).fit(normalized)
        service = ScoringService(FactorizedScorer.from_model(model, normalized))
        labels = service.predict_rows([])
        assert labels.shape == (0,)
        assert np.concatenate([labels, service.predict_rows([1, 2])]).shape == (2,)

    def test_flat_keys_are_one_request_on_multi_table_schema(self, multi_join_dense):
        """A 1-D key vector on a q-table schema is one request, not q."""
        _, normalized, _ = multi_join_dense
        scorer, _ = _scorer_for(normalized, seed=2)
        service = ScoringService(scorer, max_batch_size=1)
        features = np.asarray(normalized.entity)[:1]
        flat = service.score(features, np.array([3, 5]))
        np.testing.assert_allclose(flat, scorer.score(features, np.array([[3, 5]])),
                                   rtol=0, atol=0)
        assert service.stats()["requests"] == 1

    def test_mismatched_feature_and_key_rows_rejected(self, single_join_dense):
        """The front end must not silently truncate to the shorter side."""
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer)
        features = np.zeros((3, scorer.entity_width))
        with pytest.raises(ServingError, match="3 feature rows but 2 key rows"):
            service.score(features, np.zeros((2, 1), dtype=np.int64))

    def test_coo_sparse_features_accepted(self, multi_join_dense):
        """Non-sliceable sparse formats are normalized before chunking."""
        import scipy.sparse as sp

        from repro.core import indicator_codes

        _, normalized, _ = multi_join_dense
        scorer, _ = _scorer_for(normalized, seed=3)
        service = ScoringService(scorer, max_batch_size=8)
        keys = np.stack([indicator_codes(k) for k in normalized.indicators], axis=1)[:20]
        features = sp.coo_matrix(np.asarray(normalized.entity)[:20])
        np.testing.assert_allclose(
            service.score(features, keys), scorer.score_rows(np.arange(20)),
            rtol=1e-12, atol=1e-12,
        )

    def test_ragged_features_raise_shape_error(self, single_join_dense):
        from repro.exceptions import ShapeError

        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer)
        with pytest.raises(ShapeError):
            service.score([[1.0, 2.0], [1.0]], np.zeros((2, 1), dtype=np.int64))

    def test_bad_configuration_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        with pytest.raises(ServingError):
            ScoringService(scorer, max_batch_size=0)
        with pytest.raises(ServingError):
            ScoringService(scorer, cache_size=-1)


class TestHotEntityCache:
    def test_repeated_rows_hit_the_cache(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer, cache_size=64)
        first = service.score_row(5)
        second = service.score_row(5)
        np.testing.assert_array_equal(first, second)
        stats = service.stats()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1

    def test_lru_evicts_cold_entities(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer, cache_size=2)
        for row in (0, 1, 2):  # row 0 is evicted by row 2
            service.score_row(row)
        service.score_row(0)
        assert service.stats()["cache_misses"] == 4
        assert service.stats()["cache_entries"] == 2

    def test_swap_invalidates_cached_scores(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        scorer, export = _scorer_for(normalized)
        service = ScoringService(scorer)
        stale = service.score_row(3)
        fresh_table = rng.standard_normal(np.asarray(normalized.attributes[0]).shape)
        service.update_table(0, fresh_table, wait=True)
        swapped = NormalizedMatrix(normalized.entity, normalized.indicators, [fresh_table])
        expected = (np.asarray(swapped.materialize()) @ export.weights)[3]
        np.testing.assert_allclose(service.score_row(3), expected, rtol=1e-12, atol=1e-12)
        assert not np.allclose(stale, expected)
        assert service.stats()["snapshot_version"] == 1

    def test_cache_disabled(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer, cache_size=0)
        service.score_row(1)
        service.score_row(1)
        assert service.stats()["cache_hits"] == 0
        assert service.stats()["cache_entries"] == 0

    def test_score_row_swap_race_caches_consistent_version(self, single_join_dense,
                                                           rng):
        """Regression: a swap racing ``score_row`` must not poison the cache.

        The old code read ``scorer.version`` for the cache key, then scored
        against whatever snapshot was current at scoring time.  A swap landing
        between the two cached *post*-swap scores under the *pre*-swap version
        key.  Deterministic replay: the first scoring call itself triggers a
        synchronous ``update_table``, so without a single snapshot pin the
        returned (and cached) value would belong to version 1 while the key
        says version 0.
        """
        _, normalized, _ = single_join_dense
        scorer, export = _scorer_for(normalized, seed=13)
        service = ScoringService(scorer, cache_size=64)
        old_table = np.asarray(normalized.attributes[0])
        new_table = rng.standard_normal(old_table.shape)
        pre_swap = (np.asarray(NormalizedMatrix(
            normalized.entity, normalized.indicators, [old_table]
        ).materialize()) @ export.weights)[3]
        post_swap = (np.asarray(NormalizedMatrix(
            normalized.entity, normalized.indicators, [new_table]
        ).materialize()) @ export.weights)[3]

        original = scorer.score_rows
        fired = []

        def score_rows_with_midflight_swap(chunk, snapshot=None):
            if not fired:
                fired.append(True)
                scorer.update_table(0, new_table, wait=True)
            return original(chunk, snapshot=snapshot)

        scorer.score_rows = score_rows_with_midflight_swap
        try:
            raced = service.score_row(3)
        finally:
            scorer.score_rows = original
        assert scorer.version == 1  # the swap really landed mid-call
        # The raced call pinned the version-0 snapshot before the swap, so it
        # returns (and caches) version-0 scores under a version-0 key ...
        np.testing.assert_allclose(raced, pre_swap, rtol=1e-12, atol=1e-12)
        # ... and the next call, keyed by version 1, misses the cache and
        # scores against the new table instead of replaying the stale entry.
        np.testing.assert_allclose(service.score_row(3), post_swap,
                                   rtol=1e-12, atol=1e-12)
        assert service.stats()["cache_hits"] == 0
        assert service.stats()["cache_misses"] == 2


class TestConcurrentConsistency:
    def test_multi_chunk_batch_pins_one_snapshot(self, single_join_dense, rng):
        """A swap landing between micro-batches must not tear one service call.

        Deterministic version of the race: the first scorer invocation of a
        chunked batch triggers a synchronous update_table, so without the
        pinned snapshot the later chunks would score against the new table.
        """
        _, normalized, _ = single_join_dense
        scorer, export = _scorer_for(normalized, seed=8)
        service = ScoringService(scorer, max_batch_size=16)
        old_table = np.asarray(normalized.attributes[0])
        new_table = rng.standard_normal(old_table.shape)
        pre_swap = (np.asarray(NormalizedMatrix(
            normalized.entity, normalized.indicators, [old_table]
        ).materialize()) @ export.weights)

        original = scorer.score_rows
        fired = []

        def score_rows_with_midflight_swap(chunk, snapshot=None):
            result = original(chunk, snapshot=snapshot)
            if not fired:
                fired.append(True)
                scorer.update_table(0, new_table, wait=True)
            return result

        scorer.score_rows = score_rows_with_midflight_swap
        try:
            rows = np.arange(normalized.shape[0])
            got = service.score_rows(rows)
        finally:
            scorer.score_rows = original
        assert scorer.version == 1  # the swap really happened mid-batch
        np.testing.assert_allclose(got, pre_swap, rtol=1e-12, atol=1e-12)

    def test_concurrent_batches_never_torn_under_swaps(self, multi_join_dense, rng):
        """Readers racing update_table see old or new scores, never a mixture."""
        _, normalized, _ = multi_join_dense
        scorer, export = _scorer_for(normalized, seed=5)
        old_table = np.asarray(normalized.attributes[0])
        new_table = rng.standard_normal(old_table.shape)
        candidates = []
        for table in (old_table, new_table):
            swapped = NormalizedMatrix(normalized.entity, normalized.indicators,
                                       [table, normalized.attributes[1]])
            candidates.append(np.asarray(swapped.materialize()) @ export.weights)
        rows = np.arange(normalized.shape[0])
        mismatches = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                got = scorer.score_rows(rows)
                if not any(np.allclose(got, c, rtol=1e-12, atol=1e-12)
                           for c in candidates):
                    mismatches.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(25):
            scorer.update_table(0, new_table, wait=True)
            scorer.update_table(0, old_table, wait=True)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not mismatches, "a reader observed a torn snapshot"
        assert scorer.version == 50

    def test_background_updates_with_concurrent_point_reads(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        scorer, export = _scorer_for(normalized, seed=6)
        service = ScoringService(scorer, cache_size=128)
        old_table = np.asarray(normalized.attributes[0])
        new_table = rng.standard_normal(old_table.shape)
        candidates = []
        for table in (old_table, new_table):
            swapped = NormalizedMatrix(normalized.entity, normalized.indicators, [table])
            candidates.append(np.asarray(swapped.materialize()) @ export.weights)
        mismatches = []
        stop = threading.Event()

        def reader():
            picks = np.random.default_rng(threading.get_ident() % 2**31)
            while not stop.is_set():
                row = int(picks.integers(0, normalized.shape[0]))
                got = service.score_row(row)
                if not any(np.allclose(got, c[row], rtol=1e-12, atol=1e-12)
                           for c in candidates):
                    mismatches.append((row, got))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        futures = []
        for _ in range(10):
            futures.append(service.update_table(0, new_table, wait=False))
            futures.append(service.update_table(0, old_table, wait=False))
        for future in futures:
            future.result(timeout=30)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        service.close()
        assert not mismatches, f"point reads observed torn scores: {mismatches[:1]}"
        assert service.stats()["snapshot_version"] == 20


class TestStatsSnapshot:
    """stats() is an immutable point-in-time copy, not a live mutable view."""

    def test_mutating_snapshot_raises_and_counters_survive(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer, max_batch_size=8)
        service.score_rows(np.arange(8))
        snap = service.stats()
        assert snap["requests"] == 8
        with pytest.raises(TypeError):
            snap["requests"] = 0
        with pytest.raises(TypeError):
            del snap["requests"]
        assert service.stats()["requests"] == 8

    def test_snapshot_is_point_in_time(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer, _ = _scorer_for(normalized)
        service = ScoringService(scorer, max_batch_size=8)
        service.score_rows(np.arange(8))
        before = service.stats()
        frozen = dict(before)
        service.score_rows(np.arange(8))
        assert dict(before) == frozen, "stats() returned a live view"
        assert service.stats()["requests"] == frozen["requests"] + 8
