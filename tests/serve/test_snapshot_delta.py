"""Concurrency and exactness of the delta-patched serving path.

These tests pin the ``apply_delta`` contract on
:class:`~repro.serve.snapshot.SnapshotManager` /
:class:`~repro.serve.scorer.FactorizedScorer`:

* readers racing a stream of deltas observe only **pre- or post-delta
  states** from the published chain -- never a torn mixture;
* after the stream, the serving state is **bit-for-bit identical** to a
  from-scratch rebuild on the final table.

Bit-for-bit comparisons are made meaningful by using integer-valued float64
data everywhere: all products and sums are then exact in IEEE-754 (well
inside the 2^53 integer window), so the patched path (changed rows times
weights) and the rebuilt path (whole table times weights) must agree to the
last bit regardless of summation order, and reader results can be matched
against the expected state chain with ``np.array_equal`` instead of a
tolerance that could mask a torn read.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from scipy import sparse

from repro.core.delta import MatrixDelta
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import ServingError
from repro.ml import ServingExport
from repro.serve import FactorizedScorer
from repro.serve.snapshot import compute_partial


def _int_matrix(rng: np.random.Generator, shape) -> np.ndarray:
    """Small integer-valued float64 matrix: exact under any summation order."""
    return rng.integers(-5, 6, size=shape).astype(np.float64)


def _build(seed=0, n_s=64, n_r=12, d_s=2, d_r=3, m=2):
    rng = np.random.default_rng(seed)
    entity = _int_matrix(rng, (n_s, d_s))
    codes = rng.integers(0, n_r, n_s)
    indicator = sparse.csr_matrix(
        (np.ones(n_s), (np.arange(n_s), codes)), shape=(n_s, n_r)
    )
    table = _int_matrix(rng, (n_r, d_r))
    normalized = NormalizedMatrix(entity, [indicator], [table])
    export = ServingExport("linear_regression", _int_matrix(rng, (d_s + d_r, m)))
    return normalized, table, export, rng


def _delta_chain(rng: np.random.Generator, table: np.ndarray, steps: int):
    """A chain of integer-valued deltas and the table state after each."""
    deltas, tables = [], [table]
    current = table
    for step in range(steps):
        b = int(rng.integers(1, current.shape[0] // 2 + 1))
        rows = rng.choice(current.shape[0], size=b, replace=False)
        new_values = _int_matrix(rng, (b, current.shape[1]))
        deltas.append(MatrixDelta.upsert(rows, new_values, current, version=step + 1))
        current = np.array(current)
        current[np.sort(rows)] = new_values[np.argsort(rows)]
        tables.append(current)
    return deltas, tables


def _expected_scores(normalized, table, weights) -> np.ndarray:
    swapped = NormalizedMatrix(normalized.entity, normalized.indicators, [table])
    return np.asarray(swapped.materialize()) @ weights


class TestExactness:
    def test_final_state_bit_for_bit_equals_rebuild(self):
        normalized, table, export, rng = _build(seed=1)
        scorer = FactorizedScorer(export, normalized)
        deltas, tables = _delta_chain(rng, table, steps=10)
        for delta in deltas:
            scorer.apply_delta(0, delta)
        assert scorer.version == len(deltas)

        # Partial: patched chain vs compute_partial on the final table.
        segment = scorer._table_segments[0]
        fresh = compute_partial(tables[-1], export.weights[segment.slice()])
        assert np.array_equal(scorer.current_snapshot().partials[0], fresh)

        # End-to-end scores vs a scorer built from scratch on the final table.
        rebuilt = FactorizedScorer(
            export, NormalizedMatrix(normalized.entity, normalized.indicators,
                                     [tables[-1]])
        )
        rows = np.arange(normalized.shape[0])
        assert np.array_equal(scorer.score_rows(rows), rebuilt.score_rows(rows))
        scorer.close()
        rebuilt.close()

    def test_tombstone_delta_zeroes_contribution(self):
        normalized, table, export, rng = _build(seed=2)
        scorer = FactorizedScorer(export, normalized)
        dead = np.array([0, 3])
        scorer.apply_delta(0, MatrixDelta.tombstone(dead, table))
        assert np.array_equal(
            scorer.current_snapshot().partials[0][dead],
            np.zeros((2, export.n_outputs)),
        )
        scorer.close()

    def test_background_apply_delta(self):
        normalized, table, export, rng = _build(seed=3)
        scorer = FactorizedScorer(export, normalized)
        delta = MatrixDelta.upsert([1], _int_matrix(rng, (1, table.shape[1])), table)
        future = scorer.apply_delta(0, delta, wait=False)
        snapshot = future.result(timeout=30)
        assert snapshot.version == 1 and scorer.version == 1
        scorer.close()

    def test_delta_composes_with_full_update_table(self):
        """An interleaved patch and rebuild land on the same final state."""
        normalized, table, export, rng = _build(seed=4)
        scorer = FactorizedScorer(export, normalized)
        deltas, tables = _delta_chain(rng, table, steps=2)
        scorer.apply_delta(0, deltas[0])
        scorer.update_table(0, tables[1])          # full rebuild of the same state
        scorer.apply_delta(0, deltas[1])
        segment = scorer._table_segments[0]
        fresh = compute_partial(tables[2], export.weights[segment.slice()])
        assert np.array_equal(scorer.current_snapshot().partials[0], fresh)
        scorer.close()

    def test_row_count_mismatch_is_rejected(self):
        """A delta captured against a different row count must not patch."""
        normalized, table, export, rng = _build(seed=5)
        scorer = FactorizedScorer(export, normalized)
        wrong = MatrixDelta(rows=np.array([0]), old=table[:1], new=table[:1] + 1.0,
                            num_rows=table.shape[0] + 7)
        with pytest.raises(ServingError, match="recapture"):
            scorer.apply_delta(0, wrong)
        assert scorer.version == 0  # failed patch leaves the snapshot untouched
        scorer.close()

    def test_width_mismatch_is_rejected(self):
        from repro.exceptions import SchemaMismatchError

        normalized, table, export, rng = _build(seed=6)
        scorer = FactorizedScorer(export, normalized)
        narrow = MatrixDelta.upsert([0], np.zeros((1, table.shape[1] - 1)),
                                    table[:, :-1])
        with pytest.raises(SchemaMismatchError, match="features"):
            scorer.apply_delta(0, narrow)
        scorer.close()


class TestConcurrency:
    def test_readers_see_only_published_chain_states(self):
        """Readers racing a delta stream observe exact pre- or post-delta
        scores from the published chain -- bit-for-bit, never a mixture."""
        normalized, table, export, rng = _build(seed=7, n_s=96, n_r=16)
        scorer = FactorizedScorer(export, normalized)
        deltas, tables = _delta_chain(rng, table, steps=30)
        candidates = {
            _expected_scores(normalized, t, export.weights).tobytes()
            for t in tables
        }
        rows = np.arange(normalized.shape[0])
        mismatches = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                got = scorer.score_rows(rows)
                if got.tobytes() not in candidates:
                    mismatches.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for delta in deltas:
            scorer.apply_delta(0, delta)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not mismatches, "a reader observed a state outside the delta chain"
        assert scorer.version == len(deltas)

        # And the terminal state is exactly the last chain state.
        final = _expected_scores(normalized, tables[-1], export.weights)
        assert np.array_equal(scorer.score_rows(rows), final)
        scorer.close()

    def test_concurrent_writers_compose_on_different_tables(self):
        """Deltas on different tables submitted concurrently all land."""
        rng = np.random.default_rng(8)
        n_s = 48
        entity = _int_matrix(rng, (n_s, 2))
        tables, indicators = [], []
        for n_r in (8, 10):
            codes = rng.integers(0, n_r, n_s)
            indicators.append(sparse.csr_matrix(
                (np.ones(n_s), (np.arange(n_s), codes)), shape=(n_s, n_r)))
            tables.append(_int_matrix(rng, (n_r, 3)))
        normalized = NormalizedMatrix(entity, indicators, tables)
        export = ServingExport("linear_regression",
                               _int_matrix(rng, (normalized.logical_cols, 2)))
        scorer = FactorizedScorer(export, normalized)

        finals = []
        chains = []
        for index, table in enumerate(tables):
            deltas, states = _delta_chain(rng, table, steps=8)
            chains.append((index, deltas))
            finals.append(states[-1])

        def writer(index, deltas):
            for delta in deltas:
                scorer.apply_delta(index, delta)

        threads = [threading.Thread(target=writer, args=chain) for chain in chains]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert scorer.version == 16  # no lost updates across writers
        rebuilt = FactorizedScorer(
            export, NormalizedMatrix(entity, indicators, finals))
        rows = np.arange(n_s)
        assert np.array_equal(scorer.score_rows(rows), rebuilt.score_rows(rows))
        scorer.close()
        rebuilt.close()
