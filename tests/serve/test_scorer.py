"""FactorizedScorer equivalence: partial-score path vs materialized ``S @ w``.

The factorized scorer must reproduce materialized scoring to 1e-12 across
star-schema and M:N fixtures, for every model kind's head, and keep doing so
after per-table snapshot swaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import indicator_codes
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import SchemaMismatchError, ServingError, ShapeError
from repro.ml import (
    GNMF,
    KMeans,
    LinearRegressionGD,
    LinearRegressionNE,
    LogisticRegressionGD,
    ServingExport,
)
from repro.serve import FactorizedScorer

TIGHT = dict(rtol=1e-12, atol=1e-12)


def _random_export(matrix, m=2, seed=0, kind="linear_regression"):
    rng = np.random.default_rng(seed)
    return ServingExport(kind, rng.standard_normal((matrix.logical_cols, m)))


class TestRawEquivalence:
    @pytest.mark.parametrize("fixture", ["single_join_dense", "multi_join_dense"])
    def test_star_score_rows_matches_materialized(self, fixture, request):
        _, normalized, materialized = request.getfixturevalue(fixture)
        export = _random_export(normalized)
        scorer = FactorizedScorer(export, normalized)
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(
            scorer.score_rows(rows), np.asarray(materialized) @ export.weights, **TIGHT
        )

    def test_sparse_star_matches_materialized(self, single_join_sparse):
        normalized, dense = single_join_sparse
        export = _random_export(normalized, seed=3)
        scorer = FactorizedScorer(export, normalized)
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(scorer.score_rows(rows), dense @ export.weights, **TIGHT)

    def test_no_entity_features_matches_materialized(self, no_entity_features):
        normalized, dense = no_entity_features
        export = _random_export(normalized, seed=5)
        scorer = FactorizedScorer(export, normalized)
        assert scorer.entity_width == 0
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(scorer.score_rows(rows), dense @ export.weights, **TIGHT)

    @pytest.mark.parametrize("fixture", ["mn_dataset_pair", "mn_multi_component"])
    def test_mn_score_rows_matches_materialized(self, fixture, request, mn_dataset):
        if fixture == "mn_dataset_pair":
            _, normalized, materialized = mn_dataset
        else:
            normalized, materialized = request.getfixturevalue(fixture)
        export = _random_export(normalized, seed=7)
        scorer = FactorizedScorer(export, normalized)
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(
            scorer.score_rows(rows), np.asarray(materialized) @ export.weights, **TIGHT
        )

    def test_row_subsets_duplicates_and_masks(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        export = _random_export(normalized, seed=9)
        scorer = FactorizedScorer(export, normalized)
        dense = np.asarray(materialized)
        picks = np.array([3, 3, 0, 17, 5])
        np.testing.assert_allclose(
            scorer.score_rows(picks), dense[picks] @ export.weights, **TIGHT
        )
        mask = np.zeros(normalized.shape[0], dtype=bool)
        mask[::7] = True
        np.testing.assert_allclose(
            scorer.score_rows(mask), dense[mask] @ export.weights, **TIGHT
        )

    def test_adhoc_requests_match_row_path(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        export = _random_export(normalized, seed=11)
        scorer = FactorizedScorer(export, normalized)
        keys = np.stack([indicator_codes(k) for k in normalized.indicators], axis=1)
        features = np.asarray(normalized.entity)
        rows = np.arange(12)
        np.testing.assert_allclose(
            scorer.score(features[rows], keys[rows]), scorer.score_rows(rows), **TIGHT
        )


class TestModelHeads:
    def test_linear_regression_predictions(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        dense = np.asarray(materialized)
        y = rng.standard_normal(dense.shape[0])
        for model in (LinearRegressionNE().fit(normalized, y),
                      LinearRegressionGD(max_iter=4).fit(normalized, y)):
            scorer = FactorizedScorer.from_model(model, normalized)
            np.testing.assert_allclose(
                scorer.predict_rows(np.arange(dense.shape[0])),
                model.predict(dense), rtol=1e-9, atol=1e-9,
            )

    def test_logistic_labels_and_probabilities(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        dense = np.asarray(materialized)
        labels = np.where(rng.standard_normal(dense.shape[0]) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=5, step_size=1e-2).fit(normalized, labels)
        scorer = FactorizedScorer.from_model(model, normalized)
        rows = np.arange(dense.shape[0])
        np.testing.assert_allclose(scorer.predict_rows(rows), model.predict(dense))
        np.testing.assert_allclose(
            scorer.predict_proba_rows(rows), model.predict_proba(dense),
            rtol=1e-9, atol=1e-9,
        )

    def test_kmeans_cluster_assignment(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        dense = np.asarray(materialized)
        model = KMeans(num_clusters=4, max_iter=5).fit(normalized)
        scorer = FactorizedScorer.from_model(model, normalized)
        np.testing.assert_array_equal(
            scorer.predict_rows(np.arange(dense.shape[0])), model.predict(dense)
        )

    def test_gnmf_projection(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        dense = np.abs(np.asarray(materialized))
        nonneg = NormalizedMatrix(
            np.abs(np.asarray(normalized.entity)), normalized.indicators,
            [np.abs(np.asarray(r)) for r in normalized.attributes],
        )
        model = GNMF(rank=3, max_iter=5).fit(nonneg)
        scorer = FactorizedScorer.from_model(model, nonneg)
        np.testing.assert_allclose(
            scorer.predict_rows(np.arange(dense.shape[0])),
            model.transform(dense), rtol=1e-9, atol=1e-9,
        )

    def test_kmeans_export_requires_offsets(self):
        with pytest.raises(ServingError, match="offsets"):
            ServingExport("kmeans", np.zeros((4, 3)))

    def test_proba_rejected_for_non_logistic(self, single_join_dense):
        _, normalized, _ = single_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized)
        with pytest.raises(ServingError):
            scorer.predict_proba_rows([0])


class TestUpdateTableSwap:
    def test_swap_matches_rebuilt_materialization(self, multi_join_dense, rng):
        _, normalized, _ = multi_join_dense
        export = _random_export(normalized, seed=13)
        scorer = FactorizedScorer(export, normalized)
        fresh = rng.standard_normal(np.asarray(normalized.attributes[1]).shape)
        assert scorer.version == 0
        scorer.update_table("table_1", fresh, wait=True)
        assert scorer.version == 1
        swapped = NormalizedMatrix(normalized.entity, normalized.indicators,
                                   [normalized.attributes[0], fresh])
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(
            scorer.score_rows(rows),
            np.asarray(swapped.materialize()) @ export.weights, **TIGHT,
        )

    def test_background_swap_publishes_future(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        export = _random_export(normalized, seed=17)
        scorer = FactorizedScorer(export, normalized)
        fresh = rng.standard_normal(np.asarray(normalized.attributes[0]).shape)
        future = scorer.update_table(0, fresh, wait=False)
        snapshot = future.result(timeout=10)
        assert snapshot.version == 1
        swapped = NormalizedMatrix(normalized.entity, normalized.indicators, [fresh])
        rows = np.arange(normalized.shape[0])
        np.testing.assert_allclose(
            scorer.score_rows(rows),
            np.asarray(swapped.materialize()) @ export.weights, **TIGHT,
        )
        scorer.close()

    def test_table_can_grow_rows_but_not_change_width(self, single_join_dense, rng):
        _, normalized, _ = single_join_dense
        export = _random_export(normalized, seed=19)
        scorer = FactorizedScorer(export, normalized)
        old = np.asarray(normalized.attributes[0])
        grown = np.vstack([old, rng.standard_normal((4, old.shape[1]))])
        scorer.update_table(0, grown, wait=True)
        # the new rows are addressable through the ad-hoc key path
        features = np.asarray(normalized.entity)[:1]
        scorer.score(features, np.array([[old.shape[0]]]))
        with pytest.raises(SchemaMismatchError):
            scorer.update_table(0, old[:, :-1], wait=True)
        with pytest.raises(ServingError):
            scorer.update_table(0, old[: old.shape[0] // 2], wait=True)


class TestValidation:
    def test_fingerprint_mismatch_rejected(self, single_join_dense, multi_join_dense):
        _, single, _ = single_join_dense
        _, multi, _ = multi_join_dense
        from repro.core import schema_fingerprint

        export = _random_export(single)
        with pytest.raises(SchemaMismatchError):
            FactorizedScorer(export, single,
                             expected_fingerprint=schema_fingerprint(multi))

    def test_weight_length_mismatch_rejected(self, single_join_dense):
        _, normalized, _ = single_join_dense
        bad = ServingExport(
            "linear_regression", np.zeros((normalized.logical_cols + 1, 1))
        )
        with pytest.raises(SchemaMismatchError):
            FactorizedScorer(bad, normalized)

    def test_plain_and_transposed_matrices_rejected(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        export = _random_export(normalized)
        with pytest.raises(ServingError):
            FactorizedScorer(export, np.asarray(materialized))
        with pytest.raises(ServingError):
            FactorizedScorer(export, normalized.T)

    def test_bad_requests_raise_serving_errors(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        scorer = FactorizedScorer(_random_export(normalized), normalized)
        features = np.asarray(normalized.entity)[:2]
        with pytest.raises(ServingError):
            scorer.score(features, None)  # missing keys
        with pytest.raises(ServingError):
            scorer.score(None, np.zeros((2, 2), dtype=np.int64))  # missing features
        with pytest.raises(ServingError):
            scorer.score(features, np.zeros((2, 1), dtype=np.int64))  # wrong key count
        with pytest.raises(ServingError):
            scorer.score(features, np.full((2, 2), 10_000))  # key out of range
        with pytest.raises(ServingError):
            scorer.score(features, np.zeros((2, 2)))  # non-integer keys
        with pytest.raises(ShapeError):
            scorer.score(features[:, :-1], np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ShapeError):
            scorer.score_rows([normalized.shape[0] + 3])
        with pytest.raises(ServingError):
            scorer.update_table("table_9", np.zeros((2, 2)))
        with pytest.raises(ServingError):
            scorer.update_table(9, np.zeros((2, 2)))
