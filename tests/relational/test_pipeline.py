"""Tests for the table-to-normalized-matrix builders in :mod:`repro.relational.pipeline`."""

import numpy as np
import pytest

from repro.core.decision import DecisionRule
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import SchemaError
from repro.relational.pipeline import (
    NormalizedDataset,
    mn_normalized_from_tables,
    normalized_from_tables,
)
from repro.relational.table import Table


@pytest.fixture
def star_tables():
    rng = np.random.default_rng(41)
    num_orders, num_products, num_stores = 120, 12, 6
    orders = Table("orders", {
        "order_id": np.arange(num_orders),
        "quantity": rng.integers(1, 9, size=num_orders).astype(float),
        "total": rng.uniform(5, 500, size=num_orders),
        "product_id": np.concatenate([np.arange(num_products),
                                      rng.integers(0, num_products, size=num_orders - num_products)]),
        "store_id": np.concatenate([np.arange(num_stores),
                                    rng.integers(0, num_stores, size=num_orders - num_stores)]),
    })
    products = Table("products", {
        "product_id": np.arange(num_products),
        "price": rng.uniform(1, 50, size=num_products),
        "category": rng.choice(np.array(["food", "toys", "tools"]), size=num_products),
    })
    stores = Table("stores", {
        "store_id": np.arange(num_stores),
        "size": rng.uniform(100, 900, size=num_stores),
    })
    return orders, products, stores


class TestNormalizedFromTables:
    def _build(self, star_tables, **kwargs):
        orders, products, stores = star_tables
        edges = [
            ("product_id", products, "product_id", ["price", "category"]),
            ("store_id", stores, "store_id", ["size"]),
        ]
        return normalized_from_tables(orders, edges, entity_features=["quantity"],
                                      target_column="total", **kwargs)

    def test_returns_factorized_dataset(self, star_tables):
        dataset = self._build(star_tables)
        assert isinstance(dataset, NormalizedDataset)
        assert isinstance(dataset.matrix, NormalizedMatrix)
        assert dataset.is_factorized

    def test_shape_and_feature_names(self, star_tables):
        dataset = self._build(star_tables)
        # quantity + price + 3 categories + size
        assert dataset.shape == (120, 6)
        assert dataset.feature_names[0] == "quantity"
        assert any(name.startswith("products.category=") for name in dataset.feature_names)
        assert "stores.size" in dataset.feature_names

    def test_feature_name_count_matches_width(self, star_tables):
        dataset = self._build(star_tables)
        assert len(dataset.feature_names) == dataset.shape[1]

    def test_target_extracted(self, star_tables):
        orders, _, _ = star_tables
        dataset = self._build(star_tables)
        assert dataset.target.shape == (120, 1)
        assert np.allclose(dataset.target.ravel(), orders.column("total"))

    def test_materialization_matches_manual_join(self, star_tables):
        dataset = self._build(star_tables, sparse=False)
        orders, products, stores = star_tables
        dense = dataset.matrix.to_dense()
        product_rows = orders.column("product_id")
        assert np.allclose(dense[:, 1], products.column("price")[product_rows])

    def test_dense_encoding_option(self, star_tables):
        dataset = self._build(star_tables, sparse=False)
        assert isinstance(dataset.matrix.entity, np.ndarray)

    def test_no_entity_features(self, star_tables):
        orders, products, stores = star_tables
        edges = [("product_id", products, "product_id", ["price"])]
        dataset = normalized_from_tables(orders, edges)
        assert dataset.matrix.entity_width == 0
        assert dataset.target is None

    def test_decision_rule_can_materialize(self, star_tables):
        strict = DecisionRule(tuple_ratio_threshold=10_000)
        dataset = self._build(star_tables, force_factorized=False, decision_rule=strict)
        assert not dataset.is_factorized
        assert isinstance(dataset.matrix, np.ndarray) or hasattr(dataset.matrix, "toarray")

    def test_requires_edges(self, star_tables):
        orders, _, _ = star_tables
        with pytest.raises(SchemaError):
            normalized_from_tables(orders, [], entity_features=["quantity"])


class TestMNNormalizedFromTables:
    def test_builds_mn_matrix(self):
        left = Table("papers", {
            "topic": np.array([1, 2, 2, 3]),
            "citations": np.array([10.0, 5.0, 7.0, 1.0]),
        })
        right = Table("venues", {
            "topic": np.array([2, 3, 3, 1]),
            "rank": np.array([1.0, 2.0, 3.0, 4.0]),
        })
        dataset = mn_normalized_from_tables(left, "topic", right, "topic",
                                            left_features=["citations"],
                                            right_features=["rank"])
        assert isinstance(dataset.matrix, MNNormalizedMatrix)
        assert dataset.shape[1] == 2
        assert dataset.feature_names == ["papers.citations", "venues.rank"]
        # topic 1 matches 1, topic 2 matches 1 each (x2 left rows), topic 3 matches 2.
        assert dataset.shape[0] == 1 + 1 + 1 + 2

    def test_matches_materialized_values(self):
        left = Table("l", {"j": np.array([1, 1, 2]), "x": np.array([1.0, 2.0, 3.0])})
        right = Table("r", {"j": np.array([1, 2]), "y": np.array([10.0, 20.0])})
        dataset = mn_normalized_from_tables(left, "j", right, "j",
                                            left_features=["x"], right_features=["y"],
                                            sparse=False)
        dense = dataset.matrix.to_dense()
        assert np.allclose(dense, [[1.0, 10.0], [2.0, 10.0], [3.0, 20.0]])
