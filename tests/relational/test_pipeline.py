"""Tests for the table-to-normalized-matrix builders in :mod:`repro.relational.pipeline`."""

import numpy as np
import pytest

from repro.core.decision import DecisionRule
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.exceptions import SchemaError
from repro.relational.pipeline import (
    NormalizedDataset,
    mn_normalized_from_tables,
    normalized_from_schema,
    normalized_from_tables,
)
from repro.relational.table import Table


@pytest.fixture
def star_tables():
    rng = np.random.default_rng(41)
    num_orders, num_products, num_stores = 120, 12, 6
    orders = Table("orders", {
        "order_id": np.arange(num_orders),
        "quantity": rng.integers(1, 9, size=num_orders).astype(float),
        "total": rng.uniform(5, 500, size=num_orders),
        "product_id": np.concatenate([np.arange(num_products),
                                      rng.integers(0, num_products, size=num_orders - num_products)]),
        "store_id": np.concatenate([np.arange(num_stores),
                                    rng.integers(0, num_stores, size=num_orders - num_stores)]),
    })
    products = Table("products", {
        "product_id": np.arange(num_products),
        "price": rng.uniform(1, 50, size=num_products),
        "category": rng.choice(np.array(["food", "toys", "tools"]), size=num_products),
    })
    stores = Table("stores", {
        "store_id": np.arange(num_stores),
        "size": rng.uniform(100, 900, size=num_stores),
    })
    return orders, products, stores


class TestNormalizedFromTables:
    def _build(self, star_tables, **kwargs):
        orders, products, stores = star_tables
        edges = [
            ("product_id", products, "product_id", ["price", "category"]),
            ("store_id", stores, "store_id", ["size"]),
        ]
        return normalized_from_tables(orders, edges, entity_features=["quantity"],
                                      target_column="total", **kwargs)

    def test_returns_factorized_dataset(self, star_tables):
        dataset = self._build(star_tables)
        assert isinstance(dataset, NormalizedDataset)
        assert isinstance(dataset.matrix, NormalizedMatrix)
        assert dataset.is_factorized

    def test_shape_and_feature_names(self, star_tables):
        dataset = self._build(star_tables)
        # quantity + price + 3 categories + size
        assert dataset.shape == (120, 6)
        assert dataset.feature_names[0] == "quantity"
        assert any(name.startswith("products.category=") for name in dataset.feature_names)
        assert "stores.size" in dataset.feature_names

    def test_feature_name_count_matches_width(self, star_tables):
        dataset = self._build(star_tables)
        assert len(dataset.feature_names) == dataset.shape[1]

    def test_target_extracted(self, star_tables):
        orders, _, _ = star_tables
        dataset = self._build(star_tables)
        assert dataset.target.shape == (120, 1)
        assert np.allclose(dataset.target.ravel(), orders.column("total"))

    def test_materialization_matches_manual_join(self, star_tables):
        dataset = self._build(star_tables, sparse=False)
        orders, products, stores = star_tables
        dense = dataset.matrix.to_dense()
        product_rows = orders.column("product_id")
        assert np.allclose(dense[:, 1], products.column("price")[product_rows])

    def test_dense_encoding_option(self, star_tables):
        dataset = self._build(star_tables, sparse=False)
        assert isinstance(dataset.matrix.entity, np.ndarray)

    def test_no_entity_features(self, star_tables):
        orders, products, stores = star_tables
        edges = [("product_id", products, "product_id", ["price"])]
        dataset = normalized_from_tables(orders, edges)
        assert dataset.matrix.entity_width == 0
        assert dataset.target is None

    def test_decision_rule_can_materialize(self, star_tables):
        strict = DecisionRule(tuple_ratio_threshold=10_000)
        dataset = self._build(star_tables, force_factorized=False, decision_rule=strict)
        assert not dataset.is_factorized
        assert isinstance(dataset.matrix, np.ndarray) or hasattr(dataset.matrix, "toarray")

    def test_requires_edges(self, star_tables):
        orders, _, _ = star_tables
        with pytest.raises(SchemaError):
            normalized_from_tables(orders, [], entity_features=["quantity"])


class TestMNNormalizedFromTables:
    def test_builds_mn_matrix(self):
        left = Table("papers", {
            "topic": np.array([1, 2, 2, 3]),
            "citations": np.array([10.0, 5.0, 7.0, 1.0]),
        })
        right = Table("venues", {
            "topic": np.array([2, 3, 3, 1]),
            "rank": np.array([1.0, 2.0, 3.0, 4.0]),
        })
        dataset = mn_normalized_from_tables(left, "topic", right, "topic",
                                            left_features=["citations"],
                                            right_features=["rank"])
        assert isinstance(dataset.matrix, MNNormalizedMatrix)
        assert dataset.shape[1] == 2
        assert dataset.feature_names == ["papers.citations", "venues.rank"]
        # topic 1 matches 1, topic 2 matches 1 each (x2 left rows), topic 3 matches 2.
        assert dataset.shape[0] == 1 + 1 + 1 + 2

    def test_matches_materialized_values(self):
        left = Table("l", {"j": np.array([1, 1, 2]), "x": np.array([1.0, 2.0, 3.0])})
        right = Table("r", {"j": np.array([1, 2]), "y": np.array([10.0, 20.0])})
        dataset = mn_normalized_from_tables(left, "j", right, "j",
                                            left_features=["x"], right_features=["y"],
                                            sparse=False)
        dense = dataset.matrix.to_dense()
        assert np.allclose(dense, [[1.0, 10.0], [2.0, 10.0], [3.0, 20.0]])


class TestTargetValidation:
    def test_non_numeric_target_raises_named_error(self):
        entity = Table("orders", {
            "store_id": np.array([0, 1]),
            "status": np.array(["paid", "open"]),
        })
        stores = Table("stores", {"store_id": np.array([0, 1]),
                                  "size": np.array([1.0, 2.0])})
        with pytest.raises(
                SchemaError,
                match=r"target column 'status' of table 'orders' has "
                      r"non-numeric dtype"):
            normalized_from_tables(
                entity, [("store_id", stores, "store_id", ["size"])],
                target_column="status")

    def test_boolean_target_accepted_as_01(self):
        entity = Table("orders", {
            "store_id": np.array([0, 1, 0]),
            "churned": np.array([True, False, True]),
        })
        stores = Table("stores", {"store_id": np.array([0, 1]),
                                  "size": np.array([1.0, 2.0])})
        dataset = normalized_from_tables(
            entity, [("store_id", stores, "store_id", ["size"])],
            target_column="churned")
        np.testing.assert_array_equal(dataset.target.ravel(), [1.0, 0.0, 1.0])
        assert dataset.target.dtype == np.float64
        assert dataset.target.shape == (3, 1)


class TestNormalizedFromSchema:
    @pytest.fixture
    def snowflake(self):
        """orders -> customers -> regions, plus locations under two roles."""
        from repro.relational import Join, SchemaGraph

        rng = np.random.default_rng(11)
        n, n_cust, n_reg, n_loc = 40, 8, 3, 5
        orders = Table("orders", {
            "cust_id": np.concatenate([np.arange(n_cust),
                                       rng.integers(0, n_cust, size=n - n_cust)]),
            "ship_to": np.concatenate([np.arange(n_loc),
                                       rng.integers(0, n_loc, size=n - n_loc)]),
            "bill_to": np.concatenate([np.arange(n_loc),
                                       rng.integers(0, n_loc, size=n - n_loc)]),
            "quantity": rng.uniform(1, 9, size=n),
            "total": rng.uniform(5, 500, size=n),
        })
        customers = Table("customers", {
            "id": np.arange(n_cust),
            "region_id": np.concatenate([np.arange(n_reg),
                                         rng.integers(0, n_reg, size=n_cust - n_reg)]),
            "age": rng.uniform(18, 80, size=n_cust),
        })
        regions = Table("regions", {
            "id": np.arange(n_reg), "gdp": rng.uniform(1, 10, size=n_reg),
        })
        locations = Table("locations", {
            "id": np.arange(n_loc), "tax": rng.uniform(0, 0.3, size=n_loc),
        })
        graph = SchemaGraph("orders", [
            Join("orders.cust_id", "customers.id"),
            Join("customers.region_id", "regions.id"),
            Join("orders.ship_to", "locations.id", alias="ship_loc"),
            Join("orders.bill_to", "locations.id", alias="bill_loc"),
        ])
        tables = {"orders": orders, "customers": customers,
                  "regions": regions, "locations": locations}
        return graph, tables

    def _dense_reference(self, tables):
        """Materialized snowflake join in breadth-first alias order."""
        orders = tables["orders"]
        customers, regions = tables["customers"], tables["regions"]
        locations = tables["locations"]
        cust = orders.column("cust_id")
        region_of_cust = customers.column("region_id")[cust]
        return np.column_stack([
            orders.column("quantity"),
            customers.column("age")[cust],
            locations.column("tax")[orders.column("ship_to")],
            locations.column("tax")[orders.column("bill_to")],
            regions.column("gdp")[region_of_cust],
        ])

    def test_matches_materialized_reference(self, snowflake):
        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables, target_column="total")
        assert isinstance(dataset.matrix, NormalizedMatrix)
        dense = np.asarray(dataset.matrix.to_dense())
        np.testing.assert_allclose(dense, self._dense_reference(tables), atol=1e-12)

    def test_feature_names_use_aliases_in_resolve_order(self, snowflake):
        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables, target_column="total")
        assert dataset.feature_names == [
            "quantity", "customers.age", "ship_loc.tax", "bill_loc.tax",
            "regions.gdp",
        ]

    def test_keys_and_target_excluded_from_features(self, snowflake):
        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables, target_column="total")
        assert "cust_id" not in dataset.feature_names
        assert "total" not in dataset.feature_names
        np.testing.assert_array_equal(
            dataset.target.ravel(), tables["orders"].column("total"))

    def test_two_hop_alias_stays_factorized_by_default(self, snowflake):
        from repro.la.chain import ChainedIndicator

        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables, collapse="never")
        chains = [k for k in dataset.matrix.indicators
                  if isinstance(k, ChainedIndicator)]
        assert len(chains) == 1
        assert chains[0].num_hops == 2

    def test_collapse_always_materializes_chain(self, snowflake):
        from repro.la.chain import ChainedIndicator

        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables, collapse="always")
        assert not any(isinstance(k, ChainedIndicator)
                       for k in dataset.matrix.indicators)
        decisions = dataset.matrix.chain_decisions
        assert len(decisions) == 1
        assert decisions[0]["collapse"] is True
        assert "forced" in decisions[0]["reason"]

    def test_collapse_results_identical(self, snowflake):
        graph, tables = snowflake
        kept = normalized_from_schema(graph, tables, collapse="never")
        collapsed = normalized_from_schema(graph, tables, collapse="always")
        np.testing.assert_allclose(np.asarray(kept.matrix.to_dense()),
                                   np.asarray(collapsed.matrix.to_dense()),
                                   atol=1e-12)

    def test_per_alias_feature_override(self, snowflake):
        graph, tables = snowflake
        dataset = normalized_from_schema(
            graph, tables, entity_features=(), target_column="total",
            features={"ship_loc": [], "bill_loc": [], "regions": []})
        assert dataset.feature_names == ["customers.age"]

    def test_shared_dimension_builds_one_hop_per_role(self, snowflake):
        graph, tables = snowflake
        dataset = normalized_from_schema(graph, tables)
        # ship_loc and bill_loc both map into locations: two indicators with
        # the same column count but different row labels.
        ship, bill = dataset.matrix.indicators[1], dataset.matrix.indicators[2]
        assert ship.shape == bill.shape == (40, 5)
        assert (ship != bill).nnz > 0

    def test_missing_table_rejected(self, snowflake):
        graph, tables = snowflake
        del tables["regions"]
        with pytest.raises(SchemaError, match="'regions' missing"):
            normalized_from_schema(graph, tables)
