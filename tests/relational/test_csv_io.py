"""Tests for CSV input/output in :mod:`repro.relational.csv_io`."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.csv_io import read_csv, write_csv
from repro.relational.table import Table


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "customers.csv"
    path.write_text(
        "customer_id,age,country\n"
        "0,25.5,us\n"
        "1,40.0,uk\n"
        "2,31.0,us\n"
    )
    return path


class TestReadCsv:
    def test_reads_header_and_rows(self, csv_file):
        table = read_csv(csv_file)
        assert table.num_rows == 3
        assert table.column_names == ["customer_id", "age", "country"]

    def test_numeric_columns_inferred(self, csv_file):
        table = read_csv(csv_file)
        assert table.column("age").dtype == np.float64
        assert table.column("age")[0] == 25.5

    def test_string_columns_kept(self, csv_file):
        table = read_csv(csv_file)
        assert table.column("country")[1] == "uk"

    def test_table_name_defaults_to_stem(self, csv_file):
        assert read_csv(csv_file).name == "customers"

    def test_table_name_override(self, csv_file):
        assert read_csv(csv_file, name="people").name == "people"

    def test_forced_numeric_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        table = read_csv(path, numeric_columns=["a"])
        assert table.column("a").dtype == np.float64

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            read_csv(path)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        table = Table("t", {
            "id": np.arange(3),
            "value": np.array([1.5, 2.5, 3.5]),
            "label": np.array(["x", "y", "z"]),
        })
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.num_rows == 3
        assert np.allclose(back.column("value"), table.column("value"))
        assert list(back.column("label")) == ["x", "y", "z"]

    def test_header_written(self, tmp_path):
        table = Table("t", {"a": np.array([1.0])})
        path = tmp_path / "out.csv"
        write_csv(table, path)
        assert path.read_text().splitlines()[0] == "a"
