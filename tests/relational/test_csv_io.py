"""Tests for CSV input/output in :mod:`repro.relational.csv_io`."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.csv_io import (
    read_csv,
    read_csv_chunks,
    stream_normalized_batches,
    write_csv,
)
from repro.relational.table import Table


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "customers.csv"
    path.write_text(
        "customer_id,age,country\n"
        "0,25.5,us\n"
        "1,40.0,uk\n"
        "2,31.0,us\n"
    )
    return path


class TestReadCsv:
    def test_reads_header_and_rows(self, csv_file):
        table = read_csv(csv_file)
        assert table.num_rows == 3
        assert table.column_names == ["customer_id", "age", "country"]

    def test_numeric_columns_inferred(self, csv_file):
        table = read_csv(csv_file)
        assert table.column("age").dtype == np.float64
        assert table.column("age")[0] == 25.5

    def test_string_columns_kept(self, csv_file):
        table = read_csv(csv_file)
        assert table.column("country")[1] == "uk"

    def test_table_name_defaults_to_stem(self, csv_file):
        assert read_csv(csv_file).name == "customers"

    def test_table_name_override(self, csv_file):
        assert read_csv(csv_file, name="people").name == "people"

    def test_forced_numeric_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2\n")
        table = read_csv(path, numeric_columns=["a"])
        assert table.column("a").dtype == np.float64

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            read_csv(path)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        table = Table("t", {
            "id": np.arange(3),
            "value": np.array([1.5, 2.5, 3.5]),
            "label": np.array(["x", "y", "z"]),
        })
        path = tmp_path / "out.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.num_rows == 3
        assert np.allclose(back.column("value"), table.column("value"))
        assert list(back.column("label")) == ["x", "y", "z"]

    def test_header_written(self, tmp_path):
        table = Table("t", {"a": np.array([1.0])})
        path = tmp_path / "out.csv"
        write_csv(table, path)
        assert path.read_text().splitlines()[0] == "a"


def _star_fixture(rng):
    """A small star schema: attribute table in memory, entity table as rows."""
    n_r, n_s = 8, 50
    attribute = Table("attr", {
        "pk": np.arange(n_r).astype(float),
        "price": rng.standard_normal(n_r),
        "cat": np.asarray([f"c{i % 3}" for i in range(n_r)], dtype=object),
    })
    fk = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(fk)
    entity = Table("entity", {
        "fk": fk.astype(float),
        "amount": rng.standard_normal(n_s),
        "label": np.where(rng.standard_normal(n_s) > 0, 1.0, -1.0),
    })
    return entity, attribute


class TestReadCsvChunks:
    def test_chunks_cover_the_file(self, tmp_path):
        rng = np.random.default_rng(0)
        entity, _ = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        chunks = list(read_csv_chunks(path, 13))
        assert sum(c.num_rows for c in chunks) == entity.num_rows
        assert all(c.num_rows <= 13 for c in chunks)
        stitched = np.concatenate([c.column("amount") for c in chunks])
        assert np.allclose(stitched, entity.column("amount"))

    def test_exact_multiple_chunking(self, tmp_path):
        rng = np.random.default_rng(1)
        entity, _ = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        chunks = list(read_csv_chunks(path, 25))
        assert [c.num_rows for c in chunks] == [25, 25]

    def test_numeric_columns_pinned(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        (chunk,) = read_csv_chunks(path, 10, numeric_columns=["a"])
        assert np.issubdtype(chunk.column("a").dtype, np.number)
        assert chunk.column("b").dtype == object

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            list(read_csv_chunks(path, 10))

    def test_header_only_yields_nothing(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        assert list(read_csv_chunks(path, 10)) == []

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            list(read_csv_chunks(path, 10))

    def test_invalid_chunk_rows(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n")
        with pytest.raises(ValueError):
            list(read_csv_chunks(path, 0))


class TestStreamNormalizedBatches:
    def test_batches_match_in_memory_pipeline(self, tmp_path):
        from repro.relational.pipeline import normalized_from_tables

        rng = np.random.default_rng(2)
        entity, attribute = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price", "cat"])]
        reference = normalized_from_tables(entity, edges, entity_features=["amount"],
                                           target_column="label")
        ref_dense = np.asarray(reference.matrix.to_dense())
        parts, targets = [], []
        for batch in stream_normalized_batches(path, edges, entity_features=["amount"],
                                               target_column="label", chunk_rows=13):
            assert batch.is_factorized
            assert batch.matrix.shape[0] <= 13
            assert batch.feature_names == reference.feature_names
            parts.append(np.asarray(batch.matrix.to_dense()))
            targets.append(batch.target)
        assert np.allclose(np.vstack(parts), ref_dense)
        assert np.allclose(np.vstack(targets), reference.target)

    def test_attribute_matrices_shared_across_batches(self, tmp_path):
        rng = np.random.default_rng(3)
        entity, attribute = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price", "cat"])]
        matrices = [b.matrix for b in stream_normalized_batches(path, edges,
                                                                chunk_rows=13)]
        first = matrices[0].attributes[0]
        assert all(m.attributes[0] is first for m in matrices)

    def test_memory_budget_sizes_chunks(self, tmp_path):
        rng = np.random.default_rng(4)
        entity, attribute = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price", "cat"])]
        d = 1 + 1 + 3  # amount + price + one-hot(cat)
        budget = 11 * d * 8
        sizes = [b.matrix.shape[0] for b in stream_normalized_batches(
            path, edges, entity_features=["amount"], memory_budget=budget)]
        assert len(sizes) > 1
        assert all(s * d * 8 <= budget + d * 8 for s in sizes)

    def test_partial_fit_over_the_stream(self, tmp_path):
        from repro.ml import LogisticRegressionGD

        rng = np.random.default_rng(5)
        entity, attribute = _star_fixture(rng)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price", "cat"])]
        model = LogisticRegressionGD(step_size=1e-2)
        for batch in stream_normalized_batches(path, edges, entity_features=["amount"],
                                               target_column="label", chunk_rows=17):
            model.partial_fit(batch.matrix, batch.target)
        assert model.coef_ is not None
        assert np.all(np.isfinite(model.coef_))

    def test_categorical_entity_feature_rejected(self, tmp_path):
        rng = np.random.default_rng(6)
        entity, attribute = _star_fixture(rng)
        columns = {name: entity.column(name) for name in entity.column_names}
        columns["city"] = np.asarray(
            ["a" if i % 2 else "b" for i in range(entity.num_rows)], dtype=object)
        entity = Table("entity", columns)
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price"])]
        with pytest.raises(SchemaError):
            list(stream_normalized_batches(path, edges, entity_features=["city"]))

    def test_no_edges_rejected(self, tmp_path):
        path = tmp_path / "entity.csv"
        path.write_text("a\n1\n")
        with pytest.raises(SchemaError):
            list(stream_normalized_batches(path, []))

    def test_string_primary_keys_survive_chunking(self, tmp_path):
        # Regression: per-chunk type inference used to float-coerce a chunk
        # whose fk values all looked numeric, so string PKs never matched.
        attribute = Table("attr", {
            "pk": np.asarray(["1", "2", "x9"], dtype=object),
            "price": np.asarray([1.0, 2.0, 3.0]),
        })
        entity = Table("entity", {
            "fk": np.asarray(["1", "2", "1", "x9", "2", "1"], dtype=object),
            "amount": np.arange(6.0),
        })
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        edges = [("fk", attribute, "pk", ["price"])]
        # chunk_rows=2: the first chunks contain only numeric-looking keys.
        batches = list(stream_normalized_batches(path, edges,
                                                 entity_features=["amount"],
                                                 chunk_rows=2))
        from repro.relational.pipeline import normalized_from_tables

        reference = np.asarray(normalized_from_tables(
            entity, edges, entity_features=["amount"]).matrix.to_dense())
        stitched = np.vstack([np.asarray(b.matrix.to_dense()) for b in batches])
        assert np.allclose(stitched, reference)

    def test_dangling_foreign_key_rejected(self, tmp_path):
        attribute = Table("attr", {"pk": np.asarray([0.0, 1.0]),
                                   "price": np.asarray([1.0, 2.0])})
        entity = Table("entity", {"fk": np.asarray([0.0, 7.0]),
                                  "amount": np.asarray([1.0, 2.0])})
        path = tmp_path / "entity.csv"
        write_csv(entity, path)
        with pytest.raises(SchemaError, match="no match"):
            list(stream_normalized_batches(path, [("fk", attribute, "pk", ["price"])],
                                           chunk_rows=2))


class TestDuplicateHeaders:
    """Regression: duplicate header names used to corrupt ingestion silently.

    ``read_csv`` keyed its column dict by name, merging both occurrences into
    one short column; ``read_csv_chunks`` let the last occurrence win.  Both
    paths must instead reject the file up front, naming the duplicates.
    """

    @pytest.fixture
    def duplicated(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "id,age,id,age\n"
            "0,25,9,52\n"
            "1,40,8,4\n"
        )
        return path

    def test_read_csv_rejects_duplicate_header(self, duplicated):
        with pytest.raises(SchemaError, match=r"duplicate header.*'age', 'id'"):
            read_csv(duplicated)

    def test_read_csv_chunks_rejects_duplicate_header(self, duplicated):
        with pytest.raises(SchemaError, match=r"duplicate header.*'age', 'id'"):
            next(read_csv_chunks(duplicated, chunk_rows=1))

    def test_single_duplicate_named(self, tmp_path):
        path = tmp_path / "one_dup.csv"
        path.write_text("a,b,a\n1,2,3\n")
        with pytest.raises(SchemaError, match=r"\['a'\]"):
            read_csv(path)

    def test_unique_headers_unaffected(self, csv_file):
        assert read_csv(csv_file).num_rows == 3
        assert sum(c.num_rows for c in read_csv_chunks(csv_file, chunk_rows=2)) == 3
