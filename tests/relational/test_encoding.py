"""Tests for feature encoding in :mod:`repro.relational.encoding`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SchemaError
from repro.relational.encoding import FeatureMatrix, OneHotEncoder, encode_features
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


class TestOneHotEncoder:
    def test_fit_learns_sorted_categories(self):
        encoder = OneHotEncoder().fit(["b", "a", "b", "c"])
        assert encoder.categories_ == ["a", "b", "c"]

    def test_transform_shape_and_values(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        out = encoder.transform(["b", "a", "b"])
        assert out.shape == (3, 2)
        assert np.allclose(out.toarray(), [[0, 1], [1, 0], [0, 1]])

    def test_transform_is_sparse(self):
        out = OneHotEncoder().fit_transform(["x", "y", "x"])
        assert sp.issparse(out)
        assert out.nnz == 3

    def test_transform_before_fit_raises(self):
        with pytest.raises(SchemaError):
            OneHotEncoder().transform(["a"])

    def test_unknown_category_error(self):
        encoder = OneHotEncoder().fit(["a"])
        with pytest.raises(SchemaError):
            encoder.transform(["b"])

    def test_unknown_category_ignore(self):
        encoder = OneHotEncoder(handle_unknown="ignore").fit(["a"])
        out = encoder.transform(["b", "a"])
        assert out.shape == (2, 1)
        assert out.nnz == 1

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="skip")

    def test_feature_names(self):
        encoder = OneHotEncoder().fit(["us", "uk"])
        assert encoder.feature_names("country") == ["country=uk", "country=us"]

    def test_feature_names_before_fit(self):
        with pytest.raises(SchemaError):
            OneHotEncoder().feature_names("c")

    def test_numeric_categories(self):
        encoder = OneHotEncoder().fit([3, 1, 2])
        out = encoder.transform([1, 3])
        assert out.shape == (2, 3)


class TestEncodeFeatures:
    @pytest.fixture
    def table(self) -> Table:
        schema = TableSchema("t", [
            Column("id", ColumnType.KEY),
            Column("age", ColumnType.NUMERIC),
            Column("country", ColumnType.CATEGORICAL),
        ], primary_key="id")
        return Table("t", {
            "id": np.arange(4),
            "age": np.array([20.0, 30.0, 40.0, 50.0]),
            "country": np.array(["us", "uk", "us", "de"]),
        }, schema=schema)

    def test_default_skips_key_columns(self, table):
        features = encode_features(table)
        assert features.num_features == 1 + 3  # age + 3 country categories

    def test_feature_names(self, table):
        features = encode_features(table)
        assert features.feature_names[0] == "age"
        assert "country=us" in features.feature_names

    def test_sparse_output(self, table):
        features = encode_features(table)
        assert sp.issparse(features.matrix)

    def test_dense_output(self, table):
        features = encode_features(table, sparse=False)
        assert isinstance(features.matrix, np.ndarray)
        assert features.shape == (4, 4)

    def test_numeric_values_preserved(self, table):
        features = encode_features(table, sparse=False)
        assert np.allclose(features.matrix[:, 0], table.column("age"))

    def test_onehot_rows_sum_to_one(self, table):
        features = encode_features(table, columns=["country"], sparse=False)
        assert np.allclose(features.matrix.sum(axis=1), 1.0)

    def test_explicit_column_selection(self, table):
        features = encode_features(table, columns=["age"])
        assert features.num_features == 1

    def test_no_feature_columns(self):
        table = Table("t", {"id": np.arange(3)},
                      schema=TableSchema("t", [Column("id", ColumnType.KEY)], primary_key="id"))
        features = encode_features(table)
        assert features.num_features == 0
        assert features.shape == (3, 0)

    def test_feature_matrix_dataclass(self):
        fm = FeatureMatrix(np.zeros((2, 3)), ["a", "b", "c"])
        assert fm.shape == (2, 3)
        assert fm.num_features == 3


class TestMissingValues:
    """NaN/None categoricals canonicalize to one shared missing category."""

    def test_nan_values_become_single_category(self):
        encoder = OneHotEncoder()
        encoder.fit([np.nan, "a", float("nan"), None, "b"])
        # Without canonicalization each NaN would be its own category
        # (NaN != NaN) and transform would fail on the fitted data itself.
        assert encoder.categories_ == ["<missing>", "a", "b"]

    def test_fit_transform_round_trips_on_nan_data(self):
        values = ["a", np.nan, "b", None, np.nan]
        encoded = OneHotEncoder().fit_transform(values)
        assert encoded.shape == (5, 3)
        np.testing.assert_array_equal(
            np.asarray(encoded.sum(axis=1)).ravel(), np.ones(5))
        # Both NaN and None land in the same column.
        missing_col = np.asarray(encoded[:, 0].todense()).ravel()
        np.testing.assert_array_equal(missing_col, [0, 1, 0, 1, 1])

    def test_feature_names_include_missing(self):
        encoder = OneHotEncoder()
        encoder.fit(["x", np.nan])
        assert encoder.feature_names("c") == ["c=<missing>", "c=x"]

    def test_missing_error_mode_raises(self):
        encoder = OneHotEncoder(missing="error")
        with pytest.raises(SchemaError, match="missing value .* at row 1"):
            encoder.fit(["a", np.nan])

    def test_missing_error_mode_at_transform(self):
        encoder = OneHotEncoder(missing="error")
        encoder.fit(["a", "b"])
        with pytest.raises(SchemaError, match="during transform"):
            encoder.transform(["a", None])

    def test_invalid_missing_mode(self):
        with pytest.raises(ValueError, match="missing must be"):
            OneHotEncoder(missing="drop")

    def test_encode_features_handles_nan_column(self):
        table = Table("t", {"city": np.array(["sf", np.nan, "la"], dtype=object)})
        encoded = encode_features(table, columns=["city"])
        assert encoded.feature_names == ["city=<missing>", "city=la", "city=sf"]
        np.testing.assert_array_equal(
            np.asarray(encoded.matrix.sum(axis=1)).ravel(), np.ones(3))
