"""Tests for feature encoding in :mod:`repro.relational.encoding`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SchemaError
from repro.relational.encoding import FeatureMatrix, OneHotEncoder, encode_features
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


class TestOneHotEncoder:
    def test_fit_learns_sorted_categories(self):
        encoder = OneHotEncoder().fit(["b", "a", "b", "c"])
        assert encoder.categories_ == ["a", "b", "c"]

    def test_transform_shape_and_values(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        out = encoder.transform(["b", "a", "b"])
        assert out.shape == (3, 2)
        assert np.allclose(out.toarray(), [[0, 1], [1, 0], [0, 1]])

    def test_transform_is_sparse(self):
        out = OneHotEncoder().fit_transform(["x", "y", "x"])
        assert sp.issparse(out)
        assert out.nnz == 3

    def test_transform_before_fit_raises(self):
        with pytest.raises(SchemaError):
            OneHotEncoder().transform(["a"])

    def test_unknown_category_error(self):
        encoder = OneHotEncoder().fit(["a"])
        with pytest.raises(SchemaError):
            encoder.transform(["b"])

    def test_unknown_category_ignore(self):
        encoder = OneHotEncoder(handle_unknown="ignore").fit(["a"])
        out = encoder.transform(["b", "a"])
        assert out.shape == (2, 1)
        assert out.nnz == 1

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="skip")

    def test_feature_names(self):
        encoder = OneHotEncoder().fit(["us", "uk"])
        assert encoder.feature_names("country") == ["country=uk", "country=us"]

    def test_feature_names_before_fit(self):
        with pytest.raises(SchemaError):
            OneHotEncoder().feature_names("c")

    def test_numeric_categories(self):
        encoder = OneHotEncoder().fit([3, 1, 2])
        out = encoder.transform([1, 3])
        assert out.shape == (2, 3)


class TestEncodeFeatures:
    @pytest.fixture
    def table(self) -> Table:
        schema = TableSchema("t", [
            Column("id", ColumnType.KEY),
            Column("age", ColumnType.NUMERIC),
            Column("country", ColumnType.CATEGORICAL),
        ], primary_key="id")
        return Table("t", {
            "id": np.arange(4),
            "age": np.array([20.0, 30.0, 40.0, 50.0]),
            "country": np.array(["us", "uk", "us", "de"]),
        }, schema=schema)

    def test_default_skips_key_columns(self, table):
        features = encode_features(table)
        assert features.num_features == 1 + 3  # age + 3 country categories

    def test_feature_names(self, table):
        features = encode_features(table)
        assert features.feature_names[0] == "age"
        assert "country=us" in features.feature_names

    def test_sparse_output(self, table):
        features = encode_features(table)
        assert sp.issparse(features.matrix)

    def test_dense_output(self, table):
        features = encode_features(table, sparse=False)
        assert isinstance(features.matrix, np.ndarray)
        assert features.shape == (4, 4)

    def test_numeric_values_preserved(self, table):
        features = encode_features(table, sparse=False)
        assert np.allclose(features.matrix[:, 0], table.column("age"))

    def test_onehot_rows_sum_to_one(self, table):
        features = encode_features(table, columns=["country"], sparse=False)
        assert np.allclose(features.matrix.sum(axis=1), 1.0)

    def test_explicit_column_selection(self, table):
        features = encode_features(table, columns=["age"])
        assert features.num_features == 1

    def test_no_feature_columns(self):
        table = Table("t", {"id": np.arange(3)},
                      schema=TableSchema("t", [Column("id", ColumnType.KEY)], primary_key="id"))
        features = encode_features(table)
        assert features.num_features == 0
        assert features.shape == (3, 0)

    def test_feature_matrix_dataclass(self):
        fm = FeatureMatrix(np.zeros((2, 3)), ["a", "b", "c"])
        assert fm.shape == (2, 3)
        assert fm.num_features == 3
