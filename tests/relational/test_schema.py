"""Tests for schema metadata in :mod:`repro.relational.schema`."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import (
    Column,
    ColumnType,
    ForeignKey,
    StarSchema,
    TableSchema,
)


def customers_schema() -> TableSchema:
    return TableSchema(
        name="customers",
        columns=[
            Column("customer_id", ColumnType.KEY),
            Column("churn", ColumnType.TARGET),
            Column("age", ColumnType.NUMERIC),
            Column("income", ColumnType.NUMERIC),
            Column("employer_id", ColumnType.KEY),
        ],
        primary_key="customer_id",
        foreign_keys=[ForeignKey("employer_id", "employers", "employer_id")],
    )


def employers_schema() -> TableSchema:
    return TableSchema(
        name="employers",
        columns=[
            Column("employer_id", ColumnType.KEY),
            Column("revenue", ColumnType.NUMERIC),
            Column("country", ColumnType.CATEGORICAL),
        ],
        primary_key="employer_id",
    )


class TestColumn:
    def test_default_type_is_numeric(self):
        assert Column("x").ctype is ColumnType.NUMERIC

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")


class TestTableSchema:
    def test_column_names_order(self):
        schema = customers_schema()
        assert schema.column_names[:2] == ["customer_id", "churn"]

    def test_column_lookup(self):
        assert customers_schema().column("age").ctype is ColumnType.NUMERIC

    def test_column_lookup_missing(self):
        with pytest.raises(SchemaError):
            customers_schema().column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], primary_key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], foreign_keys=[ForeignKey("b", "r", "rid")])

    def test_empty_table_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("", [Column("a")])

    def test_feature_columns_excludes_keys_and_target(self):
        names = [c.name for c in customers_schema().feature_columns()]
        assert names == ["age", "income"]

    def test_target_column(self):
        assert customers_schema().target_column().name == "churn"

    def test_target_column_absent(self):
        assert employers_schema().target_column() is None

    def test_multiple_targets_rejected(self):
        schema = TableSchema("t", [Column("a", ColumnType.TARGET), Column("b", ColumnType.TARGET)])
        with pytest.raises(SchemaError):
            schema.target_column()


class TestStarSchema:
    def test_valid_star_schema(self):
        star = StarSchema(entity=customers_schema(), attributes={"employers": employers_schema()})
        assert star.num_attribute_tables == 1
        assert star.foreign_keys[0].references_table == "employers"

    def test_attribute_schema_lookup(self):
        star = StarSchema(entity=customers_schema(), attributes={"employers": employers_schema()})
        assert star.attribute_schema(star.foreign_keys[0]).name == "employers"

    def test_missing_attribute_table(self):
        with pytest.raises(SchemaError):
            StarSchema(entity=customers_schema(), attributes={})

    def test_entity_without_foreign_keys_rejected(self):
        with pytest.raises(SchemaError):
            StarSchema(entity=employers_schema(), attributes={})

    def test_attribute_without_primary_key_rejected(self):
        bad = TableSchema("employers", [Column("employer_id", ColumnType.KEY)])
        with pytest.raises(SchemaError):
            StarSchema(entity=customers_schema(), attributes={"employers": bad})

    def test_foreign_key_must_reference_primary_key(self):
        other = TableSchema(
            "employers",
            [Column("other_id", ColumnType.KEY), Column("employer_id", ColumnType.KEY)],
            primary_key="other_id",
        )
        with pytest.raises(SchemaError):
            StarSchema(entity=customers_schema(), attributes={"employers": other})
