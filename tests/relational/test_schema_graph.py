"""Tests for the declarative snowflake frontend: Mapping, Join, SchemaGraph."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational import Join, Mapping, SchemaGraph, Table, to_mapping


# -- Mapping / to_mapping ------------------------------------------------------


def test_to_mapping_accepts_all_spellings():
    expected = Mapping("orders", "cust_id")
    assert to_mapping(expected) is expected
    assert to_mapping("orders.cust_id") == expected
    assert to_mapping(("orders", "cust_id")) == expected
    assert to_mapping(["orders", "cust_id"]) == expected
    assert to_mapping({"table": "orders", "column": "cust_id"}) == expected


def test_to_mapping_dotted_string_splits_on_first_dot_only():
    assert to_mapping("t.a.b") == Mapping("t", "a.b")


def test_to_mapping_errors():
    with pytest.raises(SchemaError, match="form 'table.column'"):
        to_mapping("no_dot_here")
    with pytest.raises(SchemaError, match="'table' and 'column' keys"):
        to_mapping({"table": "t"})
    with pytest.raises(SchemaError, match="cannot interpret"):
        to_mapping(42)
    with pytest.raises(SchemaError, match="both a table/alias and a column"):
        Mapping("", "c")


def test_mapping_str():
    assert str(Mapping("orders", "cust_id")) == "orders.cust_id"


# -- Join ----------------------------------------------------------------------


def test_join_coerces_mappings_and_defaults_alias():
    join = Join("orders.cust_id", "customers.id")
    assert join.master == Mapping("orders", "cust_id")
    assert join.detail == Mapping("customers", "id")
    assert join.alias == "customers"


def test_join_explicit_alias_shows_role_in_str():
    join = Join("orders.ship_to", "locations.id", alias="ship_loc")
    assert join.alias == "ship_loc"
    assert str(join) == "orders.ship_to -> locations.id as ship_loc"


# -- SchemaGraph construction / validation -------------------------------------


def _snowflake():
    """orders -> customers -> regions, plus locations under two roles."""
    return SchemaGraph("orders", [
        Join("customers.region_id", "regions.id"),  # declared out of order
        Join("orders.cust_id", "customers.id"),
        Join("orders.ship_to", "locations.id", alias="ship_loc"),
        Join("orders.bill_to", "locations.id", alias="bill_loc"),
    ])


def test_graph_requires_fact_and_joins():
    with pytest.raises(SchemaError, match="needs a fact table"):
        SchemaGraph("", [Join("f.a", "d.b")])
    with pytest.raises(SchemaError, match="at least one join"):
        SchemaGraph("orders", [])


def test_duplicate_alias_rejected():
    with pytest.raises(SchemaError, match="distinct alias per role"):
        SchemaGraph("orders", [
            Join("orders.ship_to", "locations.id"),
            Join("orders.bill_to", "locations.id"),
        ])


def test_alias_colliding_with_fact_rejected():
    with pytest.raises(SchemaError, match="collides with the fact table"):
        SchemaGraph("orders", [Join("orders.x", "orders.id", alias="orders")])


def test_unknown_master_rejected():
    with pytest.raises(SchemaError, match=r"\['ghost'\] are neither the fact"):
        SchemaGraph("orders", [Join("ghost.x", "customers.id")])


def test_cycle_rejected():
    with pytest.raises(SchemaError, match="join cycle"):
        SchemaGraph("orders", [
            Join("b.x", "ta.id", alias="a"),
            Join("a.y", "tb.id", alias="b"),
        ])


def test_join_tuples_are_coerced():
    graph = SchemaGraph("orders", [("orders.cust_id", "customers.id")])
    assert graph.aliases == ["customers"]


# -- resolution ----------------------------------------------------------------


def test_resolve_order_is_breadth_first():
    graph = _snowflake()
    # All fact-anchored joins resolve first, in declaration order; the
    # two-hop regions join resolves after its master alias exists.
    assert graph.aliases == ["customers", "ship_loc", "bill_loc", "regions"]


def test_join_path_and_depth():
    graph = _snowflake()
    assert [j.alias for j in graph.join_path("regions")] == ["customers", "regions"]
    assert [j.alias for j in graph.join_path("ship_loc")] == ["ship_loc"]
    assert graph.depth("regions") == 2
    assert graph.depth("customers") == 1
    assert graph.depth("orders") == 0


def test_table_for_maps_aliases_to_physical_tables():
    graph = _snowflake()
    assert graph.table_for("orders") == "orders"
    assert graph.table_for("ship_loc") == "locations"
    assert graph.table_for("bill_loc") == "locations"
    with pytest.raises(SchemaError, match="no alias 'ghost'"):
        graph.table_for("ghost")


# -- validate_tables -----------------------------------------------------------


def _tables():
    return {
        "orders": Table("orders", {
            "cust_id": np.array([1, 2, 1]),
            "ship_to": np.array([10, 11, 10]),
            "bill_to": np.array([11, 10, 11]),
        }),
        "customers": Table("customers", {
            "id": np.array([1, 2]), "region_id": np.array([5, 6]),
        }),
        "regions": Table("regions", {"id": np.array([5, 6])}),
        "locations": Table("locations", {"id": np.array([10, 11])}),
    }


def test_validate_tables_accepts_complete_set():
    _snowflake().validate_tables(_tables())


def test_validate_tables_missing_fact():
    tables = _tables()
    del tables["orders"]
    with pytest.raises(SchemaError, match="fact table 'orders' missing"):
        _snowflake().validate_tables(tables)


def test_validate_tables_missing_detail():
    tables = _tables()
    del tables["regions"]
    with pytest.raises(SchemaError, match="detail table 'regions' missing"):
        _snowflake().validate_tables(tables)


def test_validate_tables_missing_master_column():
    tables = _tables()
    tables["customers"] = Table("customers", {"id": np.array([1, 2])})
    with pytest.raises(SchemaError, match="has no column 'region_id'"):
        _snowflake().validate_tables(tables)


def test_validate_tables_missing_detail_column():
    tables = _tables()
    tables["locations"] = Table("locations", {"loc": np.array([10, 11])})
    with pytest.raises(SchemaError, match="has no column 'id'"):
        _snowflake().validate_tables(tables)
