"""Change capture on :class:`repro.relational.table.Table`.

Covers the mutation-hazard regression (column arrays are read-only, so the
cached key position index can never go stale silently) and the delta API:
``upsert_rows`` / ``delete_rows`` return a successor table plus a
:class:`~repro.core.delta.MatrixDelta` over the feature columns.
"""

import numpy as np
import pytest

from repro.core.delta import MatrixDelta
from repro.exceptions import SchemaError
from repro.relational.table import Table


@pytest.fixture
def products() -> Table:
    return Table("products", {
        "sku": np.array([10, 11, 12, 13]),
        "price": np.array([9.0, 2.0, 5.0, 7.0]),
        "weight": np.array([1.0, 4.0, 2.0, 3.0]),
        "label": np.array(["a", "b", "c", "d"]),
    })


class TestReadOnlyColumns:
    def test_in_place_column_write_raises(self, products):
        with pytest.raises(ValueError):
            products.column("price")[0] = 100.0

    def test_every_column_is_read_only(self, products):
        for name in products.column_names:
            assert not products.column(name).flags.writeable

    def test_key_index_cannot_go_stale(self, products):
        """The regression behind the hazard: mutate a key column after the
        position index is cached and lookups silently return wrong rows.
        With read-only columns the mutation itself raises instead."""
        positions = products.positions_for_keys("sku", [12])
        np.testing.assert_array_equal(positions, [2])
        with pytest.raises(ValueError):
            products.column("sku")[2] = 99
        np.testing.assert_array_equal(products.positions_for_keys("sku", [12]), [2])

    def test_caller_array_not_frozen(self):
        mine = np.array([1.0, 2.0])
        Table("t", {"x": mine})
        mine[0] = 5.0  # the table holds a read-only *view*, not my array


class TestUpsertRows:
    def test_successor_and_version(self, products):
        successor, delta = products.upsert_rows([1], {"price": [3.5]})
        assert successor.version == products.version + 1
        assert delta.version == successor.version
        assert successor.column("price")[1] == 3.5
        # predecessor untouched, unchanged columns shared
        assert products.column("price")[1] == 2.0
        assert np.shares_memory(successor.column("weight"), products.column("weight"))

    def test_delta_matches_column_change(self, products):
        _, delta = products.upsert_rows([0, 2], {"price": [1.0, 2.0]},
                                        feature_columns=["price", "weight"])
        assert isinstance(delta, MatrixDelta)
        np.testing.assert_array_equal(delta.rows, [0, 2])
        np.testing.assert_allclose(delta.old, [[9.0, 1.0], [5.0, 2.0]])
        np.testing.assert_allclose(delta.new, [[1.0, 1.0], [2.0, 2.0]])
        assert delta.num_rows == 4 and not delta.grows

    def test_append_rows(self, products):
        successor, delta = products.upsert_rows(
            [4, 5],
            {"sku": [14, 15], "price": [6.0, 8.0], "weight": [1.5, 2.5],
             "label": ["e", "f"]},
        )
        assert successor.num_rows == 6
        assert delta.grows and delta.num_rows_after == 6
        np.testing.assert_array_equal(successor.positions_for_keys("sku", [15]), [5])

    def test_append_must_be_contiguous(self, products):
        with pytest.raises(SchemaError, match="contiguous"):
            products.upsert_rows([6], {"sku": [14], "price": [6.0],
                                       "weight": [1.5], "label": ["e"]})

    def test_append_needs_every_column(self, products):
        with pytest.raises(SchemaError, match="every column"):
            products.upsert_rows([4], {"price": [6.0]})

    def test_unknown_column_rejected(self, products):
        with pytest.raises(SchemaError, match="no column"):
            products.upsert_rows([0], {"colour": ["red"]})

    def test_value_count_mismatch_rejected(self, products):
        with pytest.raises(SchemaError, match="update values"):
            products.upsert_rows([0, 1], {"price": [1.0]})


class TestDeleteRows:
    def test_tombstone_keeps_numbering(self, products):
        successor, delta = products.delete_rows([1],
                                                feature_columns=["price", "weight"])
        assert successor.num_rows == products.num_rows
        np.testing.assert_allclose(successor.column("price"), [9.0, 0.0, 5.0, 7.0])
        assert successor.column("sku")[1] == 11  # key survives the tombstone
        np.testing.assert_allclose(delta.old, [[2.0, 4.0]])
        np.testing.assert_allclose(delta.new, [[0.0, 0.0]])

    def test_out_of_range_rejected(self, products):
        with pytest.raises(SchemaError, match="within"):
            products.delete_rows([4])


class TestDeltaFlowsDownstream:
    def test_captured_delta_patches_a_normalized_matrix(self, products):
        from scipy import sparse

        from repro.core.normalized_matrix import NormalizedMatrix

        codes = np.array([0, 1, 1, 3, 2, 0])
        K = sparse.csr_matrix(
            (np.ones(6), (np.arange(6), codes)), shape=(6, 4)
        )
        R = products.numeric_matrix(["price", "weight"])
        T = NormalizedMatrix(None, [K], [R])
        successor, delta = products.upsert_rows(
            [1], {"price": [3.5]}, feature_columns=["price", "weight"]
        )
        patched = T.apply_delta(0, delta)
        rebuilt = NormalizedMatrix(
            None, [K], [successor.numeric_matrix(["price", "weight"])]
        )
        np.testing.assert_allclose(
            np.asarray(patched.to_dense()), np.asarray(rebuilt.to_dense())
        )
        assert patched.version == T.version + 1
