"""Tests for join execution and indicator construction in :mod:`repro.relational.join`."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.join import (
    chained_indicator,
    drop_unreferenced,
    join_mn,
    join_pk_fk,
    join_star,
    mn_drop_noncontributing,
    mn_join_indicators,
    pk_fk_indicator,
    star_indicators,
)
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


@pytest.fixture
def entity() -> Table:
    return Table("sales", {
        "sale_id": np.arange(6),
        "amount": np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0]),
        "store_id": np.array([101, 102, 102, 103, 101, 103]),
        "item_id": np.array([7, 8, 7, 7, 8, 8]),
    })


@pytest.fixture
def stores() -> Table:
    return Table("stores", {
        "store_id": np.array([101, 102, 103]),
        "size": np.array([1.0, 2.0, 3.0]),
    })


@pytest.fixture
def items() -> Table:
    return Table("items", {
        "item_id": np.array([7, 8]),
        "price": np.array([5.0, 9.0]),
    })


class TestPkFkIndicator:
    def test_shape(self, entity, stores):
        indicator, _ = pk_fk_indicator(entity, "store_id", stores, "store_id")
        assert indicator.shape == (6, 3)

    def test_one_nonzero_per_row(self, entity, stores):
        indicator, _ = pk_fk_indicator(entity, "store_id", stores, "store_id")
        assert np.all(np.asarray(indicator.sum(axis=1)).ravel() == 1)

    def test_labels_point_to_correct_rows(self, entity, stores):
        _, labels = pk_fk_indicator(entity, "store_id", stores, "store_id")
        assert list(labels) == [0, 1, 1, 2, 0, 2]

    def test_expansion_matches_join(self, entity, stores):
        indicator, _ = pk_fk_indicator(entity, "store_id", stores, "store_id")
        sizes = stores.column("size").reshape(-1, 1)
        expanded = np.asarray((indicator @ sizes)).ravel()
        assert list(expanded) == [1.0, 2.0, 2.0, 3.0, 1.0, 3.0]

    def test_dangling_foreign_key_rejected(self, stores):
        bad = Table("sales", {"store_id": np.array([101, 999])})
        with pytest.raises(SchemaError):
            pk_fk_indicator(bad, "store_id", stores, "store_id")

    def test_duplicate_primary_key_rejected(self, entity):
        bad = Table("stores", {"store_id": np.array([101, 101]), "size": np.array([1.0, 2.0])})
        with pytest.raises(SchemaError):
            pk_fk_indicator(entity, "store_id", bad, "store_id")


class TestDropUnreferenced:
    def test_drops_unreferenced_rows(self, entity):
        stores_extra = Table("stores", {
            "store_id": np.array([101, 102, 103, 104]),
            "size": np.array([1.0, 2.0, 3.0, 4.0]),
        })
        trimmed = drop_unreferenced(entity, "store_id", stores_extra, "store_id")
        assert trimmed.num_rows == 3
        assert 104 not in set(trimmed.column("store_id").tolist())

    def test_no_op_when_all_referenced(self, entity, stores):
        assert drop_unreferenced(entity, "store_id", stores, "store_id") is stores


class TestMaterializedPkFkJoin:
    def test_join_pk_fk_values(self, entity, stores):
        joined = join_pk_fk(entity, "store_id", stores, "store_id")
        assert list(joined.column("size")) == [1.0, 2.0, 2.0, 3.0, 1.0, 3.0]

    def test_join_keeps_entity_columns(self, entity, stores):
        joined = join_pk_fk(entity, "store_id", stores, "store_id")
        assert "amount" in joined and "store_id" in joined

    def test_join_column_name_clash_prefixed(self, entity):
        clash = Table("stores", {
            "store_id": np.array([101, 102, 103]),
            "amount": np.array([7.0, 8.0, 9.0]),
        })
        joined = join_pk_fk(entity, "store_id", clash, "store_id")
        assert "stores.amount" in joined

    def test_join_star_two_tables(self, entity, stores, items):
        joined = join_star(entity, [("store_id", stores, "store_id"), ("item_id", items, "item_id")])
        assert joined.num_rows == 6
        assert list(joined.column("price")) == [5.0, 9.0, 5.0, 5.0, 9.0, 9.0]

    def test_star_indicators_counts(self, entity, stores, items):
        result = star_indicators(entity, [("store_id", stores, "store_id"),
                                          ("item_id", items, "item_id")])
        assert len(result.indicators) == 2
        assert result.indicators[0].shape == (6, 3)
        assert result.indicators[1].shape == (6, 2)


class TestMNJoin:
    def test_indicator_shapes(self):
        left = Table("l", {"j": np.array([1, 2, 2]), "x": np.array([1.0, 2.0, 3.0])})
        right = Table("r", {"j": np.array([2, 2, 1]), "y": np.array([10.0, 20.0, 30.0])})
        i_l, i_r = mn_join_indicators(left, "j", right, "j")
        # left row 0 matches one right row; rows 1 and 2 match two right rows each.
        assert i_l.shape == (5, 3)
        assert i_r.shape == (5, 3)

    def test_indicator_nnz_equals_join_size(self):
        left = Table("l", {"j": np.array([1, 2, 2])})
        right = Table("r", {"j": np.array([2, 2, 1])})
        i_l, i_r = mn_join_indicators(left, "j", right, "j")
        assert i_l.nnz == i_r.nnz == 5

    def test_materialized_mn_join_matches_indicators(self):
        left = Table("l", {"j": np.array([1, 2, 2]), "x": np.array([1.0, 2.0, 3.0])})
        right = Table("r", {"j": np.array([2, 2, 1]), "y": np.array([10.0, 20.0, 30.0])})
        i_l, i_r = mn_join_indicators(left, "j", right, "j")
        joined = join_mn(left, "j", right, "j")
        x = left.column("x").reshape(-1, 1)
        y = right.column("y").reshape(-1, 1)
        assert np.allclose(joined.column("x"), np.asarray(i_l @ x).ravel())
        assert np.allclose(joined.column("y"), np.asarray(i_r @ y).ravel())

    def test_empty_join_rejected(self):
        left = Table("l", {"j": np.array([1])})
        right = Table("r", {"j": np.array([2])})
        with pytest.raises(SchemaError):
            mn_join_indicators(left, "j", right, "j")

    def test_cartesian_product_when_single_value(self):
        left = Table("l", {"j": np.array([5, 5, 5])})
        right = Table("r", {"j": np.array([5, 5])})
        i_l, i_r = mn_join_indicators(left, "j", right, "j")
        assert i_l.shape[0] == 6

    def test_drop_noncontributing(self):
        left = Table("l", {"j": np.array([1, 2, 3]), "x": np.arange(3.0)})
        right = Table("r", {"j": np.array([2, 4]), "y": np.arange(2.0)})
        new_left, new_right = mn_drop_noncontributing(left, "j", right, "j")
        assert new_left.num_rows == 1
        assert new_right.num_rows == 1

    def test_drop_noncontributing_empty_overlap(self):
        left = Table("l", {"j": np.array([1])})
        right = Table("r", {"j": np.array([2])})
        with pytest.raises(SchemaError):
            mn_drop_noncontributing(left, "j", right, "j")


class TestJoinKeyGuards:
    def test_dangling_fk_error_names_value(self, stores):
        bad = Table("sales", {"store_id": np.array([101, 999])})
        with pytest.raises(
                SchemaError,
                match=r"foreign key value 999 in sales.store_id has no match "
                      r"in stores.store_id"):
            pk_fk_indicator(bad, "store_id", stores, "store_id")

    def test_nan_foreign_key_rejected(self, stores):
        bad = Table("sales", {"store_id": np.array([101.0, np.nan])})
        with pytest.raises(
                SchemaError,
                match=r"foreign key column sales.store_id contains NaN at row 1"):
            pk_fk_indicator(bad, "store_id", stores, "store_id")

    def test_nan_primary_key_rejected(self, entity):
        bad = Table("stores", {"store_id": np.array([101.0, np.nan, 103.0]),
                               "size": np.array([1.0, 2.0, 3.0])})
        with pytest.raises(
                SchemaError,
                match=r"primary key column stores.store_id contains NaN at row 1"):
            pk_fk_indicator(entity, "store_id", bad, "store_id")

    def test_nan_mn_join_key_rejected(self):
        clean = Table("l", {"k": np.array([1.0, 2.0]), "x": np.array([1.0, 2.0])})
        dirty = Table("r", {"k": np.array([1.0, np.nan]), "y": np.array([3.0, 4.0])})
        with pytest.raises(SchemaError, match=r"join key column r.k contains NaN"):
            mn_join_indicators(clean, "k", dirty, "k")
        with pytest.raises(SchemaError, match=r"join key column r.k contains NaN"):
            mn_join_indicators(dirty, "k", clean, "k")


class TestChainedIndicatorBuilder:
    def test_empty_hops_rejected(self):
        with pytest.raises(SchemaError, match="at least one hop"):
            chained_indicator([])

    def test_single_hop_passes_through(self, entity, stores):
        hop, _ = pk_fk_indicator(entity, "store_id", stores, "store_id")
        assert chained_indicator([hop]) is hop

    def test_multi_hop_builds_chain(self, entity, stores):
        from repro.la.chain import ChainedIndicator
        hop1, _ = pk_fk_indicator(entity, "store_id", stores, "store_id")
        regions = Table("regions", {"region_id": np.array([0, 1])})
        stores_with_region = stores.with_column("region_id", np.array([0, 1, 0]))
        hop2, _ = pk_fk_indicator(stores_with_region, "region_id", regions, "region_id")
        chain = chained_indicator([hop1, hop2])
        assert isinstance(chain, ChainedIndicator)
        assert chain.shape == (entity.num_rows, 2)
        np.testing.assert_array_equal(
            chain.toarray(), (hop1 @ hop2).toarray())


class TestJoinedSchemaPreservation:
    def test_join_pk_fk_keeps_categorical_codes(self):
        entity = Table("sales", {
            "store_id": np.array([0, 1, 0]),
            "amount": np.array([10.0, 20.0, 30.0]),
        })
        stores = Table("stores", {
            "store_id": np.array([0, 1]),
            "tier": np.array([2, 5]),  # integer-coded categorical
        }, schema=TableSchema("stores", [
            Column("store_id", ColumnType.KEY),
            Column("tier", ColumnType.CATEGORICAL),
        ], primary_key="store_id"))
        joined = join_pk_fk(entity, "store_id", stores, "store_id")
        # The regression: rebuilding the output table from raw columns used to
        # re-infer the schema, flipping the coded categorical to NUMERIC.
        assert joined.schema.column("tier").ctype is ColumnType.CATEGORICAL

    def test_join_mn_keeps_categorical_codes(self):
        left = Table("l", {"k": np.array([1, 1]), "code": np.array([7, 8])},
                     schema=TableSchema("l", [
                         Column("k", ColumnType.KEY),
                         Column("code", ColumnType.CATEGORICAL),
                     ]))
        right = Table("r", {"k": np.array([1]), "y": np.array([0.5])})
        joined = join_mn(left, "k", right, "k")
        assert joined.schema.column("code").ctype is ColumnType.CATEGORICAL
