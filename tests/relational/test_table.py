"""Tests for the column-oriented table in :mod:`repro.relational.table`."""

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Column, ColumnType, ForeignKey, TableSchema
from repro.relational.table import Table


@pytest.fixture
def customers() -> Table:
    return Table("customers", {
        "customer_id": np.arange(5),
        "age": np.array([25.0, 40.0, 31.0, 58.0, 47.0]),
        "income": np.array([30.0, 80.0, 55.0, 120.0, 95.0]),
        "country": np.array(["us", "uk", "us", "de", "uk"]),
        "employer_id": np.array([0, 1, 1, 2, 0]),
    })


class TestConstruction:
    def test_row_and_column_counts(self, customers):
        assert customers.num_rows == 5
        assert customers.num_columns == 5
        assert len(customers) == 5

    def test_column_names_preserved(self, customers):
        assert customers.column_names[0] == "customer_id"

    def test_inferred_schema_types(self, customers):
        assert customers.schema.column("age").ctype is ColumnType.NUMERIC
        assert customers.schema.column("country").ctype is ColumnType.CATEGORICAL

    def test_explicit_schema_respected(self):
        schema = TableSchema("t", [Column("a", ColumnType.NUMERIC)])
        table = Table("t", {"a": np.array([1.0, 2.0])}, schema=schema)
        assert table.schema is schema

    def test_schema_missing_column_rejected(self):
        schema = TableSchema("t", [Column("a"), Column("b")])
        with pytest.raises(SchemaError):
            Table("t", {"a": np.array([1.0])}, schema=schema)

    def test_unequal_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {"a": np.array([1, 2]), "b": np.array([1])})

    def test_empty_column_set_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {"a": np.ones((2, 2))})

    def test_from_records(self):
        table = Table.from_records("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.num_rows == 2
        assert list(table.column("b")) == ["x", "y"]

    def test_from_records_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_records("t", [])


class TestAccess:
    def test_column_access(self, customers):
        assert customers.column("age")[1] == 40.0

    def test_missing_column(self, customers):
        with pytest.raises(SchemaError):
            customers.column("salary")

    def test_contains(self, customers):
        assert "age" in customers
        assert "salary" not in customers

    def test_row_as_dict(self, customers):
        row = customers.row(2)
        assert row["age"] == 31.0
        assert row["country"] == "us"

    def test_row_out_of_range(self, customers):
        with pytest.raises(IndexError):
            customers.row(5)


class TestRelationalOperations:
    def test_project(self, customers):
        projected = customers.project(["age", "income"])
        assert projected.column_names == ["age", "income"]
        assert projected.num_rows == 5

    def test_project_missing_column(self, customers):
        with pytest.raises(SchemaError):
            customers.project(["age", "salary"])

    def test_select_rows(self, customers):
        subset = customers.select_rows([0, 3])
        assert subset.num_rows == 2
        assert subset.column("age")[1] == 58.0

    def test_with_column_adds(self, customers):
        extended = customers.with_column("bonus", np.zeros(5))
        assert "bonus" in extended
        assert "bonus" not in customers

    def test_with_column_replaces(self, customers):
        replaced = customers.with_column("age", np.zeros(5))
        assert replaced.column("age").sum() == 0.0


class TestKeyUtilities:
    def test_key_position_index(self, customers):
        index = customers.key_position_index("customer_id")
        assert index[3] == 3

    def test_key_position_index_duplicates(self):
        table = Table("t", {"k": np.array([1, 1])})
        with pytest.raises(SchemaError):
            table.key_position_index("k")

    def test_group_positions(self, customers):
        groups = customers.group_positions("employer_id")
        assert groups[0] == [0, 4]
        assert groups[1] == [1, 2]

    def test_positions_for_keys_batch_lookup(self):
        table = Table("products", {
            "sku": np.array(["p9", "p2", "p5"]),
            "price": np.array([9.0, 2.0, 5.0]),
        })
        positions = table.positions_for_keys("sku", ["p5", "p9", "p5"])
        np.testing.assert_array_equal(positions, [2, 0, 2])
        assert positions.dtype == np.int64

    def test_positions_for_keys_unknown_key(self, customers):
        with pytest.raises(SchemaError, match="unknown key"):
            customers.positions_for_keys("customer_id", [0, 99])

    def test_positions_for_keys_caches_index(self, customers):
        customers.positions_for_keys("customer_id", [1])
        index = customers._key_indexes["customer_id"]
        customers.positions_for_keys("customer_id", [2])
        assert customers._key_indexes["customer_id"] is index

    def test_positions_for_keys_duplicate_key_column(self):
        table = Table("t", {"k": np.array([1, 1])})
        with pytest.raises(SchemaError):
            table.positions_for_keys("k", [1])


class TestMatrixConversion:
    def test_numeric_matrix_default_columns(self, customers):
        matrix = customers.numeric_matrix(["age", "income"])
        assert matrix.shape == (5, 2)
        assert matrix.dtype == np.float64

    def test_numeric_matrix_infers_numeric_schema_columns(self, customers):
        matrix = customers.numeric_matrix()
        # customer_id, age, income, employer_id are numeric by dtype inference.
        assert matrix.shape[1] == 4

    def test_numeric_matrix_rejects_categorical(self, customers):
        with pytest.raises(SchemaError):
            customers.numeric_matrix(["country"])

    def test_numeric_matrix_empty_selection(self):
        table = Table("t", {"c": np.array(["a", "b"])})
        assert table.numeric_matrix().shape == (2, 0)


class TestSchemaPreservation:
    """Derived tables must keep declared column types and key metadata."""

    @pytest.fixture
    def declared(self) -> Table:
        schema = TableSchema(
            "sales",
            [
                Column("sale_id", ColumnType.KEY),
                Column("store_id", ColumnType.KEY),
                Column("channel", ColumnType.CATEGORICAL),  # numeric codes!
                Column("amount", ColumnType.NUMERIC),
            ],
            primary_key="sale_id",
            foreign_keys=[ForeignKey("store_id", "stores", "store_id")],
        )
        return Table("sales", {
            "sale_id": np.arange(4),
            "store_id": np.array([0, 1, 1, 0]),
            "channel": np.array([0, 1, 2, 1]),  # integer-coded categories
            "amount": np.array([9.0, 2.0, 5.0, 7.0]),
        }, schema=schema)

    def test_with_column_keeps_declared_types(self, declared):
        extended = declared.with_column("amount", np.zeros(4))
        # The regression: replacing a column used to re-infer the whole
        # schema, silently flipping integer-coded categoricals to NUMERIC.
        assert extended.schema.column("channel").ctype is ColumnType.CATEGORICAL
        assert extended.schema.column("store_id").ctype is ColumnType.KEY
        assert extended.schema.primary_key == "sale_id"
        assert extended.schema.foreign_keys == declared.schema.foreign_keys

    def test_with_column_new_column_appended_as_inferred(self, declared):
        extended = declared.with_column("note", np.array(["a", "b", "c", "d"]))
        assert extended.schema.column("note").ctype is ColumnType.CATEGORICAL
        assert extended.schema.column("channel").ctype is ColumnType.CATEGORICAL
        assert extended.schema.primary_key == "sale_id"

    def test_project_keeps_types_and_keys(self, declared):
        projected = declared.project(["sale_id", "channel", "store_id"])
        assert projected.schema.column("channel").ctype is ColumnType.CATEGORICAL
        assert projected.schema.primary_key == "sale_id"
        assert projected.schema.foreign_keys == declared.schema.foreign_keys

    def test_project_drops_keys_not_projected(self, declared):
        projected = declared.project(["channel", "amount"])
        assert projected.schema.primary_key is None
        assert projected.schema.foreign_keys == []


class TestVectorizedKeyLookup:
    def test_searchsorted_path_matches_dict_path(self):
        rng = np.random.default_rng(7)
        keys = rng.permutation(1000)
        table = Table("t", {"k": keys})
        queries = rng.choice(keys, size=500)
        fast = table.positions_for_keys("k", queries)
        slow = np.array([table.key_position_index("k")[q] for q in queries])
        np.testing.assert_array_equal(fast, slow)

    def test_float_queries_against_int_keys(self):
        table = Table("t", {"k": np.array([10, 20, 30])})
        positions = table.positions_for_keys("k", np.array([30.0, 10.0]))
        np.testing.assert_array_equal(positions, [2, 0])

    def test_unknown_key_error_names_value_and_carries_key(self):
        table = Table("t", {"k": np.array([10, 20, 30])})
        with pytest.raises(SchemaError, match="unknown key 99") as excinfo:
            table.positions_for_keys("k", [10, 99])
        assert excinfo.value.key == 99

    def test_object_dtype_unknown_key_carries_key(self):
        table = Table("t", {"k": np.array(["a", "b"])})
        with pytest.raises(SchemaError, match="unknown key 'z'") as excinfo:
            table.positions_for_keys("k", ["a", "z"])
        assert excinfo.value.key == "z"

    def test_nan_query_is_unknown_not_matched(self):
        # NaN compares unequal to everything; the searchsorted fast path must
        # report it as unknown instead of silently matching a neighbour.
        table = Table("t", {"k": np.array([1.0, 2.0, 3.0])})
        with pytest.raises(SchemaError, match="unknown key"):
            table.positions_for_keys("k", np.array([2.0, np.nan]))

    def test_empty_query_batch(self):
        table = Table("t", {"k": np.array([1, 2, 3])})
        positions = table.positions_for_keys("k", np.array([], dtype=np.int64))
        assert positions.shape == (0,)
        assert positions.dtype == np.int64
