"""Unit tests for :class:`repro.la.chain.ChainedIndicator`.

Every structural operation (products, transposes, aggregation, slicing) is
checked against the collapsed CSR product -- the chain must be
indistinguishable from the matrix it represents.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.la.chain import ChainedIndicator
from repro.la.ops import indicator_from_labels


def _hops():
    """entity(8) -> K1(4) -> K2(2): a surjective two-hop chain."""
    k1 = indicator_from_labels([0, 1, 2, 3, 3, 2, 1, 0], num_columns=4)
    k2 = indicator_from_labels([0, 1, 0, 1], num_columns=2)
    return k1, k2


def _chain():
    return ChainedIndicator(list(_hops()))


def _reference():
    k1, k2 = _hops()
    return (k1 @ k2).toarray()


# -- construction --------------------------------------------------------------


def test_empty_hops_rejected():
    with pytest.raises(ShapeError, match="at least one hop"):
        ChainedIndicator([])


def test_dense_hop_rejected():
    with pytest.raises(ShapeError, match="must be sparse"):
        ChainedIndicator([np.eye(3)])


def test_inner_dimension_mismatch_rejected():
    k1 = indicator_from_labels([0, 1, 2], num_columns=3)
    k2 = indicator_from_labels([0, 1], num_columns=2)  # 2 rows != 3 columns
    with pytest.raises(ShapeError, match="hop 0 has 3 columns but hop 1 has 2 rows"):
        ChainedIndicator([k1, k2])


def test_nested_chain_flattens():
    k1, k2 = _hops()
    inner = ChainedIndicator([k2])
    chain = ChainedIndicator([k1, inner])
    assert chain.num_hops == 2
    np.testing.assert_array_equal(chain.toarray(), _reference())


def test_nested_transposed_chain_rejected():
    k1, k2 = _hops()
    with pytest.raises(ShapeError, match="transposed chain"):
        ChainedIndicator([k1, ChainedIndicator([k2]).T])


# -- shape, transpose, materialization -----------------------------------------


def test_shape_and_metadata():
    chain = _chain()
    assert chain.shape == (8, 2)
    assert chain.ndim == 2
    assert chain.T.shape == (2, 8)
    assert chain.T.T.shape == (8, 2)
    assert chain.nnz == 8  # one 1 per entity row, like any PK-FK indicator


def test_collapse_is_cached_and_correct():
    chain = _chain()
    first = chain.collapse()
    assert chain.collapse() is first
    np.testing.assert_array_equal(first.toarray(), _reference())
    # The transposed view shares the cached product.
    assert chain.T._collapsed is first


def test_tocsr_and_toarray_respect_transpose():
    chain = _chain()
    np.testing.assert_array_equal(chain.toarray(), _reference())
    np.testing.assert_array_equal(chain.T.toarray(), _reference().T)
    assert sp.issparse(chain.T.tocsr())


def test_copy_and_astype():
    chain = _chain()
    dup = chain.copy()
    assert dup is not chain
    assert dup.hops[0] is not chain.hops[0]
    np.testing.assert_array_equal(dup.toarray(), chain.toarray())
    as_f32 = chain.astype(np.float32)
    assert as_f32.dtype == np.float32
    np.testing.assert_array_equal(as_f32.toarray(), _reference().astype(np.float32))


# -- products ------------------------------------------------------------------


def test_matmul_matches_collapsed():
    rng = np.random.default_rng(0)
    chain = _chain()
    x = rng.standard_normal((2, 3))
    np.testing.assert_allclose(chain @ x, _reference() @ x, atol=1e-12)


def test_matmul_one_dimensional_operand():
    chain = _chain()
    v = np.arange(2.0)
    out = chain @ v
    assert out.shape == (8, 1)
    np.testing.assert_allclose(out[:, 0], _reference() @ v, atol=1e-12)


def test_rmatmul_matches_collapsed():
    rng = np.random.default_rng(1)
    chain = _chain()
    y = rng.standard_normal((5, 8))
    np.testing.assert_allclose(y @ chain, y @ _reference(), atol=1e-12)
    w = np.arange(8.0)
    out = w @ chain
    assert out.shape == (1, 2)
    np.testing.assert_allclose(out[0], w @ _reference(), atol=1e-12)


def test_transposed_products():
    rng = np.random.default_rng(2)
    chain = _chain()
    x = rng.standard_normal((8, 3))
    np.testing.assert_allclose(chain.T @ x, _reference().T @ x, atol=1e-12)
    y = rng.standard_normal((4, 2))
    np.testing.assert_allclose(y @ chain.T, y @ _reference().T, atol=1e-12)


def test_sparse_operands_stay_sparse():
    chain = _chain()
    x = sp.random(2, 4, density=0.5, format="csr", random_state=3)
    out = chain @ x
    assert sp.issparse(out)
    np.testing.assert_allclose(out.toarray(), _reference() @ x.toarray(), atol=1e-12)


def test_matmul_shape_mismatch():
    chain = _chain()
    with pytest.raises(ShapeError, match="inner dimensions"):
        chain @ np.ones((3, 3))
    with pytest.raises(ShapeError, match="inner dimensions"):
        np.ones((3, 3)) @ chain


def test_chain_matmul_chain():
    k1, k2 = _hops()
    left = ChainedIndicator([k1])
    right = ChainedIndicator([k2])
    np.testing.assert_array_equal(np.asarray((left @ right).todense()), _reference())


# -- aggregation ---------------------------------------------------------------


def test_sum_matches_scipy_semantics():
    chain = _chain()
    ref = sp.csr_matrix(_reference())
    assert chain.sum() == ref.sum()
    np.testing.assert_array_equal(np.asarray(chain.sum(axis=0)), np.asarray(ref.sum(axis=0)))
    np.testing.assert_array_equal(np.asarray(chain.sum(axis=1)), np.asarray(ref.sum(axis=1)))
    np.testing.assert_array_equal(np.asarray(chain.T.sum(axis=0)),
                                  np.asarray(ref.T.sum(axis=0)))


# -- slicing -------------------------------------------------------------------


def test_row_slice_stays_factorized_and_shares_tail():
    chain = _chain()
    sliced = chain[2:6, :]
    assert isinstance(sliced, ChainedIndicator)
    assert sliced.hops[1] is chain.hops[1]  # tail hop shared by reference
    np.testing.assert_array_equal(sliced.toarray(), _reference()[2:6, :])


def test_column_slice_stays_factorized_and_shares_head():
    chain = _chain()
    sliced = chain[:, [1]]
    assert isinstance(sliced, ChainedIndicator)
    assert sliced.hops[0] is chain.hops[0]  # head hop shared by reference
    np.testing.assert_array_equal(sliced.toarray(), _reference()[:, [1]])


def test_full_slice_returns_equivalent_chain():
    chain = _chain()
    sliced = chain[:, :]
    assert isinstance(sliced, ChainedIndicator)
    np.testing.assert_array_equal(sliced.toarray(), _reference())


def test_row_and_column_slice_falls_back_to_collapsed():
    chain = _chain()
    out = chain[1:4, 0:1]
    assert sp.issparse(out)
    np.testing.assert_array_equal(out.toarray(), _reference()[1:4, 0:1])


def test_transposed_slicing():
    chain = _chain().T
    sliced = chain[:, 2:6]  # columns of the transpose = rows of the product
    assert isinstance(sliced, ChainedIndicator)
    np.testing.assert_array_equal(sliced.toarray(), _reference().T[:, 2:6])


def test_non_2d_indexing_rejected():
    with pytest.raises(TypeError, match="2-D indexing"):
        _chain()[0]
