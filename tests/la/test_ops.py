"""Tests for the uniform LA primitives in :mod:`repro.la.ops`."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.la import ops


def _dense(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((rows, cols))


class TestAggregations:
    def test_rowsums_dense(self):
        x = _dense(5, 3)
        assert np.allclose(ops.rowsums(x).ravel(), x.sum(axis=1))

    def test_rowsums_sparse(self):
        x = sp.random(6, 4, density=0.5, random_state=1, format="csr")
        assert np.allclose(ops.rowsums(x).ravel(), np.asarray(x.sum(axis=1)).ravel())

    def test_rowsums_shape_is_column(self):
        assert ops.rowsums(_dense(4, 2)).shape == (4, 1)

    def test_colsums_dense(self):
        x = _dense(5, 3)
        assert np.allclose(ops.colsums(x).ravel(), x.sum(axis=0))

    def test_colsums_sparse(self):
        x = sp.random(6, 4, density=0.5, random_state=2, format="csc")
        assert np.allclose(ops.colsums(x).ravel(), np.asarray(x.sum(axis=0)).ravel())

    def test_colsums_shape_is_row(self):
        assert ops.colsums(_dense(4, 2)).shape == (1, 2)

    def test_total_sum_matches_numpy(self):
        x = _dense(7, 2)
        assert np.isclose(ops.total_sum(x), x.sum())

    def test_total_sum_sparse(self):
        x = sp.random(5, 5, density=0.4, random_state=3)
        assert np.isclose(ops.total_sum(x), x.sum())

    def test_row_min(self):
        x = np.array([[3.0, 1.0], [0.0, -2.0]])
        assert np.array_equal(ops.row_min(x).ravel(), [1.0, -2.0])

    def test_nnz_dense(self):
        assert ops.nnz(np.array([[0.0, 1.0], [2.0, 0.0]])) == 2

    def test_nnz_sparse(self):
        assert ops.nnz(sp.eye(4, format="csr")) == 4


class TestProducts:
    def test_matmul_dense_dense(self):
        a, b = _dense(3, 4), _dense(4, 2, seed=1)
        assert np.allclose(ops.matmul(a, b), a @ b)

    def test_matmul_sparse_dense_returns_dense(self):
        a = sp.random(3, 4, density=0.5, random_state=1, format="csr")
        b = _dense(4, 2, seed=2)
        out = ops.matmul(a, b)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, a.toarray() @ b)

    def test_matmul_dense_sparse_returns_dense(self):
        a = _dense(3, 4, seed=3)
        b = sp.random(4, 2, density=0.5, random_state=4, format="csr")
        out = ops.matmul(a, b)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, a @ b.toarray())

    def test_matmul_sparse_sparse_stays_sparse(self):
        a = sp.eye(3, format="csr")
        b = sp.eye(3, format="csr")
        assert sp.issparse(ops.matmul(a, b))

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ops.matmul(_dense(3, 4), _dense(3, 4))

    def test_crossprod_dense(self):
        x = _dense(6, 3)
        assert np.allclose(ops.crossprod(x), x.T @ x)

    def test_crossprod_sparse_is_dense_array(self):
        x = sp.random(8, 3, density=0.6, random_state=5, format="csr")
        out = ops.crossprod(x)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, x.toarray().T @ x.toarray())

    def test_transpose(self):
        x = _dense(3, 5)
        assert np.array_equal(ops.transpose(x), x.T)

    def test_ginv_pseudo_inverse_property(self):
        x = _dense(8, 3)
        g = ops.ginv(x)
        assert np.allclose(x @ g @ x, x, atol=1e-8)

    def test_ginv_sparse_input(self):
        x = sp.random(6, 3, density=0.8, random_state=6, format="csr")
        g = ops.ginv(x)
        dense = x.toarray()
        assert np.allclose(dense @ g @ dense, dense, atol=1e-8)

    def test_solve_regularized_exact(self):
        gram = np.array([[2.0, 0.0], [0.0, 4.0]])
        rhs = np.array([[2.0], [8.0]])
        assert np.allclose(ops.solve_regularized(gram, rhs), [[1.0], [2.0]])

    def test_solve_regularized_singular_falls_back(self):
        gram = np.zeros((2, 2))
        rhs = np.array([[1.0], [1.0]])
        out = ops.solve_regularized(gram, rhs)
        assert out.shape == (2, 1)
        assert np.all(np.isfinite(out))


class TestStructuralHelpers:
    def test_sparse_diag(self):
        d = ops.sparse_diag(np.array([1.0, 2.0, 3.0]))
        assert sp.issparse(d)
        assert np.allclose(d.toarray(), np.diag([1.0, 2.0, 3.0]))

    def test_diag_scale_rows_dense(self):
        x = _dense(3, 2)
        values = np.array([1.0, 2.0, 3.0])
        assert np.allclose(ops.diag_scale_rows(values, x), np.diag(values) @ x)

    def test_diag_scale_rows_sparse(self):
        x = sp.random(3, 4, density=0.9, random_state=7, format="csr")
        values = np.array([2.0, 0.5, 1.0])
        out = ops.diag_scale_rows(values, x)
        assert np.allclose(np.asarray(out.todense()), np.diag(values) @ x.toarray())

    def test_diag_scale_rows_mismatch(self):
        with pytest.raises(ShapeError):
            ops.diag_scale_rows(np.ones(2), _dense(3, 3))

    def test_hstack_dense(self):
        a, b = np.ones((2, 1)), np.zeros((2, 2))
        assert ops.hstack([a, b]).shape == (2, 3)

    def test_hstack_all_sparse_stays_sparse(self):
        out = ops.hstack([sp.eye(2, format="csr"), sp.eye(2, format="csr")])
        assert sp.issparse(out)

    def test_hstack_mixed_densifies(self):
        out = ops.hstack([sp.eye(2, format="csr"), np.ones((2, 1))])
        assert isinstance(out, np.ndarray)

    def test_hstack_empty_raises(self):
        with pytest.raises(ShapeError):
            ops.hstack([])

    def test_vstack_dense(self):
        assert ops.vstack([np.ones((1, 3)), np.zeros((2, 3))]).shape == (3, 3)

    def test_vstack_all_sparse(self):
        out = ops.vstack([sp.eye(2, format="csr"), sp.eye(2, format="csr")])
        assert sp.issparse(out)
        assert out.shape == (4, 2)

    def test_block_2x2(self):
        out = ops.block_2x2(np.ones((1, 1)), np.zeros((1, 2)),
                            np.zeros((2, 1)), np.eye(2))
        assert out.shape == (3, 3)
        assert out[0, 0] == 1.0

    def test_block_grid(self):
        grid = [[np.ones((1, 1)), np.zeros((1, 1))], [np.zeros((1, 1)), np.ones((1, 1))]]
        assert np.allclose(ops.block_grid(grid), np.eye(2))


class TestIndicatorFromLabels:
    def test_basic_construction(self):
        k = ops.indicator_from_labels(np.array([0, 2, 1, 0]))
        assert k.shape == (4, 3)
        assert np.allclose(k.toarray(), [[1, 0, 0], [0, 0, 1], [0, 1, 0], [1, 0, 0]])

    def test_one_nonzero_per_row(self):
        k = ops.indicator_from_labels(np.array([1, 1, 1, 0]))
        assert np.all(np.diff(k.indptr) == 1)

    def test_num_columns_padding(self):
        k = ops.indicator_from_labels(np.array([0, 1]), num_columns=5)
        assert k.shape == (2, 5)

    def test_num_columns_too_small(self):
        with pytest.raises(ShapeError):
            ops.indicator_from_labels(np.array([0, 4]), num_columns=3)

    def test_negative_labels_rejected(self):
        with pytest.raises(ShapeError):
            ops.indicator_from_labels(np.array([0, -1]))

    def test_expansion_recovers_rows(self):
        labels = np.array([2, 0, 1, 2, 2])
        values = np.array([[10.0], [20.0], [30.0]])
        k = ops.indicator_from_labels(labels)
        assert np.allclose(np.asarray((k @ values)), values[labels])


class TestScalarOps:
    @pytest.mark.parametrize("op,expected", [
        ("+", lambda x: x + 2.0),
        ("-", lambda x: x - 2.0),
        ("*", lambda x: x * 2.0),
        ("/", lambda x: x / 2.0),
        ("**", lambda x: x ** 2.0),
    ])
    def test_forward_ops_dense(self, op, expected):
        x = _dense(4, 3, seed=11)
        assert np.allclose(ops.scalar_op(x, op, 2.0), expected(x))

    @pytest.mark.parametrize("op,expected", [
        ("-", lambda x: 2.0 - x),
        ("/", lambda x: 2.0 / x),
    ])
    def test_reverse_ops_dense(self, op, expected):
        x = np.abs(_dense(4, 3, seed=12)) + 1.0
        assert np.allclose(ops.scalar_op(x, op, 2.0, reverse=True), expected(x))

    def test_sparse_multiplication_stays_sparse(self):
        x = sp.random(5, 5, density=0.4, random_state=8, format="csr")
        out = ops.scalar_op(x, "*", 3.0)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), 3.0 * x.toarray())

    def test_sparse_power_stays_sparse(self):
        x = sp.random(5, 5, density=0.4, random_state=9, format="csr")
        out = ops.scalar_op(x, "**", 2.0)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), x.toarray() ** 2)

    def test_sparse_addition_densifies(self):
        x = sp.random(5, 5, density=0.4, random_state=10, format="csr")
        out = ops.scalar_op(x, "+", 1.0)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, x.toarray() + 1.0)

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            ops.scalar_op(np.ones((2, 2)), "%", 2.0)


class TestElementwise:
    def test_dense_function(self):
        x = _dense(3, 3, seed=13)
        assert np.allclose(ops.elementwise(x, np.exp), np.exp(x))

    def test_sparse_zero_preserving_function(self):
        x = sp.random(6, 6, density=0.3, random_state=11, format="csr")
        out = ops.elementwise(x, np.square)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), x.toarray() ** 2)

    def test_sparse_non_zero_preserving_densifies(self):
        x = sp.random(6, 6, density=0.3, random_state=12, format="csr")
        out = ops.elementwise(x, np.exp)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, np.exp(x.toarray()))

    def test_allclose_true(self):
        x = _dense(3, 3, seed=14)
        assert ops.allclose(x, sp.csr_matrix(x))

    def test_allclose_shape_mismatch(self):
        assert not ops.allclose(np.ones((2, 2)), np.ones((3, 2)))

    def test_allclose_value_mismatch(self):
        assert not ops.allclose(np.ones((2, 2)), np.zeros((2, 2)))


class TestOpsProperties:
    @given(arrays(np.float64, (4, 3), elements=st.floats(-10, 10)))
    @settings(max_examples=25, deadline=None)
    def test_rowsums_colsums_consistent_with_total(self, x):
        assert np.isclose(ops.rowsums(x).sum(), ops.total_sum(x))
        assert np.isclose(ops.colsums(x).sum(), ops.total_sum(x))

    @given(arrays(np.float64, (5, 2), elements=st.floats(-5, 5)))
    @settings(max_examples=25, deadline=None)
    def test_crossprod_is_symmetric_psd(self, x):
        gram = ops.crossprod(x)
        assert np.allclose(gram, gram.T)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert np.all(eigenvalues >= -1e-8)
