"""Tests for the backend abstraction in :mod:`repro.la.backend`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import NotSupportedError
from repro.la.backend import ChunkedBackend, DenseBackend, SparseBackend, get_backend
from repro.la.chunked import ChunkedMatrix


class TestDenseBackend:
    def test_from_dense_returns_float64(self):
        out = DenseBackend().from_dense(np.arange(6).reshape(2, 3))
        assert out.dtype == np.float64

    def test_from_sparse_densifies(self):
        out = DenseBackend().from_sparse(sp.eye(3, format="csr"))
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, np.eye(3))

    def test_zeros(self):
        assert DenseBackend().zeros((2, 4)).shape == (2, 4)

    def test_describe_mentions_name(self):
        assert "dense" in DenseBackend().describe()


class TestSparseBackend:
    def test_from_dense_returns_csr(self):
        out = SparseBackend().from_dense(np.eye(3))
        assert sp.issparse(out)
        assert out.format == "csr"

    def test_from_sparse_converts_format(self):
        out = SparseBackend().from_sparse(sp.eye(3, format="coo"))
        assert out.format == "csr"

    def test_roundtrip_values(self):
        x = np.array([[0.0, 1.5], [2.0, 0.0]])
        assert np.allclose(SparseBackend().from_dense(x).toarray(), x)


class TestChunkedBackend:
    def test_from_dense_returns_chunked(self):
        backend = ChunkedBackend(chunk_rows=4)
        out = backend.from_dense(np.ones((10, 2)))
        assert isinstance(out, ChunkedMatrix)
        assert out.num_chunks == 3

    def test_from_sparse_returns_chunked(self):
        backend = ChunkedBackend(chunk_rows=5)
        out = backend.from_sparse(sp.eye(12, format="csr"))
        assert isinstance(out, ChunkedMatrix)
        assert out.shape == (12, 12)

    def test_invalid_chunk_rows(self):
        with pytest.raises(ValueError):
            ChunkedBackend(chunk_rows=0)

    def test_describe_mentions_chunk_rows(self):
        assert "chunk_rows=7" in ChunkedBackend(chunk_rows=7).describe()


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("dense", DenseBackend), ("sparse", SparseBackend), ("chunked", ChunkedBackend),
    ])
    def test_get_backend_by_name(self, name, cls):
        assert isinstance(get_backend(name), cls)

    def test_get_backend_case_insensitive(self):
        assert isinstance(get_backend("DENSE"), DenseBackend)

    def test_get_backend_chunk_rows_passthrough(self):
        backend = get_backend("chunked", chunk_rows=128)
        assert backend.chunk_rows == 128

    def test_get_backend_unknown(self):
        with pytest.raises(NotSupportedError):
            get_backend("gpu")
