"""Tests for the generic dispatch layer in :mod:`repro.la.generic`."""

import numpy as np
import scipy.sparse as sp

from repro.la import generic
from repro.la.chunked import ChunkedMatrix


class TestDispatchOnPlainMatrices:
    def setup_method(self):
        self.x = np.random.default_rng(5).standard_normal((11, 4))

    def test_rowsums(self):
        assert np.allclose(generic.rowsums(self.x).ravel(), self.x.sum(axis=1))

    def test_colsums(self):
        assert np.allclose(generic.colsums(self.x).ravel(), self.x.sum(axis=0))

    def test_total_sum(self):
        assert np.isclose(generic.total_sum(self.x), self.x.sum())

    def test_crossprod(self):
        assert np.allclose(generic.crossprod(self.x), self.x.T @ self.x)

    def test_ginv(self):
        g = generic.ginv(self.x)
        assert np.allclose(self.x @ g @ self.x, self.x, atol=1e-8)

    def test_elementwise(self):
        assert np.allclose(generic.elementwise(self.x, np.exp), np.exp(self.x))

    def test_square(self):
        assert np.allclose(generic.square(self.x), self.x ** 2)

    def test_matmul(self):
        y = np.ones((4, 2))
        assert np.allclose(generic.matmul(self.x, y), self.x @ y)

    def test_row_min(self):
        assert np.allclose(generic.row_min(self.x).ravel(), self.x.min(axis=1))

    def test_num_rows_cols(self):
        assert generic.num_rows(self.x) == 11
        assert generic.num_cols(self.x) == 4

    def test_to_dense_result_sparse(self):
        s = sp.eye(3, format="csr")
        assert isinstance(generic.to_dense_result(s), np.ndarray)


class TestDispatchOnNormalizedMatrix:
    def test_rowsums_uses_factorized_method(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(generic.rowsums(normalized).ravel(), materialized.sum(axis=1))

    def test_colsums_uses_factorized_method(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(generic.colsums(normalized).ravel(), materialized.sum(axis=0))

    def test_crossprod_uses_factorized_method(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(generic.crossprod(normalized), materialized.T @ materialized)

    def test_total_sum(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.isclose(generic.total_sum(normalized), materialized.sum())

    def test_elementwise_returns_normalized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        out = generic.elementwise(normalized, np.abs)
        assert hasattr(out, "materialize")
        assert np.allclose(out.to_dense(), np.abs(materialized))

    def test_to_dense_result(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        assert np.allclose(generic.to_dense_result(normalized), materialized)


class TestDispatchOnChunkedMatrix:
    def setup_method(self):
        self.dense = np.random.default_rng(6).standard_normal((17, 3))
        self.chunked = ChunkedMatrix.from_matrix(self.dense, 5)

    def test_rowsums(self):
        assert np.allclose(generic.rowsums(self.chunked).ravel(), self.dense.sum(axis=1))

    def test_colsums(self):
        assert np.allclose(generic.colsums(self.chunked).ravel(), self.dense.sum(axis=0))

    def test_crossprod(self):
        assert np.allclose(generic.crossprod(self.chunked), self.dense.T @ self.dense)

    def test_elementwise(self):
        out = generic.elementwise(self.chunked, np.exp)
        assert np.allclose(out.to_dense(), np.exp(self.dense))

    def test_total_sum(self):
        assert np.isclose(generic.total_sum(self.chunked), self.dense.sum())
