"""Tests for the ORE-style chunked matrix in :mod:`repro.la.chunked`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.la.chunked import ChunkedMatrix, row_apply


@pytest.fixture
def dense_matrix():
    return np.random.default_rng(42).standard_normal((23, 5))


@pytest.fixture
def chunked(dense_matrix):
    return ChunkedMatrix.from_matrix(dense_matrix, chunk_rows=6)


class TestConstruction:
    def test_from_matrix_chunk_count(self, chunked):
        assert chunked.num_chunks == 4

    def test_from_matrix_shape(self, chunked, dense_matrix):
        assert chunked.shape == dense_matrix.shape

    def test_from_matrix_roundtrip(self, chunked, dense_matrix):
        assert np.allclose(chunked.to_dense(), dense_matrix)

    def test_uneven_last_chunk(self, chunked):
        assert chunked.chunks[-1].shape[0] == 23 - 3 * 6

    def test_sparse_chunks(self):
        x = sp.random(20, 4, density=0.3, random_state=1, format="csr")
        chunked = ChunkedMatrix.from_matrix(x, 7)
        assert sp.issparse(chunked.to_matrix())
        assert np.allclose(chunked.to_dense(), x.toarray())

    def test_empty_chunk_list_rejected(self):
        with pytest.raises(ShapeError):
            ChunkedMatrix([])

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(ShapeError):
            ChunkedMatrix([np.ones((2, 3)), np.ones((2, 4))])

    def test_invalid_chunk_rows(self, dense_matrix):
        with pytest.raises(ValueError):
            ChunkedMatrix.from_matrix(dense_matrix, 0)

    def test_iteration_yields_chunks(self, chunked):
        assert sum(c.shape[0] for c in chunked) == 23


class TestAggregations:
    def test_rowsums(self, chunked, dense_matrix):
        assert np.allclose(chunked.rowsums().ravel(), dense_matrix.sum(axis=1))

    def test_colsums(self, chunked, dense_matrix):
        assert np.allclose(chunked.colsums().ravel(), dense_matrix.sum(axis=0))

    def test_total_sum(self, chunked, dense_matrix):
        assert np.isclose(chunked.total_sum(), dense_matrix.sum())


class TestProducts:
    def test_matmul_matches_dense(self, chunked, dense_matrix):
        x = np.random.default_rng(1).standard_normal((5, 3))
        assert np.allclose((chunked @ x).to_dense(), dense_matrix @ x)

    def test_matmul_result_stays_chunked(self, chunked):
        out = chunked @ np.ones((5, 2))
        assert isinstance(out, ChunkedMatrix)

    def test_matmul_shape_mismatch(self, chunked):
        with pytest.raises(ShapeError):
            chunked.matmul(np.ones((4, 2)))

    def test_rmatmul_matches_dense(self, chunked, dense_matrix):
        x = np.random.default_rng(2).standard_normal((3, 23))
        assert np.allclose(x @ chunked, x @ dense_matrix)

    def test_rmatmul_shape_mismatch(self, chunked):
        with pytest.raises(ShapeError):
            chunked.rmatmul(np.ones((2, 10)))

    def test_crossprod(self, chunked, dense_matrix):
        assert np.allclose(chunked.crossprod(), dense_matrix.T @ dense_matrix)

    def test_transpose_matmul(self, chunked, dense_matrix):
        other = np.random.default_rng(3).standard_normal((23, 4))
        assert np.allclose(chunked.transpose_matmul(other), dense_matrix.T @ other)

    def test_transpose_matmul_shape_mismatch(self, chunked):
        with pytest.raises(ShapeError):
            chunked.transpose_matmul(np.ones((10, 2)))


class TestElementwise:
    def test_scalar_multiplication(self, chunked, dense_matrix):
        assert np.allclose((chunked * 2.5).to_dense(), dense_matrix * 2.5)

    def test_right_scalar_multiplication(self, chunked, dense_matrix):
        assert np.allclose((3 * chunked).to_dense(), 3 * dense_matrix)

    def test_scalar_addition(self, chunked, dense_matrix):
        assert np.allclose((chunked + 1.0).to_dense(), dense_matrix + 1.0)

    def test_scalar_subtraction(self, chunked, dense_matrix):
        assert np.allclose((chunked - 1.0).to_dense(), dense_matrix - 1.0)

    def test_reverse_subtraction(self, chunked, dense_matrix):
        assert np.allclose((1.0 - chunked).to_dense(), 1.0 - dense_matrix)

    def test_division(self, chunked, dense_matrix):
        assert np.allclose((chunked / 4.0).to_dense(), dense_matrix / 4.0)

    def test_power(self, chunked, dense_matrix):
        assert np.allclose((chunked ** 2).to_dense(), dense_matrix ** 2)

    def test_elementwise_function(self, chunked, dense_matrix):
        assert np.allclose(chunked.elementwise(np.exp).to_dense(), np.exp(dense_matrix))


class TestRowApply:
    def test_row_apply_visits_every_chunk(self, chunked):
        sizes = row_apply(chunked, lambda c: c.shape[0])
        assert sizes == [6, 6, 6, 5]

    def test_row_apply_results_concatenate(self, chunked, dense_matrix):
        pieces = row_apply(chunked, lambda c: np.asarray(c).sum(axis=1, keepdims=True))
        assert np.allclose(np.vstack(pieces).ravel(), dense_matrix.sum(axis=1))
