"""Equivalence and registry tests for the fused kernel layer.

The fused kernels (:mod:`repro.la.kernels`) are the execution layer behind
every factorized rewrite, so their contract is strict:

* every implementation set (``reference`` primitive chains, vectorized
  ``numpy``, compiled ``numba`` when installed) computes the same values on
  star, M:N and snowflake schemas, dense and sparse bases, float32 and
  float64, empty attribute tables and zero-row batches;
* the golden operator traces are byte-identical whichever set is active --
  tracing always routes through the reference primitive chains;
* operand dtypes survive the rewrite layer (the float32 round-trip pin);
* ``indicator_codes`` is memoized per indicator object and invalidated when
  the indicator dies.
"""

from __future__ import annotations

import gc
import json
import pathlib

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.indicator import indicator_codes, reset_codes_cache
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la import kernels
from repro.la.chain import ChainedIndicator
from repro.la.ops import indicator_from_labels

ATOL = 1e-10

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "goldens"


def _labels(rng, n_rows: int, n_ref: int) -> np.ndarray:
    """Surjective foreign-key labels (every attribute row referenced once)."""
    labels = np.concatenate([np.arange(n_ref), rng.integers(0, n_ref, size=n_rows - n_ref)])
    rng.shuffle(labels)
    return labels


def _star(seed: int, dtype=np.float64, sparse_bases: bool = False,
          n_s: int = 23, d_r: int = 4) -> NormalizedMatrix:
    rng = np.random.default_rng(seed)
    entity = rng.standard_normal((n_s, 3)).astype(dtype)
    if sparse_bases:
        entity = sp.csr_matrix(entity).astype(dtype)
    indicators, attributes = [], []
    for n_r in (7, 5):
        attribute = rng.standard_normal((n_r, d_r)).astype(dtype)
        if sparse_bases:
            attribute = sp.csr_matrix(attribute).astype(dtype)
        indicators.append(indicator_from_labels(_labels(rng, n_s, n_r), num_columns=n_r))
        attributes.append(attribute)
    return NormalizedMatrix(entity, indicators, attributes)


def _mn(seed: int, dtype=np.float64) -> MNNormalizedMatrix:
    rng = np.random.default_rng(seed)
    n_out = 19
    indicators, attributes = [], []
    for n_r, width in ((6, 3), (4, 2)):
        attributes.append(rng.standard_normal((n_r, width)).astype(dtype))
        indicators.append(indicator_from_labels(_labels(rng, n_out, n_r), num_columns=n_r))
    return MNNormalizedMatrix(indicators, attributes)


def _snowflake(seed: int) -> NormalizedMatrix:
    rng = np.random.default_rng(seed)
    n_s = 21
    entity = rng.standard_normal((n_s, 2))
    hops = []
    rows = n_s
    for n_next in (8, 3):
        hops.append(indicator_from_labels(_labels(rng, rows, n_next), num_columns=n_next))
        rows = n_next
    attribute = rng.standard_normal((rows, 3))
    return NormalizedMatrix(entity, [ChainedIndicator(hops)], [attribute])


MATRICES = {
    "star-dense": lambda seed: _star(seed),
    "star-sparse": lambda seed: _star(seed, sparse_bases=True),
    "star-f32": lambda seed: _star(seed, dtype=np.float32),
    "star-empty-attr": lambda seed: _star(seed, d_r=0),
    "mn": lambda seed: _mn(seed),
    "snowflake": lambda seed: _snowflake(seed),
}


# -- set-vs-set operator equivalence ------------------------------------------

@pytest.mark.parametrize("schema", sorted(MATRICES))
@pytest.mark.parametrize("seed", range(5))
def test_fused_sets_agree_on_table1_operators(schema, seed):
    """Every available kernel set produces identical operator results."""
    matrix = MATRICES[schema](seed)
    dense = np.asarray(matrix.to_dense(), dtype=np.float64)
    n, d = dense.shape
    rng = np.random.default_rng(seed + 99)
    x = rng.standard_normal((d, 2))
    w = rng.standard_normal((2, n))
    y = rng.standard_normal((n, 1))

    def snapshot():
        return {
            "lmm": np.asarray(matrix @ x, dtype=np.float64),
            "rmm": np.asarray(w @ matrix, dtype=np.float64),
            "tlmm": np.asarray(matrix.T @ y, dtype=np.float64),
            "crossprod": np.asarray(matrix.crossprod(), dtype=np.float64),
            "rowsums": np.asarray(matrix.rowsums(), dtype=np.float64),
            "colsums": np.asarray(matrix.colsums(), dtype=np.float64),
            "total": np.asarray(matrix.total_sum(), dtype=np.float64),
        }

    with kernels.using("reference"):
        reference = snapshot()
    # Reference chains must match the materialized dense computation.
    assert np.allclose(reference["lmm"], dense @ x, atol=1e-6)
    assert np.allclose(reference["crossprod"], dense.T @ dense, atol=1e-5)
    for name in kernels.available_sets():
        with kernels.using(name):
            result = snapshot()
        for op, expected in reference.items():
            assert np.allclose(result[op], expected, atol=ATOL), (
                f"[seed={seed}] kernel set {name!r} diverged from reference on "
                f"{schema}/{op}: max abs diff "
                f"{np.abs(np.asarray(result[op]) - expected).max():.3e}"
            )


@pytest.mark.parametrize("seed", range(3))
def test_fused_sets_agree_on_zero_row_batches(seed):
    """take_rows with an empty index set works identically in every set."""
    matrix = _star(seed)
    empty = np.array([], dtype=np.int64)
    for name in kernels.available_sets():
        with kernels.using(name):
            batch = matrix.take_rows(empty)
            assert batch.shape[0] == 0
            result = np.asarray(batch @ np.ones((matrix.shape[1], 1)))
            assert result.shape == (0, 1)


@pytest.mark.parametrize("seed", range(3))
def test_take_indicator_rows_matches_fancy_indexing(seed):
    """The fused CSR slice equals the generic CSR fancy-indexing slice."""
    rng = np.random.default_rng(seed)
    indicator = indicator_from_labels(_labels(rng, 31, 9), num_columns=9)
    indices = rng.integers(0, 31, size=12)
    expected = indicator[indices, :].toarray()
    for name in kernels.available_sets():
        with kernels.using(name):
            sliced = kernels.take_indicator_rows(indicator, indices)
        assert np.array_equal(np.asarray(sp.csr_matrix(sliced).toarray()), expected)


@pytest.mark.parametrize("seed", range(3))
def test_sgd_kernels_agree_across_sets(seed):
    """The fused SGD steps match the reference primitive chains bit for bit
    (float64) on both linear and logistic updates."""
    matrix = _star(seed)
    rng = np.random.default_rng(seed + 7)
    y = rng.standard_normal((matrix.shape[0], 1))
    w0 = rng.standard_normal((matrix.shape[1], 1))
    with kernels.using("reference"):
        ref_w, ref_sse = kernels.sgd_step(matrix, y, w0.copy(), 1e-3)
        ref_lw, ref_scores = kernels.logistic_sgd_step(
            matrix, np.sign(y) + (y == 0), w0.copy(), 1e-3, "exact")
    for name in kernels.available_sets():
        with kernels.using(name):
            new_w, sse = kernels.sgd_step(matrix, y, w0.copy(), 1e-3)
            lw, scores = kernels.logistic_sgd_step(
                matrix, np.sign(y) + (y == 0), w0.copy(), 1e-3, "exact")
        assert np.allclose(new_w, ref_w, atol=ATOL)
        assert np.isclose(sse, ref_sse, atol=ATOL)
        assert np.allclose(lw, ref_lw, atol=ATOL)
        assert np.allclose(scores, ref_scores, atol=ATOL)


def test_gather_dot_matches_reference():
    """The serving gather kernel sums base + per-table partial rows."""
    rng = np.random.default_rng(0)
    base = rng.standard_normal((11, 2))
    partials = [rng.standard_normal((5, 2)), rng.standard_normal((3, 2))]
    code_rows = [rng.integers(0, 5, size=11), rng.integers(0, 3, size=11)]
    with kernels.using("reference"):
        expected = kernels.gather_dot(base, partials, code_rows)
    for name in kernels.available_sets():
        with kernels.using(name):
            assert np.allclose(kernels.gather_dot(base, partials, code_rows),
                               expected, atol=ATOL)


# -- golden traces stay byte-identical under the fused sets -------------------

def test_golden_traces_unchanged_with_fused_set_active():
    """Tracing forces the reference chains, so the committed goldens match
    byte for byte even while the fused kernel set is globally active."""
    from repro.core.rewrite.trace import table1_traces

    with kernels.using(kernels.best_available()):
        actual = table1_traces()
    for name, tree in actual.items():
        committed = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert tree == committed, (
            f"golden trace {name!r} changed while the fused kernel set was "
            f"active -- the tracing dispatcher must route to the reference set"
        )


# -- dtype preservation (float32 round trip) ----------------------------------

class TestDtypePreservation:
    def test_float32_lmm_round_trip(self):
        matrix = _star(3, dtype=np.float32)
        x = np.random.default_rng(4).standard_normal((matrix.shape[1], 2)).astype(np.float32)
        result = np.asarray(matrix @ x)
        assert result.dtype == np.float32
        dense = np.asarray(matrix.to_dense(), dtype=np.float32)
        assert np.allclose(result, dense @ x, atol=1e-4)

    def test_float32_rmm_round_trip(self):
        matrix = _star(5, dtype=np.float32)
        w = np.random.default_rng(6).standard_normal((2, matrix.shape[0])).astype(np.float32)
        result = np.asarray(w @ matrix)
        assert result.dtype == np.float32

    def test_float32_crossprod_round_trip(self):
        matrix = _star(7, dtype=np.float32)
        gram = np.asarray(matrix.crossprod())
        assert gram.dtype == np.float32
        dense = np.asarray(matrix.to_dense(), dtype=np.float32)
        assert np.allclose(gram, dense.T @ dense, atol=1e-3)

    def test_float32_mn_round_trip(self):
        matrix = _mn(8, dtype=np.float32)
        x = np.random.default_rng(9).standard_normal((matrix.shape[1], 1)).astype(np.float32)
        assert np.asarray(matrix @ x).dtype == np.float32
        assert np.asarray(matrix.crossprod()).dtype == np.float32

    def test_mixed_dtypes_upcast_to_float64(self):
        matrix = _star(10, dtype=np.float32)
        x64 = np.random.default_rng(11).standard_normal((matrix.shape[1], 1))
        assert np.asarray(matrix @ x64).dtype == np.float64

    def test_result_dtype_rules(self):
        f32 = np.zeros(2, dtype=np.float32)
        f64 = np.zeros(2, dtype=np.float64)
        i64 = np.zeros(2, dtype=np.int64)
        assert kernels.result_dtype(f32, f32) == np.float32
        assert kernels.result_dtype(f32, f64) == np.float64
        assert kernels.result_dtype(i64) == np.float64  # non-float promotes
        assert kernels.result_dtype() == np.float64
        assert kernels.result_dtype(None, f32) == np.float32


# -- registry machinery -------------------------------------------------------

class TestRegistry:
    def test_available_sets(self):
        sets = kernels.available_sets()
        assert "reference" in sets and "numpy" in sets
        assert ("numba" in sets) == kernels.compiled_available()

    def test_best_available_prefers_compiled(self):
        best = kernels.best_available()
        assert best == ("numba" if kernels.compiled_available() else "numpy")

    def test_set_active_returns_previous_and_restores(self):
        previous = kernels.set_active("reference")
        try:
            assert kernels.active() == "reference"
        finally:
            kernels.set_active(previous)

    def test_using_restores_on_exception(self):
        before = kernels.active()
        with pytest.raises(RuntimeError):
            with kernels.using("reference"):
                raise RuntimeError("boom")
        assert kernels.active() == before

    def test_unknown_set_rejected(self):
        with pytest.raises(Exception):
            kernels.set_active("fortran")

    @pytest.mark.skipif(kernels.compiled_available(), reason="numba installed")
    def test_numba_set_unavailable_mentions_extra(self):
        with pytest.raises(RuntimeError, match=r"\[kernels\]"):
            kernels.set_active("numba")

    def test_env_override_selects_set(self, monkeypatch):
        # The env pin is read once, on first resolution -- clear the resolved
        # set (and restore it afterwards) to exercise that path.
        monkeypatch.setenv("REPRO_KERNELS", "reference")
        monkeypatch.setattr(kernels, "_active", None)
        assert kernels.active() == "reference"

    def test_inventory_covers_every_kernel(self):
        inventory = kernels.kernel_inventory()
        assert set(inventory) == set(kernels.KERNEL_NAMES)
        for name, sets in inventory.items():
            assert "reference" in sets, f"{name} lacks a reference implementation"


# -- indicator-code memoization -----------------------------------------------

class TestCodesMemoization:
    def test_codes_cached_per_indicator_object(self):
        rng = np.random.default_rng(0)
        indicator = indicator_from_labels(_labels(rng, 17, 5), num_columns=5)
        first = indicator_codes(indicator)
        second = indicator_codes(indicator)
        assert first is second
        assert not first.flags.writeable

    def test_codes_values_match_argmax(self):
        rng = np.random.default_rng(1)
        labels = _labels(rng, 17, 5)
        indicator = indicator_from_labels(labels, num_columns=5)
        assert np.array_equal(indicator_codes(indicator), labels)

    def test_chain_codes_compose_hops(self):
        rng = np.random.default_rng(2)
        hop1 = indicator_from_labels(_labels(rng, 12, 6), num_columns=6)
        hop2 = indicator_from_labels(_labels(rng, 6, 3), num_columns=3)
        chain = ChainedIndicator([hop1, hop2])
        expected = indicator_codes(hop2)[indicator_codes(hop1)]
        assert np.array_equal(indicator_codes(chain), expected)

    def test_cache_evicts_dead_indicators(self):
        from repro.core import indicator as indicator_module

        reset_codes_cache()
        rng = np.random.default_rng(3)
        k = indicator_from_labels(_labels(rng, 9, 4), num_columns=4)
        indicator_codes(k)
        assert len(indicator_module._CODES_CACHE) == 1
        del k
        gc.collect()
        assert len(indicator_module._CODES_CACHE) == 0

    def test_reset_codes_cache(self):
        from repro.core import indicator as indicator_module

        rng = np.random.default_rng(4)
        k = indicator_from_labels(_labels(rng, 9, 4), num_columns=4)
        indicator_codes(k)
        reset_codes_cache()
        assert len(indicator_module._CODES_CACHE) == 0
        # Still correct after a reset (recomputed and re-cached).
        assert indicator_codes(k).shape == (9,)

    def test_scorer_and_zone_map_share_cached_codes(self):
        """The serving scorer and the zone-map index hit the same cache entry."""
        rng = np.random.default_rng(5)
        indicator = indicator_from_labels(_labels(rng, 13, 4), num_columns=4)
        assert indicator_codes(indicator) is indicator_codes(indicator)
