"""Tests for the matrix type helpers in :mod:`repro.la.types`."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ShapeError
from repro.la.types import (
    check_matmul_shapes,
    check_same_shape,
    ensure_2d,
    is_dense,
    is_matrix_like,
    is_sparse,
    is_vector,
    normalize_row_indices,
    shape_of,
    to_dense,
    to_sparse,
)


class TestPredicates:
    def test_is_sparse_on_csr(self):
        assert is_sparse(sp.csr_matrix((2, 3)))

    def test_is_sparse_on_dense(self):
        assert not is_sparse(np.zeros((2, 3)))

    def test_is_dense_on_array(self):
        assert is_dense(np.ones(4))

    def test_is_dense_on_sparse(self):
        assert not is_dense(sp.eye(3))

    def test_is_matrix_like_accepts_both(self):
        assert is_matrix_like(np.zeros((1, 1)))
        assert is_matrix_like(sp.eye(2))

    def test_is_matrix_like_rejects_lists(self):
        assert not is_matrix_like([[1, 2], [3, 4]])

    def test_is_vector_1d(self):
        assert is_vector(np.arange(5))

    def test_is_vector_column(self):
        assert is_vector(np.arange(5).reshape(-1, 1))

    def test_is_vector_row_sparse(self):
        assert is_vector(sp.csr_matrix(np.ones((1, 4))))

    def test_is_vector_rejects_matrix(self):
        assert not is_vector(np.ones((3, 3)))


class TestEnsure2d:
    def test_promotes_1d_to_column(self):
        out = ensure_2d(np.arange(4))
        assert out.shape == (4, 1)

    def test_passes_2d_through(self):
        x = np.ones((3, 2))
        assert ensure_2d(x) is x

    def test_passes_sparse_through(self):
        x = sp.eye(3, format="csr")
        assert ensure_2d(x) is x

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            ensure_2d(np.zeros((2, 2, 2)))


class TestConversions:
    def test_to_dense_from_sparse(self):
        x = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert np.array_equal(to_dense(x), np.array([[1.0, 0.0], [0.0, 2.0]]))

    def test_to_dense_identity_on_dense(self):
        x = np.ones((2, 2))
        assert np.array_equal(to_dense(x), x)

    def test_to_sparse_from_dense(self):
        x = np.array([[0.0, 1.0], [2.0, 0.0]])
        out = to_sparse(x)
        assert sp.issparse(out)
        assert out.nnz == 2

    def test_to_sparse_respects_format(self):
        out = to_sparse(np.eye(3), fmt="csc")
        assert out.format == "csc"


class TestShapeHelpers:
    def test_shape_of_vector(self):
        assert shape_of(np.arange(5)) == (5, 1)

    def test_shape_of_sparse(self):
        assert shape_of(sp.csr_matrix((4, 7))) == (4, 7)

    def test_check_same_shape_passes(self):
        check_same_shape(np.zeros((2, 2)), sp.eye(2))

    def test_check_same_shape_raises(self):
        with pytest.raises(ShapeError):
            check_same_shape(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_check_matmul_shapes_passes(self):
        check_matmul_shapes((2, 3), (3, 4))

    def test_check_matmul_shapes_raises(self):
        with pytest.raises(ShapeError):
            check_matmul_shapes((2, 3), (4, 4))


class TestNormalizeRowIndices:
    """Row-selection validation shared by every ``take_rows`` implementation.

    Regression: float indices used to be truncated via ``astype(int64)``, so
    ``1.7`` silently selected row 1 instead of raising.
    """

    def test_integer_indices_pass_through(self):
        out = normalize_row_indices(np.array([3, 0, 3], dtype=np.int32), 5)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [3, 0, 3])

    def test_boolean_mask_converted(self):
        mask = np.array([True, False, True, False])
        np.testing.assert_array_equal(normalize_row_indices(mask, 4), [0, 2])

    def test_wrong_length_mask_rejected(self):
        with pytest.raises(ShapeError, match="mask length"):
            normalize_row_indices(np.array([True, False]), 3)

    def test_integral_floats_accepted(self):
        """Integer-valued float arrays (arange(5.0), float-stored keys) work."""
        out = normalize_row_indices(np.array([2.0, 0.0, 4.0]), 5)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, [2, 0, 4])

    def test_fractional_floats_rejected(self):
        with pytest.raises(ShapeError, match="non-integral float"):
            normalize_row_indices(np.array([0.0, 1.7]), 5)

    def test_nan_rejected(self):
        with pytest.raises(ShapeError, match="NaN or infinity"):
            normalize_row_indices(np.array([0.0, np.nan]), 5)

    def test_infinity_rejected(self):
        with pytest.raises(ShapeError, match="NaN or infinity"):
            normalize_row_indices(np.array([np.inf]), 5)

    def test_non_numeric_dtype_rejected(self):
        with pytest.raises(ShapeError, match="dtype"):
            normalize_row_indices(np.array(["0", "1"]), 5)
        with pytest.raises(ShapeError, match="dtype"):
            normalize_row_indices(np.array([1 + 0j]), 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError, match="out of range"):
            normalize_row_indices(np.array([0, 5]), 5)
        with pytest.raises(ShapeError, match="out of range"):
            normalize_row_indices(np.array([-1]), 5)

    def test_empty_float_selection(self):
        assert normalize_row_indices(np.array([], dtype=np.float64), 5).size == 0

    def test_star_take_rows_index_matrix(self, single_join_dense):
        """Integral floats select identically to ints; fractional ones raise."""
        _, normalized, materialized = single_join_dense
        dense = np.asarray(materialized)
        indices = np.array([7, 0, 3])
        expected = dense[indices, :]
        np.testing.assert_allclose(
            normalized.take_rows(indices).to_dense(), expected)
        np.testing.assert_allclose(
            normalized.take_rows(indices.astype(np.float64)).to_dense(), expected)
        with pytest.raises(ShapeError, match="non-integral float"):
            normalized.take_rows(np.array([0.5, 1.0]))

    def test_mn_take_rows_index_matrix(self, mn_dataset):
        """The M:N path rejects and accepts exactly like the star path."""
        _, normalized, materialized = mn_dataset
        dense = np.asarray(materialized)
        indices = np.array([2, 2, 0])
        expected = dense[indices, :]
        np.testing.assert_allclose(
            normalized.take_rows(indices).to_dense(), expected)
        np.testing.assert_allclose(
            normalized.take_rows(indices.astype(np.float64)).to_dense(), expected)
        with pytest.raises(ShapeError, match="non-integral float"):
            normalized.take_rows(np.array([1.5]))
        with pytest.raises(ShapeError, match="NaN or infinity"):
            normalized.take_rows(np.array([np.nan]))
