"""Shared fixtures for the test suite.

The fixtures build small, fully deterministic datasets in every flavour the
library supports (dense / sparse base matrices, single and multi-join star
schemas, two-table M:N joins) so each test module can focus on the behaviour
under test rather than data plumbing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp

# Deterministic planner calibration for the whole suite: no timing probe, no
# writes to the user's ~/.cache.  Tests that exercise the probe or the cache
# modes call them explicitly (and override this env var where needed).
os.environ.setdefault("REPRO_CALIBRATION", "default")

from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.datasets.synthetic import (
    SyntheticMNConfig,
    SyntheticPKFKConfig,
    generate_mn,
    generate_pk_fk,
    generate_star,
)
from repro.la.ops import indicator_from_labels


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded random generator for ad-hoc matrices inside tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def single_join_dense():
    """A small dense single-join PK-FK dataset: returns (dataset, TN, T)."""
    config = SyntheticPKFKConfig.from_ratios(
        tuple_ratio=6, feature_ratio=2, num_attribute_rows=40,
        num_entity_features=5, seed=7,
    )
    dataset = generate_pk_fk(config)
    return dataset, dataset.normalized, dataset.materialized


@pytest.fixture
def multi_join_dense():
    """A star-schema dataset with two attribute tables: returns (dataset, TN, T)."""
    dataset = generate_star(
        num_entity_rows=180, num_entity_features=4,
        attribute_tables=[(30, 6), (45, 3)], seed=11,
    )
    return dataset, dataset.normalized, dataset.materialized


@pytest.fixture
def single_join_sparse():
    """A single-join dataset whose base matrices are sparse CSR: (TN, T_dense)."""
    rng = np.random.default_rng(3)
    n_s, d_s, n_r, d_r = 120, 4, 24, 9
    entity = sp.random(n_s, d_s, density=0.3, random_state=5, format="csr")
    attribute = sp.random(n_r, d_r, density=0.25, random_state=6, format="csr")
    labels = np.concatenate([
        np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)
    ])
    rng.shuffle(labels)
    indicator = indicator_from_labels(labels, num_columns=n_r)
    normalized = NormalizedMatrix(entity, [indicator], [attribute])
    dense = np.asarray(normalized.materialize().todense())
    return normalized, dense


@pytest.fixture
def no_entity_features():
    """A normalized matrix whose entity table has no features (d_S = 0)."""
    rng = np.random.default_rng(9)
    n_s, n_r, d_r = 90, 15, 6
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(labels)
    indicator = indicator_from_labels(labels, num_columns=n_r)
    normalized = NormalizedMatrix(None, [indicator], [attribute])
    return normalized, np.asarray(normalized.materialize())


@pytest.fixture
def mn_dataset():
    """A two-table M:N dataset: returns (dataset, MN normalized matrix, T)."""
    config = SyntheticMNConfig(num_rows=50, num_features=6, domain_size=10, seed=13)
    dataset = generate_mn(config)
    return dataset, dataset.normalized, dataset.materialized


@pytest.fixture
def mn_multi_component():
    """A three-component M:N normalized matrix built by hand: (TN, T)."""
    rng = np.random.default_rng(21)
    n_out = 70
    components = []
    indicators = []
    for n_rows, width, seed in [(14, 3, 1), (10, 5, 2), (7, 2, 3)]:
        local = np.random.default_rng(seed)
        components.append(local.standard_normal((n_rows, width)))
        labels = np.concatenate([np.arange(n_rows), local.integers(0, n_rows, size=n_out - n_rows)])
        local.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_rows))
    normalized = MNNormalizedMatrix(indicators, components)
    return normalized, np.asarray(normalized.materialize())
