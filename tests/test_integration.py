"""End-to-end integration tests: CSV files -> tables -> normalized matrix -> ML.

These tests walk the full pipeline a downstream user would follow (the paper's
insurance-churn example from Section 2): read base tables from CSV, one-hot
encode features, build the indicator matrices, wrap everything in a
NormalizedMatrix via the morpheus factory and train each ML algorithm -- then
check the factorized models agree with the models trained on the materialized
join output.
"""

import numpy as np
import pytest

from repro.core.decision import DecisionRule, morpheus
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la.ops import hstack
from repro.ml import (
    GNMF,
    KMeans,
    LinearRegressionNE,
    LogisticRegressionGD,
    binarize_labels,
)
from repro.relational import (
    Table,
    encode_features,
    join_pk_fk,
    pk_fk_indicator,
    read_csv,
    write_csv,
)


@pytest.fixture(scope="module")
def churn_tables(tmp_path_factory):
    """Write the Customers / Employers tables to CSV and read them back."""
    rng = np.random.default_rng(99)
    num_customers, num_employers = 300, 30
    employer_ids = np.concatenate([
        np.arange(num_employers), rng.integers(0, num_employers, size=num_customers - num_employers)
    ])
    rng.shuffle(employer_ids)
    customers = Table("customers", {
        "customer_id": np.arange(num_customers),
        "age": rng.uniform(20, 70, size=num_customers).round(1),
        "income": rng.uniform(20, 200, size=num_customers).round(1),
        "employer_id": employer_ids,
    })
    employers = Table("employers", {
        "employer_id": np.arange(num_employers),
        "revenue": rng.uniform(1, 500, size=num_employers).round(1),
        "country": rng.choice(np.array(["us", "uk", "de", "in"]), size=num_employers),
    })
    directory = tmp_path_factory.mktemp("churn")
    write_csv(customers, directory / "customers.csv")
    write_csv(employers, directory / "employers.csv")
    return read_csv(directory / "customers.csv"), read_csv(directory / "employers.csv")


@pytest.fixture(scope="module")
def churn_matrices(churn_tables):
    """Build the normalized and materialized views plus a churn target."""
    customers, employers = churn_tables
    entity_features = encode_features(customers, columns=["age", "income"], sparse=False)
    attribute_features = encode_features(employers, columns=["revenue", "country"], sparse=False)
    indicator, _ = pk_fk_indicator(customers, "employer_id", employers, "employer_id")
    normalized = NormalizedMatrix(entity_features.matrix, [indicator], [attribute_features.matrix])
    materialized = np.asarray(normalized.materialize())
    rng = np.random.default_rng(7)
    weights = rng.standard_normal((materialized.shape[1], 1))
    target = binarize_labels(materialized @ weights + 0.1 * rng.standard_normal((materialized.shape[0], 1)),
                             threshold=0.0)
    return normalized, materialized, target


class TestPipelineConstruction:
    def test_csv_roundtrip_preserves_rows(self, churn_tables):
        customers, employers = churn_tables
        assert customers.num_rows == 300
        assert employers.num_rows == 30

    def test_materialized_join_matches_normalized(self, churn_tables, churn_matrices):
        customers, employers = churn_tables
        normalized, materialized, _ = churn_matrices
        joined = join_pk_fk(customers, "employer_id", employers, "employer_id")
        assert joined.num_rows == materialized.shape[0]
        assert np.allclose(joined.column("revenue"),
                           materialized[:, 2])  # columns: age, income, revenue, country...

    def test_morpheus_factory_factorizes_this_schema(self, churn_tables):
        customers, employers = churn_tables
        entity = encode_features(customers, columns=["age", "income"], sparse=False).matrix
        attribute = encode_features(employers, columns=["revenue", "country"], sparse=False).matrix
        indicator, _ = pk_fk_indicator(customers, "employer_id", employers, "employer_id")
        out = morpheus(entity, [indicator], [attribute])
        # tuple ratio 10, feature ratio (1 + 4 countries) / 2 >= 1 -> factorized
        assert isinstance(out, NormalizedMatrix)

    def test_morpheus_factory_materializes_when_told(self, churn_tables):
        customers, employers = churn_tables
        entity = encode_features(customers, columns=["age", "income"], sparse=False).matrix
        attribute = encode_features(employers, columns=["revenue", "country"], sparse=False).matrix
        indicator, _ = pk_fk_indicator(customers, "employer_id", employers, "employer_id")
        out = morpheus(entity, [indicator], [attribute],
                       rule=DecisionRule(tuple_ratio_threshold=1000))
        assert isinstance(out, np.ndarray)


class TestEndToEndML:
    def test_logistic_regression_factorized_vs_materialized(self, churn_matrices):
        normalized, materialized, target = churn_matrices
        factorized = LogisticRegressionGD(max_iter=10, step_size=1e-3).fit(normalized, target)
        standard = LogisticRegressionGD(max_iter=10, step_size=1e-3).fit(materialized, target)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-8)

    def test_linear_regression_factorized_vs_materialized(self, churn_matrices):
        normalized, materialized, _ = churn_matrices
        y = materialized @ np.ones((materialized.shape[1], 1))
        factorized = LinearRegressionNE().fit(normalized, y)
        standard = LinearRegressionNE().fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-6)

    def test_kmeans_factorized_vs_materialized(self, churn_matrices):
        normalized, materialized, _ = churn_matrices
        factorized = KMeans(num_clusters=3, max_iter=8, seed=1).fit(normalized)
        standard = KMeans(num_clusters=3, max_iter=8, seed=1).fit(materialized)
        assert np.array_equal(factorized.labels_, standard.labels_)

    def test_gnmf_factorized_vs_materialized(self, churn_matrices):
        normalized, materialized, _ = churn_matrices
        positive = normalized.apply(np.abs)
        factorized = GNMF(rank=3, max_iter=8, seed=2).fit(positive)
        standard = GNMF(rank=3, max_iter=8, seed=2).fit(np.abs(materialized))
        assert np.allclose(factorized.w_, standard.w_, atol=1e-7)

    def test_learned_model_is_predictive(self, churn_matrices):
        normalized, _, target = churn_matrices
        model = LogisticRegressionGD(max_iter=150, step_size=5e-3, update="exact")
        model.fit(normalized, target)
        predictions = model.predict(normalized)
        assert float(np.mean(predictions == target.ravel().reshape(-1, 1))) > 0.85


class TestSparsePipeline:
    def test_sparse_encoded_features_flow_through(self, churn_tables):
        customers, employers = churn_tables
        entity = encode_features(customers, columns=["age", "income"], sparse=True).matrix
        attribute = encode_features(employers, columns=["revenue", "country"], sparse=True).matrix
        indicator, _ = pk_fk_indicator(customers, "employer_id", employers, "employer_id")
        normalized = NormalizedMatrix(entity, [indicator], [attribute])
        dense_reference = np.asarray(hstack([entity, indicator @ attribute]).todense())
        assert np.allclose(normalized.to_dense(), dense_reference)
        w = np.ones((normalized.shape[1], 1))
        assert np.allclose(normalized @ w, dense_reference @ w)
