"""ML algorithms over the chunked (ORE-style) backend.

These tests pin down the closure claim used by the scalability experiments
(Tables 9 and 10): the same estimator code runs over a ChunkedMatrix and
produces the same model as over the in-memory matrix.
"""

import numpy as np
import pytest

from repro.la.chunked import ChunkedMatrix
from repro.ml.linear_regression import LinearRegressionGD, LinearRegressionNE
from repro.ml.logistic_regression import LogisticRegressionGD


@pytest.fixture
def chunked_pair(rng):
    dense = rng.standard_normal((64, 6))
    target = np.where(dense @ rng.standard_normal((6, 1)) > 0, 1.0, -1.0)
    return dense, ChunkedMatrix.from_matrix(dense, 10), target


class TestLogisticOverChunked:
    def test_coefficients_match_dense(self, chunked_pair):
        dense, chunked, target = chunked_pair
        a = LogisticRegressionGD(max_iter=5, step_size=1e-2).fit(chunked, target)
        b = LogisticRegressionGD(max_iter=5, step_size=1e-2).fit(dense, target)
        assert np.allclose(a.coef_, b.coef_, atol=1e-10)

    def test_predictions_match_dense(self, chunked_pair):
        dense, chunked, target = chunked_pair
        model = LogisticRegressionGD(max_iter=5, step_size=1e-2).fit(chunked, target)
        assert np.array_equal(model.predict(chunked), model.predict(dense))


class TestLinearRegressionOverChunked:
    def test_normal_equations_match_dense(self, chunked_pair, rng):
        dense, chunked, _ = chunked_pair
        y = dense @ rng.standard_normal((6, 1))
        a = LinearRegressionNE().fit(chunked, y)
        b = LinearRegressionNE().fit(dense, y)
        assert np.allclose(a.coef_, b.coef_, atol=1e-8)

    def test_gradient_descent_matches_dense(self, chunked_pair, rng):
        dense, chunked, _ = chunked_pair
        y = dense @ rng.standard_normal((6, 1))
        a = LinearRegressionGD(max_iter=6, step_size=1e-3).fit(chunked, y)
        b = LinearRegressionGD(max_iter=6, step_size=1e-3).fit(dense, y)
        assert np.allclose(a.coef_, b.coef_, atol=1e-10)
