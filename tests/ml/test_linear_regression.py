"""Tests for the three linear-regression solvers (Algorithms 5/6, 11/12, 13/14)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml.linear_regression import (
    LinearRegressionCofactor,
    LinearRegressionGD,
    LinearRegressionNE,
)
from repro.ml.metrics import r2_score


def regression_target(materialized: np.ndarray, seed: int = 0, noise: float = 0.01) -> np.ndarray:
    rng = np.random.default_rng(seed)
    weights = rng.standard_normal((materialized.shape[1], 1))
    return materialized @ weights + noise * rng.standard_normal((materialized.shape[0], 1))


class TestNormalEquations:
    def test_factorized_equals_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized)
        factorized = LinearRegressionNE().fit(normalized, y)
        standard = LinearRegressionNE().fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-7)

    def test_multi_join(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        y = regression_target(materialized, seed=1)
        factorized = LinearRegressionNE().fit(normalized, y)
        standard = LinearRegressionNE().fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-7)

    def test_mn_join(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        y = regression_target(materialized, seed=2)
        factorized = LinearRegressionNE().fit(normalized, y)
        standard = LinearRegressionNE().fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-7)

    def test_recovers_true_weights_without_noise(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        rng = np.random.default_rng(3)
        weights = rng.standard_normal((materialized.shape[1], 1))
        y = materialized @ weights
        model = LinearRegressionNE().fit(normalized, y)
        assert np.allclose(model.coef_, weights, atol=1e-6)

    def test_good_fit_r2(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, noise=0.05)
        model = LinearRegressionNE().fit(normalized, y)
        assert r2_score(y, model.predict(normalized)) > 0.95

    def test_naive_crossprod_method_option(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=4)
        naive = LinearRegressionNE(crossprod_method="naive").fit(normalized, y)
        efficient = LinearRegressionNE(crossprod_method="efficient").fit(normalized, y)
        assert np.allclose(naive.coef_, efficient.coef_, atol=1e-8)

    def test_predict_before_fit(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(RuntimeError):
            LinearRegressionNE().predict(normalized)

    def test_target_mismatch(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            LinearRegressionNE().fit(normalized, np.ones(2))


class TestGradientDescent:
    def test_factorized_equals_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=5)
        factorized = LinearRegressionGD(max_iter=10, step_size=1e-4).fit(normalized, y)
        standard = LinearRegressionGD(max_iter=10, step_size=1e-4).fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)

    def test_history_tracks_squared_error(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=6)
        model = LinearRegressionGD(max_iter=15, step_size=1e-4, track_history=True)
        model.fit(normalized, y)
        assert len(model.history_) == 15
        assert model.history_[-1] < model.history_[0]

    def test_initial_weights(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=7)
        start = np.ones((materialized.shape[1], 1))
        a = LinearRegressionGD(max_iter=3, step_size=1e-4).fit(normalized, y, initial_weights=start)
        b = LinearRegressionGD(max_iter=3, step_size=1e-4).fit(materialized, y, initial_weights=start)
        assert np.allclose(a.coef_, b.coef_)

    def test_predict_before_fit(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(RuntimeError):
            LinearRegressionGD().predict(normalized)


class TestCofactor:
    def test_factorized_equals_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=8)
        factorized = LinearRegressionCofactor(max_iter=10, step_size=1e-2).fit(normalized, y)
        standard = LinearRegressionCofactor(max_iter=10, step_size=1e-2).fit(materialized, y)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)
        assert np.allclose(factorized.cofactor_, standard.cofactor_, atol=1e-8)

    def test_cofactor_shape(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=9)
        model = LinearRegressionCofactor(max_iter=1).fit(normalized, y)
        d = materialized.shape[1]
        assert model.cofactor_.shape == (d + 1, d)

    def test_cofactor_contents(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=10)
        model = LinearRegressionCofactor(max_iter=1).fit(normalized, y)
        assert np.allclose(model.cofactor_[0:1, :], y.T @ materialized, atol=1e-8)
        assert np.allclose(model.cofactor_[1:, :], materialized.T @ materialized, atol=1e-7)

    def test_plain_sgd_mode(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=11)
        factorized = LinearRegressionCofactor(max_iter=5, step_size=1e-6, adagrad=False)
        standard = LinearRegressionCofactor(max_iter=5, step_size=1e-6, adagrad=False)
        assert np.allclose(factorized.fit(normalized, y).coef_,
                           standard.fit(materialized, y).coef_, atol=1e-10)

    def test_gradient_norm_history(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=12)
        model = LinearRegressionCofactor(max_iter=8, step_size=1e-2, track_history=True)
        model.fit(normalized, y)
        assert len(model.history_) == 8

    def test_predict_before_fit(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(RuntimeError):
            LinearRegressionCofactor().predict(normalized)

    def test_adagrad_reduces_residual(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        y = regression_target(materialized, seed=13, noise=0.0)
        model = LinearRegressionCofactor(max_iter=300, step_size=0.5).fit(normalized, y)
        baseline = float(np.mean((y - y.mean()) ** 2))
        residual = float(np.mean((y - model.predict(normalized)) ** 2))
        assert residual < baseline
