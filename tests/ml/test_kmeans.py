"""Tests for K-Means clustering (paper Algorithms 7 and 15)."""

import numpy as np
import pytest

from repro.ml.kmeans import KMeans
from repro.ml.metrics import within_cluster_ss


class TestFactorizedEquivalence:
    def test_centroids_match_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        factorized = KMeans(num_clusters=4, max_iter=8, seed=1).fit(normalized)
        standard = KMeans(num_clusters=4, max_iter=8, seed=1).fit(materialized)
        assert np.allclose(factorized.centroids_, standard.centroids_, atol=1e-8)

    def test_labels_match_materialized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        factorized = KMeans(num_clusters=4, max_iter=8, seed=1).fit(normalized)
        standard = KMeans(num_clusters=4, max_iter=8, seed=1).fit(materialized)
        assert np.array_equal(factorized.labels_, standard.labels_)

    def test_multi_join_equivalence(self, multi_join_dense):
        _, normalized, materialized = multi_join_dense
        factorized = KMeans(num_clusters=3, max_iter=6, seed=2).fit(normalized)
        standard = KMeans(num_clusters=3, max_iter=6, seed=2).fit(materialized)
        assert np.allclose(factorized.centroids_, standard.centroids_, atol=1e-8)

    def test_mn_join_equivalence(self, mn_dataset):
        _, normalized, materialized = mn_dataset
        factorized = KMeans(num_clusters=3, max_iter=6, seed=3).fit(normalized)
        standard = KMeans(num_clusters=3, max_iter=6, seed=3).fit(materialized)
        assert np.allclose(factorized.centroids_, standard.centroids_, atol=1e-8)

    def test_explicit_initial_centroids(self, single_join_dense, rng):
        _, normalized, materialized = single_join_dense
        init = rng.standard_normal((materialized.shape[1], 3))
        factorized = KMeans(num_clusters=3, max_iter=5).fit(normalized, initial_centroids=init)
        standard = KMeans(num_clusters=3, max_iter=5).fit(materialized, initial_centroids=init)
        assert np.allclose(factorized.centroids_, standard.centroids_, atol=1e-9)


class TestClusteringBehaviour:
    def _blobs(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        points = np.vstack([
            centers[i] + 0.5 * rng.standard_normal((30, 2)) for i in range(3)
        ])
        return points, np.repeat(np.arange(3), 30)

    def test_recovers_well_separated_blobs(self):
        points, truth = self._blobs()
        model = KMeans(num_clusters=3, max_iter=20, seed=5).fit(points)
        # Every true cluster should map to exactly one predicted cluster.
        for cluster in range(3):
            assigned = model.labels_[truth == cluster]
            assert len(np.unique(assigned)) == 1

    def test_inertia_positive_and_small_for_blobs(self):
        points, _ = self._blobs(seed=1)
        model = KMeans(num_clusters=3, max_iter=20, seed=5).fit(points)
        assert model.inertia_ is not None
        assert model.inertia_ < within_cluster_ss(points, np.zeros(len(points), dtype=int),
                                                  np.tile(points.mean(axis=0).reshape(-1, 1), (1, 3)))

    def test_history_non_increasing_tail(self):
        points, _ = self._blobs(seed=2)
        model = KMeans(num_clusters=3, max_iter=15, seed=6, track_history=True).fit(points)
        assert model.history_[-1] <= model.history_[0] + 1e-9

    def test_predict_assigns_to_nearest_centroid(self):
        points, truth = self._blobs(seed=3)
        model = KMeans(num_clusters=3, max_iter=20, seed=7).fit(points)
        new_points = np.array([[0.2, -0.1], [9.8, 10.2]])
        predictions = model.predict(new_points)
        assert predictions[0] == model.predict(np.array([[0.0, 0.0]]))[0]
        assert predictions[1] == model.predict(np.array([[10.0, 10.0]]))[0]

    def test_predict_on_normalized_matrix(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        model = KMeans(num_clusters=4, max_iter=5, seed=8).fit(normalized)
        assert np.array_equal(model.predict(normalized), model.predict(materialized))

    def test_empty_cluster_keeps_previous_centroid(self):
        # Two far centroids, one unreachable: no point should be assigned to it.
        points = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
        init = np.array([[0.0, 1.0, 100.0], [0.0, 1.0, 100.0]])
        model = KMeans(num_clusters=3, max_iter=3).fit(points, initial_centroids=init)
        assert np.allclose(model.centroids_[:, 2], [100.0, 100.0])
        assert np.all(np.isfinite(model.centroids_))


class TestValidation:
    def test_invalid_num_clusters(self):
        with pytest.raises(ValueError):
            KMeans(num_clusters=0)

    def test_wrong_initial_centroid_shape(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ValueError):
            KMeans(num_clusters=3).fit(normalized, initial_centroids=np.ones((2, 2)))

    def test_predict_before_fit(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(RuntimeError):
            KMeans(num_clusters=2).predict(normalized)

    def test_labels_within_range(self, single_join_dense):
        _, normalized, _ = single_join_dense
        model = KMeans(num_clusters=4, max_iter=5, seed=9).fit(normalized)
        assert model.labels_.min() >= 0
        assert model.labels_.max() < 4
