"""Tests for the preprocessing helpers in :mod:`repro.ml.preprocessing`."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml.preprocessing import binarize_labels, standardize, train_test_split_rows


class TestBinarizeLabels:
    def test_median_threshold_default(self):
        labels = binarize_labels([1.0, 2.0, 3.0, 4.0])
        assert set(labels.ravel()) == {-1.0, 1.0}
        assert labels.ravel()[3] == 1.0
        assert labels.ravel()[0] == -1.0

    def test_explicit_threshold(self):
        labels = binarize_labels([0.0, 5.0, 10.0], threshold=7.0)
        assert list(labels.ravel()) == [-1.0, -1.0, 1.0]

    def test_output_is_column(self):
        assert binarize_labels([1.0, 2.0]).shape == (2, 1)

    def test_values_at_threshold_are_negative(self):
        labels = binarize_labels([1.0, 2.0], threshold=2.0)
        assert labels.ravel()[1] == -1.0

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            binarize_labels([])


class TestStandardize:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.standard_normal((200, 3)) * 5.0 + 2.0
        out = standardize(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-6)

    def test_constant_column_does_not_blow_up(self):
        x = np.hstack([np.ones((10, 1)), np.arange(10.0).reshape(-1, 1)])
        out = standardize(x)
        assert np.all(np.isfinite(out))
        assert np.allclose(out[:, 0], 0.0)

    def test_one_dimensional_rejected(self):
        with pytest.raises(ShapeError):
            standardize(np.arange(5.0))


class TestTrainTestSplit:
    def test_partition_covers_all_rows(self):
        train, test = train_test_split_rows(100, test_fraction=0.3, seed=1)
        assert len(train) + len(test) == 100
        assert set(train).isdisjoint(set(test))

    def test_test_fraction_respected(self):
        train, test = train_test_split_rows(100, test_fraction=0.25, seed=2)
        assert len(test) == 25

    def test_deterministic_for_seed(self):
        a = train_test_split_rows(50, seed=3)
        b = train_test_split_rows(50, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = train_test_split_rows(50, seed=4)
        b = train_test_split_rows(50, seed=5)
        assert not np.array_equal(a[1], b[1])

    def test_indices_sorted(self):
        train, test = train_test_split_rows(30, seed=6)
        assert np.array_equal(train, np.sort(train))
        assert np.array_equal(test, np.sort(test))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_rows(10, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split_rows(10, test_fraction=1.0)

    def test_too_few_rows(self):
        with pytest.raises(ShapeError):
            train_test_split_rows(1)
