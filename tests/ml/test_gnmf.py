"""Tests for Gaussian non-negative matrix factorization (Algorithms 8 and 16)."""

import numpy as np
import pytest

from repro.core.normalized_matrix import NormalizedMatrix
from repro.ml.gnmf import GNMF
from repro.ml.metrics import reconstruction_error


@pytest.fixture
def nonnegative_normalized(single_join_dense):
    """A non-negative normalized matrix (GNMF requires non-negative data)."""
    dataset, normalized, _ = single_join_dense
    positive = NormalizedMatrix(np.abs(dataset.entity), dataset.indicators,
                                [np.abs(a) for a in dataset.attributes])
    return positive, np.asarray(positive.materialize())


class TestFactorizedEquivalence:
    def test_factors_match_materialized(self, nonnegative_normalized):
        normalized, materialized = nonnegative_normalized
        factorized = GNMF(rank=3, max_iter=8, seed=1).fit(normalized)
        standard = GNMF(rank=3, max_iter=8, seed=1).fit(materialized)
        assert np.allclose(factorized.w_, standard.w_, atol=1e-7)
        assert np.allclose(factorized.h_, standard.h_, atol=1e-7)

    def test_explicit_initial_factors(self, nonnegative_normalized, rng):
        normalized, materialized = nonnegative_normalized
        n, d = materialized.shape
        w0 = rng.uniform(0.1, 1.0, size=(n, 2))
        h0 = rng.uniform(0.1, 1.0, size=(d, 2))
        factorized = GNMF(rank=2, max_iter=5).fit(normalized, initial_w=w0, initial_h=h0)
        standard = GNMF(rank=2, max_iter=5).fit(materialized, initial_w=w0, initial_h=h0)
        assert np.allclose(factorized.w_, standard.w_, atol=1e-8)

    def test_mn_join_equivalence(self, mn_dataset):
        dataset, _, _ = mn_dataset
        from repro.core.mn_matrix import MNNormalizedMatrix
        positive = MNNormalizedMatrix([dataset.left_indicator, dataset.right_indicator],
                                      [np.abs(dataset.left), np.abs(dataset.right)])
        dense = positive.to_dense()
        factorized = GNMF(rank=3, max_iter=6, seed=2).fit(positive)
        standard = GNMF(rank=3, max_iter=6, seed=2).fit(dense)
        assert np.allclose(factorized.w_, standard.w_, atol=1e-7)


class TestFactorizationBehaviour:
    def test_factors_stay_nonnegative(self, nonnegative_normalized):
        normalized, _ = nonnegative_normalized
        model = GNMF(rank=4, max_iter=10, seed=3).fit(normalized)
        assert np.all(model.w_ >= 0)
        assert np.all(model.h_ >= 0)

    def test_factor_shapes(self, nonnegative_normalized):
        normalized, materialized = nonnegative_normalized
        model = GNMF(rank=4, max_iter=3, seed=4).fit(normalized)
        assert model.w_.shape == (materialized.shape[0], 4)
        assert model.h_.shape == (materialized.shape[1], 4)

    def test_objective_decreases(self, nonnegative_normalized):
        normalized, _ = nonnegative_normalized
        model = GNMF(rank=4, max_iter=15, seed=5, track_history=True).fit(normalized)
        assert model.history_[-1] <= model.history_[0]

    def test_reconstruction_better_than_zero_baseline(self, nonnegative_normalized):
        normalized, materialized = nonnegative_normalized
        model = GNMF(rank=5, max_iter=30, seed=6).fit(normalized)
        error = reconstruction_error(materialized, model.w_, model.h_)
        baseline = float(np.linalg.norm(materialized))
        assert error < baseline

    def test_exact_low_rank_matrix_recovered_well(self):
        rng = np.random.default_rng(7)
        w_true = rng.uniform(0.5, 1.5, size=(40, 3))
        h_true = rng.uniform(0.5, 1.5, size=(8, 3))
        data = w_true @ h_true.T
        model = GNMF(rank=3, max_iter=300, seed=8).fit(data)
        relative = reconstruction_error(data, model.w_, model.h_) / np.linalg.norm(data)
        assert relative < 0.05

    def test_reconstruct_method(self, nonnegative_normalized):
        normalized, materialized = nonnegative_normalized
        model = GNMF(rank=3, max_iter=5, seed=9).fit(normalized)
        assert model.reconstruct().shape == materialized.shape


class TestValidation:
    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            GNMF(rank=0)

    def test_wrong_initial_factor_shape(self, nonnegative_normalized):
        normalized, _ = nonnegative_normalized
        with pytest.raises(ValueError):
            GNMF(rank=3, max_iter=1).fit(normalized, initial_w=np.ones((2, 3)),
                                         initial_h=np.ones((3, 3)))

    def test_reconstruct_before_fit(self):
        with pytest.raises(RuntimeError):
            GNMF(rank=2).reconstruct()
