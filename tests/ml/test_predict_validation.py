"""Uniform inference-input validation across the four ML algorithms.

Plain matrices, normalized matrices, nested sequences and 1-row (1-D)
inputs must all be accepted the same way by every
``predict``/``predict_proba``/``decision_function``/``transform``, and every
shape problem must surface as :class:`repro.exceptions.ShapeError` -- never
a bare numpy broadcasting error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml import (
    GNMF,
    KMeans,
    LinearRegressionCofactor,
    LinearRegressionGD,
    LinearRegressionNE,
    LogisticRegressionGD,
)
from repro.ml.base import validate_predict_data


@pytest.fixture
def fitted_models(single_join_dense, rng):
    _, normalized, materialized = single_join_dense
    dense = np.asarray(materialized)
    y = rng.standard_normal(dense.shape[0])
    labels = np.where(y > 0, 1.0, -1.0)
    nonneg = np.abs(dense)
    models = {
        "linreg_ne": LinearRegressionNE().fit(dense, y),
        "linreg_gd": LinearRegressionGD(max_iter=3).fit(dense, y),
        "linreg_cf": LinearRegressionCofactor(max_iter=3).fit(dense, y),
        "logreg": LogisticRegressionGD(max_iter=3).fit(dense, labels),
        "kmeans": KMeans(num_clusters=3, max_iter=3).fit(dense),
        "gnmf": GNMF(rank=2, max_iter=3).fit(nonneg),
    }
    return models, normalized, dense


def _infer(name, model, data):
    if name == "kmeans":
        return model.predict(data)
    if name == "gnmf":
        return model.transform(data)
    return model.predict(data)


ALL_MODELS = ["linreg_ne", "linreg_gd", "linreg_cf", "logreg", "kmeans", "gnmf"]


@pytest.mark.parametrize("name", ALL_MODELS)
def test_one_row_1d_input_matches_2d(fitted_models, name):
    models, _, dense = fitted_models
    model = models[name]
    row = dense[4]
    assert row.ndim == 1
    one = _infer(name, model, row)
    two = _infer(name, model, dense[4:5])
    np.testing.assert_allclose(np.asarray(one), np.asarray(two), rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", ALL_MODELS)
def test_nested_sequence_input_accepted(fitted_models, name):
    models, _, dense = fitted_models
    model = models[name]
    as_list = dense[:3].tolist()
    np.testing.assert_allclose(
        np.asarray(_infer(name, model, as_list)),
        np.asarray(_infer(name, model, dense[:3])),
        rtol=1e-12, atol=1e-12,
    )


@pytest.mark.parametrize("name", ALL_MODELS)
def test_normalized_matrix_input_accepted(fitted_models, name):
    models, normalized, dense = fitted_models
    model = models[name]
    np.testing.assert_allclose(
        np.asarray(_infer(name, model, normalized)),
        np.asarray(_infer(name, model, dense)),
        rtol=1e-8, atol=1e-8,
    )


@pytest.mark.parametrize("name", ALL_MODELS)
def test_wrong_feature_count_raises_shape_error(fitted_models, name):
    models, _, dense = fitted_models
    model = models[name]
    with pytest.raises(ShapeError, match="features"):
        _infer(name, model, dense[:, :-1])
    with pytest.raises(ShapeError):
        _infer(name, model, dense[0, :-1])


@pytest.mark.parametrize("name", ALL_MODELS)
def test_bad_rank_raises_shape_error(fitted_models, name):
    models, _, dense = fitted_models
    model = models[name]
    with pytest.raises(ShapeError):
        _infer(name, model, dense.reshape(dense.shape[0], dense.shape[1], 1))


def test_logreg_proba_and_labels_on_one_row(fitted_models):
    models, _, dense = fitted_models
    model = models["logreg"]
    proba = model.predict_proba(dense[0])
    assert proba.shape == (1, 1)
    assert 0.0 <= float(proba[0, 0]) <= 1.0
    assert model.predict(dense[0]).shape == (1, 1)


def test_transposed_normalized_matrix_rejected(fitted_models):
    models, normalized, _ = fitted_models
    with pytest.raises(ShapeError):
        models["linreg_gd"].predict(normalized.T)


def test_non_numeric_input_raises_shape_error(fitted_models):
    models, _, _ = fitted_models
    with pytest.raises(ShapeError):
        models["linreg_gd"].predict([["a", "b"]])


def test_validate_predict_data_passes_lazy_views(fitted_models):
    models, normalized, dense = fitted_models
    view = normalized.lazy()
    out = validate_predict_data(view, dense.shape[1], "test")
    assert out.shape == normalized.shape
    np.testing.assert_allclose(
        models["linreg_gd"].predict(view),
        models["linreg_gd"].predict(dense),
        rtol=1e-8, atol=1e-8,
    )
