"""ML algorithms with ``n_jobs``: sharded parallel fits match serial fits.

All four algorithms accept ``n_jobs``; a parallel fit shards the data matrix
through :mod:`repro.core.shard` and must reproduce the serial coefficients to
within floating-point reassociation (and bit-for-bit when ``n_jobs=1``).
"""

import numpy as np
import pytest

from repro.core.shard import ShardedNormalizedMatrix
from repro.la.chunked import ChunkedMatrix
from repro.ml.base import effective_n_jobs, shard_for_jobs, validate_n_jobs
from repro.ml.gnmf import GNMF
from repro.ml.kmeans import KMeans
from repro.ml.linear_regression import (
    LinearRegressionCofactor,
    LinearRegressionGD,
    LinearRegressionNE,
)
from repro.ml.logistic_regression import LogisticRegressionGD


@pytest.fixture
def regression_problem(single_join_dense):
    dataset, normalized, materialized = single_join_dense
    return normalized, materialized, np.asarray(dataset.target, dtype=np.float64)


@pytest.fixture
def classification_problem(regression_problem):
    normalized, materialized, target = regression_problem
    return normalized, materialized, np.where(target > np.median(target), 1.0, -1.0)


class TestNJobsValidation:
    def test_rejects_zero_and_negative_counts(self):
        for bad in (0, -2, 1.5, "two", True):
            with pytest.raises(ValueError):
                validate_n_jobs(bad)

    def test_accepts_positive_and_all_cpus(self):
        assert validate_n_jobs(3) == 3
        assert validate_n_jobs(-1) == -1
        assert effective_n_jobs(-1) >= 1

    def test_estimator_constructor_validates(self):
        with pytest.raises(ValueError):
            LinearRegressionGD(n_jobs=0)
        with pytest.raises(ValueError):
            LogisticRegressionGD(n_jobs=-3)
        with pytest.raises(ValueError):
            LinearRegressionNE(n_jobs=0)


class TestShardForJobs:
    def test_single_job_passthrough(self, regression_problem):
        normalized, materialized, _ = regression_problem
        assert shard_for_jobs(normalized, 1) is normalized
        assert shard_for_jobs(materialized, 1) is materialized

    def test_normalized_matrix_shards_factorized(self, regression_problem):
        normalized, _, _ = regression_problem
        sharded = shard_for_jobs(normalized, 3)
        assert isinstance(sharded, ShardedNormalizedMatrix)
        assert sharded.num_shards == 3

    def test_plain_matrix_becomes_sharded_matrix(self, regression_problem):
        _, materialized, _ = regression_problem
        sharded = shard_for_jobs(materialized, 2)
        assert sharded.num_shards == 2
        assert np.array_equal(sharded.to_dense(), materialized)

    def test_chunked_operand_passes_through(self, regression_problem):
        _, materialized, _ = regression_problem
        chunked = ChunkedMatrix.from_matrix(materialized, 16)
        assert shard_for_jobs(chunked, 4) is chunked

    def test_lazy_view_is_resharded_keeping_its_cache(self, regression_problem):
        """A lazy view's FactorizedCache must survive n_jobs re-dispatch."""
        from repro.core.lazy import FactorizedCache
        from repro.core.lazy.expr import LeafExpr

        normalized, _, _ = regression_problem
        cache = FactorizedCache()
        view = normalized.lazy(cache=cache)
        dispatched = shard_for_jobs(view, 2)
        assert isinstance(dispatched, LeafExpr)
        assert isinstance(dispatched.value, ShardedNormalizedMatrix)
        assert dispatched.cache is cache

    def test_shard_view_is_memoized_per_matrix_and_count(self, regression_problem):
        """Repeated fits reuse one shard wrapper (and hence one lazy cache)."""
        normalized, _, _ = regression_problem
        first = shard_for_jobs(normalized, 3)
        second = shard_for_jobs(normalized, 3)
        other = shard_for_jobs(normalized, 2)
        assert first is second
        assert other is not first and other.num_shards == 2

    def test_lazy_fit_cache_is_warm_across_fits(self, regression_problem):
        normalized, _, y = regression_problem
        cold = LinearRegressionGD(max_iter=3, step_size=1e-4, engine="lazy", n_jobs=2)
        cold.fit(normalized, y)
        warm = LinearRegressionGD(max_iter=3, step_size=1e-4, engine="lazy", n_jobs=2)
        warm.fit(normalized, y)
        assert warm.lazy_cache_ is cold.lazy_cache_
        assert warm.lazy_cache_.stats().misses == cold.lazy_cache_.stats().misses


class TestLinearRegressionParallel:
    def test_gd_matches_serial(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionGD(max_iter=8, step_size=1e-4).fit(normalized, y)
        parallel = LinearRegressionGD(max_iter=8, step_size=1e-4, n_jobs=3).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)

    def test_gd_over_plain_matrix(self, regression_problem):
        _, materialized, y = regression_problem
        serial = LinearRegressionGD(max_iter=8, step_size=1e-4).fit(materialized, y)
        parallel = LinearRegressionGD(max_iter=8, step_size=1e-4, n_jobs=4).fit(materialized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)

    def test_ne_matches_serial(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionNE().fit(normalized, y)
        parallel = LinearRegressionNE(n_jobs=3).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-7)

    def test_ne_crossprod_method_with_n_jobs(self, regression_problem):
        """crossprod_method must survive sharding of both operand families."""
        normalized, materialized, y = regression_problem
        serial = LinearRegressionNE().fit(materialized, y)
        for data in (normalized, materialized):
            model = LinearRegressionNE(crossprod_method="naive", n_jobs=2).fit(data, y)
            assert np.allclose(model.coef_, serial.coef_, atol=1e-7)

    def test_cofactor_matches_serial(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionCofactor(max_iter=8).fit(normalized, y)
        parallel = LinearRegressionCofactor(max_iter=8, n_jobs=2).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)

    def test_n_jobs_all_cpus(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionGD(max_iter=4, step_size=1e-4).fit(normalized, y)
        parallel = LinearRegressionGD(max_iter=4, step_size=1e-4, n_jobs=-1).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)

    def test_n_jobs_one_is_bit_for_bit(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionGD(max_iter=4, step_size=1e-4).fit(normalized, y)
        one_job = LinearRegressionGD(max_iter=4, step_size=1e-4, n_jobs=1).fit(normalized, y)
        assert np.array_equal(one_job.coef_, serial.coef_)

    def test_lazy_engine_composes_with_n_jobs(self, regression_problem):
        normalized, _, y = regression_problem
        serial = LinearRegressionGD(max_iter=6, step_size=1e-4).fit(normalized, y)
        parallel = LinearRegressionGD(max_iter=6, step_size=1e-4, engine="lazy",
                                      n_jobs=2).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)
        # crossprod(T) and T^T Y hit the cache on every iteration but the first,
        # and each miss was computed shard-parallel.
        assert parallel.lazy_cache_.hits >= 2 * (6 - 1)


class TestLogisticRegressionParallel:
    def test_matches_serial(self, classification_problem):
        normalized, _, y = classification_problem
        serial = LogisticRegressionGD(max_iter=8, step_size=1e-3).fit(normalized, y)
        parallel = LogisticRegressionGD(max_iter=8, step_size=1e-3, n_jobs=3).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)

    def test_predictions_match(self, classification_problem):
        normalized, materialized, y = classification_problem
        serial = LogisticRegressionGD(max_iter=8, step_size=1e-3).fit(normalized, y)
        parallel = LogisticRegressionGD(max_iter=8, step_size=1e-3, n_jobs=2).fit(normalized, y)
        assert np.array_equal(parallel.predict(materialized), serial.predict(materialized))

    def test_lazy_engine_composes_with_n_jobs(self, classification_problem):
        normalized, _, y = classification_problem
        serial = LogisticRegressionGD(max_iter=6, step_size=1e-3).fit(normalized, y)
        parallel = LogisticRegressionGD(max_iter=6, step_size=1e-3, engine="lazy",
                                        n_jobs=2).fit(normalized, y)
        assert np.allclose(parallel.coef_, serial.coef_, atol=1e-8)
        assert parallel.lazy_cache_.hits >= 6 - 1


class TestKMeansParallel:
    def test_matches_serial(self, regression_problem):
        normalized, _, _ = regression_problem
        serial = KMeans(num_clusters=4, max_iter=6, seed=0).fit(normalized)
        parallel = KMeans(num_clusters=4, max_iter=6, seed=0, n_jobs=3).fit(normalized)
        assert np.allclose(parallel.centroids_, serial.centroids_, atol=1e-8)
        assert np.array_equal(parallel.labels_, serial.labels_)

    def test_lazy_engine_composes_with_n_jobs(self, regression_problem):
        normalized, _, _ = regression_problem
        serial = KMeans(num_clusters=3, max_iter=5, seed=0).fit(normalized)
        parallel = KMeans(num_clusters=3, max_iter=5, seed=0, engine="lazy",
                          n_jobs=2).fit(normalized)
        assert np.allclose(parallel.centroids_, serial.centroids_, atol=1e-8)


class TestGNMFParallel:
    def test_matches_serial(self, regression_problem):
        normalized, _, _ = regression_problem
        nonneg = normalized ** 2  # GNMF needs non-negative data; stays factorized
        serial = GNMF(rank=3, max_iter=6, seed=0).fit(nonneg)
        parallel = GNMF(rank=3, max_iter=6, seed=0, n_jobs=3).fit(nonneg)
        assert np.allclose(parallel.w_, serial.w_, atol=1e-8)
        assert np.allclose(parallel.h_, serial.h_, atol=1e-8)

    def test_lazy_engine_composes_with_n_jobs(self, regression_problem):
        _, materialized, _ = regression_problem
        nonneg = np.abs(materialized)
        serial = GNMF(rank=3, max_iter=5, seed=0).fit(nonneg)
        parallel = GNMF(rank=3, max_iter=5, seed=0, engine="lazy", n_jobs=2).fit(nonneg)
        assert np.allclose(parallel.h_, serial.h_, atol=1e-8)
