"""Tests for the evaluation metrics in :mod:`repro.ml.metrics`."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml import metrics


class TestAccuracy:
    def test_perfect(self):
        assert metrics.accuracy([1, -1, 1], [1, -1, 1]) == 1.0

    def test_half(self):
        assert metrics.accuracy([1, -1], [1, 1]) == 0.5

    def test_column_vectors_accepted(self):
        assert metrics.accuracy(np.ones((3, 1)), np.ones(3)) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            metrics.accuracy([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.accuracy([], [])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert metrics.log_loss([1, -1], [0.99, 0.01]) < 0.05

    def test_confident_wrong_is_large(self):
        assert metrics.log_loss([1, -1], [0.01, 0.99]) > 2.0

    def test_zero_one_labels_supported(self):
        a = metrics.log_loss([1, 0], [0.9, 0.1])
        b = metrics.log_loss([1, -1], [0.9, 0.1])
        assert a == pytest.approx(b)

    def test_clipping_avoids_infinities(self):
        assert np.isfinite(metrics.log_loss([1], [0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.log_loss([], [])


class TestRegressionMetrics:
    def test_mse_zero_for_exact(self):
        assert metrics.mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_value(self):
        assert metrics.mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        assert metrics.root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        assert metrics.r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert metrics.r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert metrics.r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert metrics.r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_mse_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.mean_squared_error([], [])


class TestClusteringAndFactorizationMetrics:
    def test_within_cluster_ss_zero_at_centroids(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        centroids = data.T  # each point is its own centroid
        labels = np.array([0, 1])
        assert metrics.within_cluster_ss(data, labels, centroids) == 0.0

    def test_within_cluster_ss_value(self):
        data = np.array([[0.0], [2.0]])
        centroids = np.array([[1.0]])
        labels = np.array([0, 0])
        assert metrics.within_cluster_ss(data, labels, centroids) == pytest.approx(2.0)

    def test_within_cluster_ss_accepts_normalized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        labels = np.zeros(materialized.shape[0], dtype=int)
        centroids = materialized.mean(axis=0, keepdims=True).T
        a = metrics.within_cluster_ss(normalized, labels, centroids)
        b = metrics.within_cluster_ss(materialized, labels, centroids)
        assert a == pytest.approx(b)

    def test_within_cluster_ss_label_mismatch(self):
        with pytest.raises(ShapeError):
            metrics.within_cluster_ss(np.ones((3, 2)), np.zeros(2, dtype=int), np.ones((2, 1)))

    def test_reconstruction_error_zero_for_exact_factors(self):
        w = np.ones((4, 2))
        h = np.ones((3, 2))
        data = w @ h.T
        assert metrics.reconstruction_error(data, w, h) == pytest.approx(0.0)

    def test_reconstruction_error_accepts_normalized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        w = np.zeros((materialized.shape[0], 2))
        h = np.zeros((materialized.shape[1], 2))
        assert metrics.reconstruction_error(normalized, w, h) == pytest.approx(
            np.linalg.norm(materialized))


class TestScoreClipping:
    """Regression: probability/loss paths clipped inconsistently with the fit
    loops, so extreme scores overflowed in predict_proba but not in fit."""

    def test_clip_scores_bounds(self):
        clipped = metrics.clip_scores(np.array([-1e9, -1.0, 0.0, 2.0, 1e9]))
        assert clipped.min() == -metrics.SCORE_CLIP
        assert clipped.max() == metrics.SCORE_CLIP
        assert np.array_equal(clipped[1:4], [-1.0, 0.0, 2.0])

    def test_sigmoid_saturates_without_warnings(self):
        extreme = np.array([-1e12, -800.0, 0.0, 800.0, 1e12])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any overflow warning fails the test
            probs = metrics.sigmoid(extreme)
        assert np.all(np.isfinite(probs))
        assert probs[0] == pytest.approx(0.0)
        assert probs[2] == pytest.approx(0.5)
        assert probs[-1] == pytest.approx(1.0)

    def test_sigmoid_matches_reference_in_normal_range(self):
        z = np.linspace(-30, 30, 101)
        assert np.allclose(metrics.sigmoid(z), 1.0 / (1.0 + np.exp(-z)))

    def test_base_module_reexports_shared_helpers(self):
        from repro.ml import base

        assert base.sigmoid is metrics.sigmoid
        assert base.clip_scores is metrics.clip_scores

    def test_predict_proba_on_extreme_scores_is_finite(self):
        from repro.ml import LogisticRegressionGD

        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 3)) * 1e6  # enormous raw scores
        labels = np.where(rng.standard_normal(40) > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=2, step_size=1.0)
        model.fit(data, labels)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            probs = model.predict_proba(data)
            loss = metrics.log_loss(labels, probs)
        assert np.all(np.isfinite(probs))
        assert np.isfinite(loss)

    def test_log_loss_handles_saturated_probabilities(self):
        # sigmoid saturates to exact 0.0/1.0; log_loss must not produce log(0).
        labels = np.array([1.0, -1.0, 1.0, -1.0])
        probs = np.array([1.0, 0.0, 0.0, 1.0])
        assert np.isfinite(metrics.log_loss(labels, probs))
