"""Tests for the evaluation metrics in :mod:`repro.ml.metrics`."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml import metrics


class TestAccuracy:
    def test_perfect(self):
        assert metrics.accuracy([1, -1, 1], [1, -1, 1]) == 1.0

    def test_half(self):
        assert metrics.accuracy([1, -1], [1, 1]) == 0.5

    def test_column_vectors_accepted(self):
        assert metrics.accuracy(np.ones((3, 1)), np.ones(3)) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            metrics.accuracy([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.accuracy([], [])


class TestLogLoss:
    def test_confident_correct_is_small(self):
        assert metrics.log_loss([1, -1], [0.99, 0.01]) < 0.05

    def test_confident_wrong_is_large(self):
        assert metrics.log_loss([1, -1], [0.01, 0.99]) > 2.0

    def test_zero_one_labels_supported(self):
        a = metrics.log_loss([1, 0], [0.9, 0.1])
        b = metrics.log_loss([1, -1], [0.9, 0.1])
        assert a == pytest.approx(b)

    def test_clipping_avoids_infinities(self):
        assert np.isfinite(metrics.log_loss([1], [0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.log_loss([], [])


class TestRegressionMetrics:
    def test_mse_zero_for_exact(self):
        assert metrics.mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_value(self):
        assert metrics.mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        assert metrics.root_mean_squared_error([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        assert metrics.r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert metrics.r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert metrics.r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert metrics.r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_mse_empty_rejected(self):
        with pytest.raises(ShapeError):
            metrics.mean_squared_error([], [])


class TestClusteringAndFactorizationMetrics:
    def test_within_cluster_ss_zero_at_centroids(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        centroids = data.T  # each point is its own centroid
        labels = np.array([0, 1])
        assert metrics.within_cluster_ss(data, labels, centroids) == 0.0

    def test_within_cluster_ss_value(self):
        data = np.array([[0.0], [2.0]])
        centroids = np.array([[1.0]])
        labels = np.array([0, 0])
        assert metrics.within_cluster_ss(data, labels, centroids) == pytest.approx(2.0)

    def test_within_cluster_ss_accepts_normalized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        labels = np.zeros(materialized.shape[0], dtype=int)
        centroids = materialized.mean(axis=0, keepdims=True).T
        a = metrics.within_cluster_ss(normalized, labels, centroids)
        b = metrics.within_cluster_ss(materialized, labels, centroids)
        assert a == pytest.approx(b)

    def test_within_cluster_ss_label_mismatch(self):
        with pytest.raises(ShapeError):
            metrics.within_cluster_ss(np.ones((3, 2)), np.zeros(2, dtype=int), np.ones((2, 1)))

    def test_reconstruction_error_zero_for_exact_factors(self):
        w = np.ones((4, 2))
        h = np.ones((3, 2))
        data = w @ h.T
        assert metrics.reconstruction_error(data, w, h) == pytest.approx(0.0)

    def test_reconstruction_error_accepts_normalized(self, single_join_dense):
        _, normalized, materialized = single_join_dense
        w = np.zeros((materialized.shape[0], 2))
        h = np.zeros((materialized.shape[1], 2))
        assert metrics.reconstruction_error(normalized, w, h) == pytest.approx(
            np.linalg.norm(materialized))
