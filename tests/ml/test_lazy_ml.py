"""Eager-vs-lazy equivalence and memoization tests for the four ML algorithms.

Acceptance criteria of the lazy subsystem: for linear regression GD, logistic
regression, K-Means and GNMF, the ``engine="lazy"`` path must

* produce numerically identical models (within 1e-8) to the eager path on
  PK-FK and M:N normalized matrices with dense and sparse base matrices, and
* report at least one :class:`~repro.core.lazy.cache.FactorizedCache` hit per
  iteration after the first, because the join-invariant terms of each inner
  loop are computed once and then reused.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la.ops import indicator_from_labels
from repro.ml import GNMF, KMeans, LinearRegressionGD, LogisticRegressionGD

ITERS = 7
TOL = dict(rtol=1e-8, atol=1e-10)


def make_pkfk(sparse: bool = False, seed: int = 0):
    """A fresh single-join PK-FK normalized matrix plus a target vector.

    Fresh per call so each test starts with an empty FactorizedCache.
    """
    rng = np.random.default_rng(seed)
    n_s, n_r, d_s, d_r = 180, 20, 4, 6
    entity = rng.standard_normal((n_s, d_s))
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(labels)
    indicator = indicator_from_labels(labels, num_columns=n_r)
    if sparse:
        entity, attribute = sp.csr_matrix(entity), sp.csr_matrix(attribute)
    normalized = NormalizedMatrix(entity, [indicator], [attribute])
    target = rng.standard_normal((n_s, 1))
    return normalized, target


def make_mn(seed: int = 0):
    """A fresh two-component M:N normalized matrix plus a target vector."""
    rng = np.random.default_rng(seed)
    n_out, dom = 160, 24
    indicators, attributes = [], []
    for width in (5, 3):
        labels = np.concatenate([np.arange(dom), rng.integers(0, dom, size=n_out - dom)])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=dom))
        attributes.append(rng.standard_normal((dom, width)))
    normalized = MNNormalizedMatrix(indicators, attributes)
    target = rng.standard_normal((n_out, 1))
    return normalized, target


DATA_BUILDERS = {
    "pkfk-dense": lambda: make_pkfk(sparse=False),
    "pkfk-sparse": lambda: make_pkfk(sparse=True),
    "mn": make_mn,
}


def nonnegative(normalized):
    """Same normalized structure with non-negative components, for GNMF."""
    if isinstance(normalized, MNNormalizedMatrix):
        return MNNormalizedMatrix(
            normalized.indicators,
            [np.abs(np.asarray(a.todense() if sp.issparse(a) else a)) for a in normalized.attributes],
        )
    absolute = lambda m: abs(m) if sp.issparse(m) else np.abs(np.asarray(m))
    entity = absolute(normalized.entity) if normalized.entity is not None else None
    return NormalizedMatrix(entity, normalized.indicators,
                            [absolute(a) for a in normalized.attributes])


@pytest.mark.parametrize("flavour", sorted(DATA_BUILDERS))
class TestEagerLazyEquivalence:
    def test_linear_regression_gd(self, flavour):
        normalized, target = DATA_BUILDERS[flavour]()
        eager = LinearRegressionGD(max_iter=ITERS, step_size=1e-4).fit(normalized, target)
        lazy = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            normalized, target)
        np.testing.assert_allclose(lazy.coef_, eager.coef_, **TOL)
        # crossprod(T) and T^T Y are each served from the cache every
        # iteration after the first.
        assert lazy.lazy_cache_.hits >= 2 * (ITERS - 1)

    @pytest.mark.parametrize("update", ["paper", "exact"])
    def test_logistic_regression_gd(self, flavour, update):
        normalized, target = DATA_BUILDERS[flavour]()
        labels = np.where(target > 0, 1.0, -1.0)
        eager = LogisticRegressionGD(max_iter=ITERS, step_size=1e-3, update=update).fit(
            normalized, labels)
        lazy = LogisticRegressionGD(max_iter=ITERS, step_size=1e-3, update=update,
                                    engine="lazy").fit(normalized, labels)
        np.testing.assert_allclose(lazy.coef_, eager.coef_, **TOL)
        # The transposed view of the data matrix is reused every iteration.
        assert lazy.lazy_cache_.hits >= ITERS - 1

    def test_kmeans(self, flavour):
        normalized, _ = DATA_BUILDERS[flavour]()
        eager = KMeans(num_clusters=4, max_iter=ITERS, seed=3).fit(normalized)
        lazy = KMeans(num_clusters=4, max_iter=ITERS, seed=3, engine="lazy").fit(normalized)
        np.testing.assert_allclose(lazy.centroids_, eager.centroids_, **TOL)
        np.testing.assert_array_equal(lazy.labels_, eager.labels_)
        assert lazy.inertia_ == pytest.approx(eager.inertia_, rel=1e-8)
        # rowSums(T^2), 2*T and T^T are all reused every iteration.
        assert lazy.lazy_cache_.hits >= 3 * (ITERS - 1)

    def test_gnmf(self, flavour):
        normalized, _ = DATA_BUILDERS[flavour]()
        data = nonnegative(normalized)
        eager = GNMF(rank=3, max_iter=ITERS, seed=4).fit(data)
        lazy = GNMF(rank=3, max_iter=ITERS, seed=4, engine="lazy").fit(data)
        np.testing.assert_allclose(lazy.w_, eager.w_, **TOL)
        np.testing.assert_allclose(lazy.h_, eager.h_, **TOL)
        assert lazy.lazy_cache_.hits >= ITERS - 1


class TestLazyEngineBehaviour:
    def test_lazy_on_chunked_backend(self):
        # The chunked (out-of-core) backend runs through the lazy layer too:
        # as_lazy attaches a per-object cache to the ChunkedMatrix itself.
        from repro.core.lazy import as_lazy
        from repro.la.chunked import ChunkedMatrix

        normalized, target = make_pkfk()
        chunked = ChunkedMatrix.from_matrix(np.asarray(normalized.materialize()), 32)
        eager = LinearRegressionGD(max_iter=ITERS, step_size=1e-4).fit(chunked, target)
        lazy = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            chunked, target)
        np.testing.assert_allclose(lazy.coef_, eager.coef_, **TOL)
        assert lazy.lazy_cache_.hits >= 2 * (ITERS - 1)
        assert as_lazy(chunked).cache is lazy.lazy_cache_  # per-object persistence

        km_eager = KMeans(num_clusters=3, max_iter=3, seed=0).fit(chunked)
        km_lazy = KMeans(num_clusters=3, max_iter=3, seed=0, engine="lazy").fit(chunked)
        np.testing.assert_allclose(km_lazy.centroids_, km_eager.centroids_, **TOL)

    def test_lazy_on_plain_dense_matrix(self):
        normalized, target = make_pkfk()
        materialized = np.asarray(normalized.materialize())
        eager = LinearRegressionGD(max_iter=ITERS, step_size=1e-4).fit(materialized, target)
        lazy = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            materialized, target)
        np.testing.assert_allclose(lazy.coef_, eager.coef_, **TOL)
        assert lazy.lazy_cache_.hits >= 2 * (ITERS - 1)

    def test_plain_matrix_view_keeps_its_cache_across_fits(self):
        # A lazy view of a plain ndarray carries the cache on the leaf (the
        # array itself cannot hold it); fitting through the view must use
        # that cache, and a second fit must start warm.
        from repro.core.lazy import as_lazy

        normalized, target = make_pkfk()
        view = as_lazy(np.asarray(normalized.materialize()))
        first = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            view, target)
        assert first.lazy_cache_ is view.cache
        misses = view.cache.misses
        second = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            view, target)
        assert second.lazy_cache_ is view.cache
        assert view.cache.misses == misses  # warm: nothing recomputed

    def test_lazy_factorized_matches_lazy_materialized(self):
        normalized, target = make_pkfk()
        materialized = np.asarray(normalized.materialize())
        factorized = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            normalized, target)
        standard = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            materialized, target)
        np.testing.assert_allclose(factorized.coef_, standard.coef_, rtol=1e-7, atol=1e-9)

    def test_cache_persists_across_fits_on_same_matrix(self):
        normalized, target = make_pkfk()
        first = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            normalized, target)
        misses_after_first = first.lazy_cache_.misses
        second = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, engine="lazy").fit(
            normalized, target)
        assert second.lazy_cache_ is first.lazy_cache_
        # The second fit re-derives nothing: crossprod(T) and T^T Y are warm.
        assert second.lazy_cache_.misses == misses_after_first

    def test_history_tracking_matches(self):
        normalized, target = make_pkfk()
        eager = LinearRegressionGD(max_iter=ITERS, step_size=1e-4,
                                   track_history=True).fit(normalized, target)
        lazy = LinearRegressionGD(max_iter=ITERS, step_size=1e-4, track_history=True,
                                  engine="lazy").fit(normalized, target)
        np.testing.assert_allclose(lazy.history_, eager.history_, rtol=1e-8)

    def test_predict_works_after_lazy_fit(self):
        normalized, target = make_pkfk()
        labels = np.where(target > 0, 1.0, -1.0)
        model = LogisticRegressionGD(max_iter=ITERS, step_size=1e-3, engine="lazy").fit(
            normalized, labels)
        predictions = model.predict(normalized)
        assert set(np.unique(predictions)) <= {-1.0, 1.0}

    def test_fit_and_predict_accept_lazy_views(self):
        # fit()/predict() take TN.lazy() interchangeably with TN itself, for
        # every estimator family.
        normalized, target = make_pkfk()
        labels = np.where(target > 0, 1.0, -1.0)
        view = normalized.lazy()

        logreg = LogisticRegressionGD(max_iter=ITERS, step_size=1e-3,
                                      engine="lazy").fit(view, labels)
        np.testing.assert_array_equal(logreg.predict(view), logreg.predict(normalized))

        linreg = LinearRegressionGD(max_iter=ITERS, step_size=1e-4,
                                    engine="lazy").fit(view, target)
        np.testing.assert_allclose(linreg.predict(view), linreg.predict(normalized),
                                   **TOL)
        # The view shares the per-matrix cache, so invariant terms stay warm.
        assert linreg.lazy_cache_ is logreg.lazy_cache_

        kmeans = KMeans(num_clusters=3, max_iter=3, seed=0, engine="lazy").fit(view)
        np.testing.assert_array_equal(kmeans.predict(view), kmeans.predict(normalized))

        gnmf_data = nonnegative(normalized)
        lazy_fit = GNMF(rank=2, max_iter=3, seed=0, engine="lazy").fit(gnmf_data.lazy())
        plain_fit = GNMF(rank=2, max_iter=3, seed=0, engine="lazy").fit(gnmf_data)
        np.testing.assert_allclose(lazy_fit.w_, plain_fit.w_, **TOL)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionGD(engine="deferred")
        with pytest.raises(ValueError):
            KMeans(engine="")

    def test_eager_fit_leaves_no_cache(self):
        normalized, target = make_pkfk()
        model = LinearRegressionGD(max_iter=3, step_size=1e-4).fit(normalized, target)
        assert model.lazy_cache_ is None

    def test_eager_refit_clears_stale_lazy_cache(self):
        normalized, target = make_pkfk()
        model = LinearRegressionGD(max_iter=3, step_size=1e-4, engine="lazy").fit(
            normalized, target)
        assert model.lazy_cache_ is not None
        model.engine = "eager"
        model.fit(normalized, target)
        assert model.lazy_cache_ is None

    def test_hyperparameter_sweep_does_not_grow_the_cache(self):
        # The lazy fits memoize only canonical terms (never keyed by a
        # hyperparameter), so sweeping step sizes must not accumulate
        # data-sized cache entries per setting.
        normalized, target = make_pkfk()
        labels = np.where(target > 0, 1.0, -1.0)
        sizes = []
        for alpha in (1e-4, 1e-3, 1e-2):
            model = LogisticRegressionGD(max_iter=3, step_size=alpha,
                                         engine="lazy").fit(normalized, labels)
            sizes.append(len(model.lazy_cache_))
        assert sizes[0] == sizes[1] == sizes[2]
