"""Mini-batch / streaming equivalence suite for the four ML algorithms.

Three contracts, per the streaming issue's acceptance criteria:

* one epoch with ``batch_size >= n_rows`` (unshuffled) matches the full-batch
  solver **bit for bit** -- the identity fast path hands the solver the very
  same operand;
* factorized mini-batch training matches materialized mini-batch training to
  ``1e-8`` across star and M:N fixtures, for ``solver="sgd"`` fits and for
  raw ``partial_fit`` streams alike;
* the streaming knobs compose with the existing ``engine=`` / ``n_jobs=``
  surface, including ``engine="auto"`` dispatching to a streamed plan under a
  memory budget.
"""

import numpy as np
import pytest

from repro.core.planner import CalibrationProfile, Planner
from repro.core.planner.memory import entity_stream_nbytes
from repro.ml import GNMF, KMeans, LinearRegressionGD, LogisticRegressionGD

ATOL = 1e-8


def _labels(y):
    arr = np.asarray(y).ravel()
    return np.where(arr > np.median(arr), 1.0, -1.0)


@pytest.fixture(params=["star", "mn"])
def fixture_pair(request, multi_join_dense, mn_dataset):
    """(normalized, materialized, regression target, class labels) per family."""
    if request.param == "star":
        dataset, normalized, materialized = multi_join_dense
        target = np.asarray(dataset.target, dtype=np.float64).ravel()
    else:
        _, normalized, materialized = mn_dataset
        rng = np.random.default_rng(17)
        target = rng.standard_normal(materialized.shape[0])
    return normalized, np.asarray(materialized), target, _labels(target)


class TestFullBatchBitForBit:
    """batch_size >= n_rows, one solver per algorithm: identical arithmetic."""

    def test_linear_regression(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        n = materialized.shape[0]
        full = LinearRegressionGD(max_iter=4, step_size=1e-4).fit(normalized, y)
        sgd = LinearRegressionGD(max_iter=4, step_size=1e-4, solver="sgd",
                                 batch_size=n).fit(normalized, y)
        assert np.array_equal(full.coef_, sgd.coef_)

    def test_linear_regression_oversized_batch(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        full = LinearRegressionGD(max_iter=3, step_size=1e-4).fit(normalized, y)
        sgd = LinearRegressionGD(max_iter=3, step_size=1e-4, solver="sgd",
                                 batch_size=10 ** 9).fit(normalized, y)
        assert np.array_equal(full.coef_, sgd.coef_)

    def test_logistic_regression(self, fixture_pair):
        normalized, materialized, _, labels = fixture_pair
        n = materialized.shape[0]
        full = LogisticRegressionGD(max_iter=4).fit(normalized, labels)
        sgd = LogisticRegressionGD(max_iter=4, solver="sgd", batch_size=n
                                   ).fit(normalized, labels)
        assert np.array_equal(full.coef_, sgd.coef_)

    def test_kmeans(self, fixture_pair):
        normalized, materialized, _, _ = fixture_pair
        n = materialized.shape[0]
        full = KMeans(num_clusters=3, max_iter=4).fit(normalized)
        sgd = KMeans(num_clusters=3, max_iter=4, solver="sgd", batch_size=n
                     ).fit(normalized)
        assert np.array_equal(full.centroids_, sgd.centroids_)

    def test_gnmf(self, fixture_pair):
        _, materialized, _, _ = fixture_pair
        nonneg = np.abs(materialized) + 0.1
        n = nonneg.shape[0]
        full = GNMF(rank=3, max_iter=4).fit(nonneg)
        sgd = GNMF(rank=3, max_iter=4, solver="sgd", batch_size=n).fit(nonneg)
        assert np.array_equal(full.w_, sgd.w_)
        assert np.array_equal(full.h_, sgd.h_)


class TestFactorizedMatchesMaterializedMinibatch:
    """solver="sgd" with genuine mini-batches: F and M agree to 1e-8."""

    BATCH = 23

    def test_linear_regression(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        kwargs = dict(max_iter=3, step_size=1e-4, solver="sgd", batch_size=self.BATCH)
        f = LinearRegressionGD(**kwargs).fit(normalized, y)
        m = LinearRegressionGD(**kwargs).fit(materialized, y)
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_linear_regression_shuffled(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        kwargs = dict(max_iter=3, step_size=1e-4, solver="sgd",
                      batch_size=self.BATCH, shuffle=True, seed=5)
        f = LinearRegressionGD(**kwargs).fit(normalized, y)
        m = LinearRegressionGD(**kwargs).fit(materialized, y)
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_logistic_regression(self, fixture_pair):
        normalized, materialized, _, labels = fixture_pair
        kwargs = dict(max_iter=3, solver="sgd", batch_size=self.BATCH)
        f = LogisticRegressionGD(**kwargs).fit(normalized, labels)
        m = LogisticRegressionGD(**kwargs).fit(materialized, labels)
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_logistic_regression_exact_update(self, fixture_pair):
        normalized, materialized, _, labels = fixture_pair
        kwargs = dict(max_iter=3, solver="sgd", batch_size=self.BATCH, update="exact")
        f = LogisticRegressionGD(**kwargs).fit(normalized, labels)
        m = LogisticRegressionGD(**kwargs).fit(materialized, labels)
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_kmeans(self, fixture_pair):
        normalized, materialized, _, _ = fixture_pair
        kwargs = dict(num_clusters=3, max_iter=3, solver="sgd", batch_size=self.BATCH)
        f = KMeans(**kwargs).fit(normalized)
        m = KMeans(**kwargs).fit(materialized)
        assert np.allclose(f.centroids_, m.centroids_, atol=ATOL)
        assert np.array_equal(f.labels_, m.labels_)
        assert np.isclose(f.inertia_, m.inertia_, atol=1e-6)

    def test_gnmf_star(self, multi_join_dense):
        # GNMF needs element-wise non-negative data; shift the attribute and
        # entity blocks of the star fixture through the scalar rewrites so
        # the factorized operand stays normalized.
        _, normalized, materialized = multi_join_dense
        shift = float(np.abs(materialized).max()) + 1.0
        nonneg_f = normalized + shift
        nonneg_m = np.asarray(materialized) + shift
        kwargs = dict(rank=3, max_iter=3, solver="sgd", batch_size=self.BATCH)
        f = GNMF(**kwargs).fit(nonneg_f)
        m = GNMF(**kwargs).fit(nonneg_m)
        assert np.allclose(f.w_, m.w_, atol=ATOL)
        assert np.allclose(f.h_, m.h_, atol=ATOL)


class TestPartialFitStreams:
    """Raw partial_fit streams: factorized slices vs. dense slices."""

    def _batches(self, n, size=19):
        for start in range(0, n, size):
            yield np.arange(start, min(start + size, n))

    def test_linear_regression_partial_fit(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        y2 = y.reshape(-1, 1)
        f = LinearRegressionGD(step_size=1e-4)
        m = LinearRegressionGD(step_size=1e-4)
        for idx in self._batches(materialized.shape[0]):
            f.partial_fit(normalized.take_rows(idx), y2[idx])
            m.partial_fit(materialized[idx], y2[idx])
        assert f.coef_ is not None
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_logistic_regression_partial_fit(self, fixture_pair):
        normalized, materialized, _, labels = fixture_pair
        lab = labels.reshape(-1, 1)
        f = LogisticRegressionGD()
        m = LogisticRegressionGD()
        for idx in self._batches(materialized.shape[0]):
            f.partial_fit(normalized.take_rows(idx), lab[idx])
            m.partial_fit(materialized[idx], lab[idx])
        assert np.allclose(f.coef_, m.coef_, atol=ATOL)

    def test_kmeans_partial_fit(self, fixture_pair):
        normalized, materialized, _, _ = fixture_pair
        f = KMeans(num_clusters=3)
        m = KMeans(num_clusters=3)
        for idx in self._batches(materialized.shape[0]):
            f.partial_fit(normalized.take_rows(idx))
            m.partial_fit(materialized[idx])
        assert np.allclose(f.centroids_, m.centroids_, atol=ATOL)

    def test_gnmf_partial_fit_grows_w(self, fixture_pair):
        _, materialized, _, _ = fixture_pair
        nonneg = np.abs(materialized) + 0.1
        model = GNMF(rank=2)
        for idx in self._batches(nonneg.shape[0]):
            model.partial_fit(nonneg[idx])
        assert model.w_.shape == (nonneg.shape[0], 2)
        assert np.all(np.isfinite(model.w_)) and np.all(np.isfinite(model.h_))

    def test_gnmf_partial_fit_with_row_indices(self, fixture_pair):
        _, materialized, _, _ = fixture_pair
        nonneg = np.abs(materialized) + 0.1
        n = nonneg.shape[0]
        whole = GNMF(rank=2, max_iter=1, solver="sgd", batch_size=19).fit(nonneg)
        manual = GNMF(rank=2, max_iter=1)
        manual.w_, manual.h_ = whole._initial_factors(n, nonneg.shape[1])
        for idx in self._batches(n):
            manual.partial_fit(nonneg[idx], row_indices=idx)
        assert np.allclose(whole.w_, manual.w_, atol=ATOL)
        assert np.allclose(whole.h_, manual.h_, atol=ATOL)

    def test_partial_fit_initializes_lazily(self, fixture_pair):
        normalized, materialized, y, _ = fixture_pair
        model = LinearRegressionGD(step_size=1e-4)
        assert model.coef_ is None
        model.partial_fit(normalized.take_rows(np.arange(5)), y[:5])
        assert model.coef_.shape == (materialized.shape[1], 1)


class TestStreamingComposition:
    def test_sgd_composes_with_n_jobs(self, multi_join_dense):
        dataset, normalized, _ = multi_join_dense
        y = dataset.target
        serial = LinearRegressionGD(max_iter=3, step_size=1e-4, solver="sgd",
                                    batch_size=29).fit(normalized, y)
        sharded = LinearRegressionGD(max_iter=3, step_size=1e-4, solver="sgd",
                                     batch_size=29, n_jobs=2).fit(normalized, y)
        assert np.allclose(serial.coef_, sharded.coef_, atol=1e-10)

    def test_sgd_accepts_lazy_engine(self, multi_join_dense):
        # No cross-batch memoization exists, but the knob must not break.
        dataset, normalized, _ = multi_join_dense
        y = dataset.target
        eager = LinearRegressionGD(max_iter=2, step_size=1e-4, solver="sgd",
                                   batch_size=31).fit(normalized, y)
        lazy = LinearRegressionGD(max_iter=2, step_size=1e-4, solver="sgd",
                                  batch_size=31, engine="lazy").fit(normalized, y)
        assert np.allclose(eager.coef_, lazy.coef_, atol=1e-12)

    def test_auto_engine_memory_budget_dispatches_streamed(self, multi_join_dense):
        dataset, normalized, materialized = multi_join_dense
        y = dataset.target
        budget = entity_stream_nbytes(normalized) // 2
        auto = LinearRegressionGD(max_iter=3, step_size=1e-4, engine="auto",
                                  memory_budget=budget)
        auto.planner = Planner(calibration=CalibrationProfile.default(),
                               charge_materialization=False, memory_budget=budget)
        auto.fit(normalized, y)
        assert auto.plan_.chosen.backend == "streamed"
        reference = LinearRegressionGD(
            max_iter=3, step_size=1e-4, solver="sgd",
            batch_size=auto.plan_.chosen.batch_rows).fit(np.asarray(materialized), y)
        assert np.allclose(auto.coef_, reference.coef_, atol=ATOL)

    def test_memory_budget_sizes_sgd_batches(self, multi_join_dense):
        dataset, normalized, materialized = multi_join_dense
        y = dataset.target
        d = materialized.shape[1]
        budget = 31 * d * 8
        model = LinearRegressionGD(max_iter=2, step_size=1e-4, solver="sgd",
                                   memory_budget=budget)
        model.fit(normalized, y)
        explicit = LinearRegressionGD(
            max_iter=2, step_size=1e-4, solver="sgd",
            batch_size=model._stream_batches(normalized).batch_size).fit(normalized, y)
        assert np.allclose(model.coef_, explicit.coef_, atol=1e-12)

    def test_solver_validation(self):
        with pytest.raises(ValueError):
            LinearRegressionGD(solver="bogus")
        with pytest.raises(ValueError):
            LogisticRegressionGD(batch_size=0)
        with pytest.raises(ValueError):
            KMeans(memory_budget=-1)

    def test_track_history_records_epochs(self, multi_join_dense):
        dataset, normalized, _ = multi_join_dense
        model = LinearRegressionGD(max_iter=3, step_size=1e-4, solver="sgd",
                                   batch_size=29, track_history=True)
        model.fit(normalized, dataset.target)
        assert len(model.history_) == 3
        assert all(np.isfinite(v) for v in model.history_)


class TestTrackHistoryIsObservational:
    def test_gnmf_history_does_not_change_the_model(self, multi_join_dense):
        # Regression: the tracked objective used to re-iterate the shuffled
        # training iterator, consuming an extra permutation per epoch.
        _, _, materialized = multi_join_dense
        nonneg = np.abs(np.asarray(materialized)) + 0.1
        kwargs = dict(rank=2, max_iter=3, solver="sgd", batch_size=19,
                      shuffle=True, seed=4)
        tracked = GNMF(track_history=True, **kwargs).fit(nonneg)
        plain = GNMF(track_history=False, **kwargs).fit(nonneg)
        assert np.array_equal(tracked.w_, plain.w_)
        assert np.array_equal(tracked.h_, plain.h_)
        assert len(tracked.history_) == 3

    def test_kmeans_history_does_not_change_the_model(self, multi_join_dense):
        _, normalized, _ = multi_join_dense
        kwargs = dict(num_clusters=3, max_iter=3, solver="sgd", batch_size=19,
                      shuffle=True, seed=4)
        tracked = KMeans(track_history=True, **kwargs).fit(normalized)
        plain = KMeans(track_history=False, **kwargs).fit(normalized)
        assert np.array_equal(tracked.centroids_, plain.centroids_)
