"""Tests for logistic regression (paper Algorithms 3 and 4)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ml.logistic_regression import LogisticRegressionGD
from repro.ml.metrics import accuracy
from repro.ml.preprocessing import binarize_labels


class TestFactorizedEquivalence:
    @pytest.mark.parametrize("update", ["paper", "exact"])
    def test_coefficients_match_materialized(self, single_join_dense, update):
        dataset, normalized, materialized = single_join_dense
        factorized = LogisticRegressionGD(max_iter=8, step_size=1e-3, update=update)
        standard = LogisticRegressionGD(max_iter=8, step_size=1e-3, update=update)
        factorized.fit(normalized, dataset.target)
        standard.fit(materialized, dataset.target)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)

    def test_multi_join_equivalence(self, multi_join_dense):
        dataset, normalized, materialized = multi_join_dense
        factorized = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(normalized, dataset.target)
        standard = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(materialized, dataset.target)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)

    def test_mn_join_equivalence(self, mn_dataset):
        dataset, normalized, materialized = mn_dataset
        factorized = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(normalized, dataset.target)
        standard = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(materialized, dataset.target)
        assert np.allclose(factorized.coef_, standard.coef_, atol=1e-9)

    def test_predictions_match(self, single_join_dense):
        dataset, normalized, materialized = single_join_dense
        factorized = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(normalized, dataset.target)
        standard = LogisticRegressionGD(max_iter=5, step_size=1e-3).fit(materialized, dataset.target)
        assert np.array_equal(factorized.predict(normalized), standard.predict(materialized))


class TestLearningBehaviour:
    def test_exact_update_learns_separable_data(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        model = LogisticRegressionGD(max_iter=200, step_size=1e-2, update="exact")
        model.fit(normalized, dataset.target)
        predictions = model.predict(normalized)
        assert accuracy(dataset.target, predictions) > 0.9

    def test_loss_history_decreases(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        model = LogisticRegressionGD(max_iter=30, step_size=1e-2, update="exact",
                                     track_history=True)
        model.fit(normalized, dataset.target)
        assert len(model.history_) == 30
        assert model.history_[-1] < model.history_[0]

    def test_probabilities_in_unit_interval(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        model = LogisticRegressionGD(max_iter=10, step_size=1e-2).fit(normalized, dataset.target)
        probabilities = model.predict_proba(normalized)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_predictions_are_signs(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        model = LogisticRegressionGD(max_iter=3, step_size=1e-3).fit(normalized, dataset.target)
        assert set(np.unique(model.predict(normalized))).issubset({-1.0, 1.0})

    def test_initial_weights_respected(self, single_join_dense):
        dataset, normalized, materialized = single_join_dense
        start = np.full((materialized.shape[1], 1), 0.5)
        a = LogisticRegressionGD(max_iter=2, step_size=1e-3).fit(normalized, dataset.target,
                                                                 initial_weights=start)
        b = LogisticRegressionGD(max_iter=2, step_size=1e-3).fit(materialized, dataset.target,
                                                                 initial_weights=start)
        assert np.allclose(a.coef_, b.coef_)
        assert not np.allclose(a.coef_, np.zeros_like(a.coef_))


class TestValidation:
    def test_mismatched_target_length(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            LogisticRegressionGD(max_iter=1).fit(normalized, np.ones(3))

    def test_two_dimensional_target_rejected(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        with pytest.raises(ShapeError):
            LogisticRegressionGD(max_iter=1).fit(normalized, np.ones((dataset.target.shape[0], 2)))

    def test_invalid_update_rule(self):
        with pytest.raises(ValueError):
            LogisticRegressionGD(update="newton")

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            LogisticRegressionGD(max_iter=0)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            LogisticRegressionGD(step_size=-1.0)

    def test_predict_before_fit(self, single_join_dense):
        _, normalized, _ = single_join_dense
        with pytest.raises(RuntimeError):
            LogisticRegressionGD().predict(normalized)

    def test_binarized_real_targets_work(self, single_join_dense):
        dataset, normalized, _ = single_join_dense
        continuous = np.asarray(normalized @ np.ones((normalized.shape[1], 1)))
        labels = binarize_labels(continuous)
        model = LogisticRegressionGD(max_iter=3, step_size=1e-3).fit(normalized, labels)
        assert model.coef_.shape == (normalized.shape[1], 1)
