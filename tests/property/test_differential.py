"""Property-based differential testing of every Table-1 operator.

The test generates random normalized schemas from a seeded RNG -- dimensions,
number of joins, PK-FK star vs. M:N join, dense vs. sparse base matrices,
base-matrix sparsity -- and checks, for every backend view of the same
logical matrix ``T``, that each Table-1 operator agrees with the plain-NumPy
reference computed on the materialized ``T`` to within ``1e-8``:

* ``normalized-dense`` / ``normalized-sparse`` -- the eager factorized
  rewrites of :class:`NormalizedMatrix` / :class:`MNNormalizedMatrix`;
* ``chunked``             -- the serial ORE-style :class:`ChunkedMatrix`;
* ``sharded``             -- the parallel factorized
  :class:`ShardedNormalizedMatrix` (random shard count, serial and thread
  pools);
* ``sharded-matrix``      -- the parallel plain :class:`ShardedMatrix`;
* ``streamed``            -- the out-of-core :class:`StreamedMatrix`
  (random batch size), whose operators visit the factorized operand one
  ``take_rows`` batch at a time;
* ``fused``               -- the factorized rewrites executed with the best
  available fused kernel set forced active (:mod:`repro.la.kernels`): the
  compiled Numba set when the ``[kernels]`` extra is installed, the
  vectorized NumPy set otherwise.  Either way the run proves the fused
  dispatch path end to end.

Each backend sees ``CASES_PER_BACKEND`` generated cases (>= 200), split into
batches so a failure pinpoints its seed range; the failing seed is embedded
in the assertion message for replay.  Everything is deterministically seeded,
so CI runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.shard import ShardedMatrix
from repro.core.stream import StreamedMatrix
from repro.la.chunked import ChunkedMatrix
from repro.la.ops import indicator_from_labels

ATOL = 1e-8
RTOL = 1e-8

BACKENDS = ("normalized-dense", "normalized-sparse", "chunked", "sharded",
            "sharded-matrix", "streamed", "fused")
BATCHES = 20
CASES_PER_BATCH = 10
CASES_PER_BACKEND = BATCHES * CASES_PER_BATCH  # 200 generated cases per backend

#: Operators the chunked / plain-sharded backends do not implement (they hold
#: the already-materialized matrix, so element-wise matrix arithmetic against
#: a second full-size operand is the only hole; chunked also lacks it).
_MATRIX_ELEMWISE = "elementwise-matrix"


@dataclass
class Case:
    """One generated schema: the logical matrix under test and its reference."""

    seed: int
    description: str
    dense: np.ndarray            # reference materialized T as plain ndarray
    normalized: object           # NormalizedMatrix or MNNormalizedMatrix


def _random_pk_fk(rng: np.random.Generator, seed: int, sparse_bases: bool) -> Case:
    """A star-schema PK-FK case: 1-2 joins, optional entity features."""
    num_joins = int(rng.integers(1, 3))
    n_s = int(rng.integers(1, 41))
    d_s = int(rng.integers(0, 5))
    entity = None
    if d_s > 0:
        entity = rng.standard_normal((n_s, d_s))
        if sparse_bases:
            entity = sp.csr_matrix(np.where(rng.random((n_s, d_s)) < 0.5, entity, 0.0))
    indicators, attributes = [], []
    for _ in range(num_joins):
        n_r = int(rng.integers(1, n_s + 1))
        d_r = int(rng.integers(1, 6))
        attribute = rng.standard_normal((n_r, d_r))
        if sparse_bases:
            attribute = sp.csr_matrix(np.where(rng.random((n_r, d_r)) < 0.6, attribute, 0.0))
        # Every attribute row referenced at least once (the paper's standing
        # assumption), remaining foreign keys uniform.
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_r))
        attributes.append(attribute)
    if entity is None and not indicators:
        entity = rng.standard_normal((n_s, 2))
    normalized = NormalizedMatrix(entity, indicators, attributes)
    dense = np.asarray(normalized.to_dense())
    return Case(seed, f"pkfk(joins={num_joins}, n_s={n_s}, sparse={sparse_bases})",
                dense, normalized)


def _random_snowflake(rng: np.random.Generator, seed: int, sparse_bases: bool) -> Case:
    """A snowflake case: one 2-3 hop chained indicator, optional extra star join."""
    from repro.la.chain import ChainedIndicator

    n_s = int(rng.integers(2, 41))
    d_s = int(rng.integers(0, 4))
    entity = None
    if d_s > 0:
        entity = rng.standard_normal((n_s, d_s))
        if sparse_bases:
            entity = sp.csr_matrix(np.where(rng.random((n_s, d_s)) < 0.5, entity, 0.0))
    num_hops = int(rng.integers(2, 4))
    hops = []
    rows = n_s
    for _ in range(num_hops):
        n_next = int(rng.integers(1, rows + 1))
        # Each hop surjective (every referenced row reached), so the chain
        # product satisfies the full-column indicator invariant too.
        labels = np.concatenate([np.arange(n_next), rng.integers(0, n_next, size=rows - n_next)])
        rng.shuffle(labels)
        hops.append(indicator_from_labels(labels, num_columns=n_next))
        rows = n_next
    d_r = int(rng.integers(1, 5))
    attribute = rng.standard_normal((rows, d_r))
    if sparse_bases:
        attribute = sp.csr_matrix(np.where(rng.random((rows, d_r)) < 0.6, attribute, 0.0))
    indicators: list = [ChainedIndicator(hops)]
    attributes: list = [attribute]
    if rng.random() < 0.5:  # mix a plain single-hop join next to the chain
        n_r = int(rng.integers(1, n_s + 1))
        d2 = int(rng.integers(1, 4))
        extra = rng.standard_normal((n_r, d2))
        if sparse_bases:
            extra = sp.csr_matrix(np.where(rng.random((n_r, d2)) < 0.6, extra, 0.0))
        labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_r))
        attributes.append(extra)
    normalized = NormalizedMatrix(entity, indicators, attributes)
    dense = np.asarray(normalized.to_dense())
    return Case(seed, f"snowflake(hops={num_hops}, n_s={n_s}, sparse={sparse_bases})",
                dense, normalized)


def _random_mn(rng: np.random.Generator, seed: int, sparse_bases: bool) -> Case:
    """A general M:N equi-join case with 2-3 component tables."""
    num_components = int(rng.integers(2, 4))
    n_out = int(rng.integers(2, 41))
    indicators, attributes = [], []
    for _ in range(num_components):
        n_rows = int(rng.integers(1, n_out + 1))
        width = int(rng.integers(1, 5))
        component = rng.standard_normal((n_rows, width))
        if sparse_bases:
            component = sp.csr_matrix(np.where(rng.random((n_rows, width)) < 0.6, component, 0.0))
        labels = np.concatenate([np.arange(n_rows), rng.integers(0, n_rows, size=n_out - n_rows)])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_rows))
        attributes.append(component)
    normalized = MNNormalizedMatrix(indicators, attributes)
    dense = np.asarray(normalized.to_dense())
    return Case(seed, f"mn(components={num_components}, n_out={n_out}, sparse={sparse_bases})",
                dense, normalized)


def generate_case(seed: int, force_density: str = "random") -> Case:
    """Deterministically generate one random schema from *seed*."""
    rng = np.random.default_rng(seed)
    if force_density == "dense":
        sparse_bases = False
    elif force_density == "sparse":
        sparse_bases = True
    else:
        sparse_bases = bool(rng.random() < 0.5)
    if rng.random() < 0.35:
        return _random_mn(rng, seed, sparse_bases)
    if rng.random() < 0.3:
        return _random_snowflake(rng, seed, sparse_bases)
    return _random_pk_fk(rng, seed, sparse_bases)


def build_view(backend: str, case: Case, rng: np.random.Generator):
    """Build the backend's view of the case's logical matrix."""
    if backend in ("normalized-dense", "normalized-sparse"):
        return case.normalized
    if backend == "chunked":
        chunk_rows = int(rng.integers(1, case.dense.shape[0] + 1))
        return ChunkedMatrix.from_matrix(case.dense, chunk_rows)
    if backend == "sharded":
        n_shards = int(rng.integers(1, 7))
        pool = "thread" if rng.random() < 0.3 else "serial"
        return case.normalized.shard(n_shards, pool=pool)
    if backend == "sharded-matrix":
        n_shards = int(rng.integers(1, 7))
        return ShardedMatrix.from_matrix(case.dense, n_shards, pool="serial")
    if backend == "streamed":
        batch_rows = int(rng.integers(1, case.dense.shape[0] + 1))
        return StreamedMatrix(case.normalized, batch_rows=batch_rows)
    if backend == "fused":
        return case.normalized
    raise AssertionError(f"unknown backend {backend!r}")


def _as_dense(value) -> np.ndarray:
    if hasattr(value, "to_dense"):
        return np.asarray(value.to_dense())
    if sp.issparse(value):
        return np.asarray(value.todense())
    return np.asarray(value)


def operator_checks(view, dense: np.ndarray, rng: np.random.Generator,
                    backend: str) -> List[Tuple[str, Callable[[], object], np.ndarray]]:
    """(name, compute, expected) triples covering the Table-1 operator set."""
    n, d = dense.shape
    x = rng.standard_normal((d, int(rng.integers(1, 4))))
    w = rng.standard_normal((int(rng.integers(1, 4)), n))
    y = rng.standard_normal((n, int(rng.integers(1, 3))))
    scalar = float(rng.uniform(0.5, 3.0))
    checks = [
        ("lmm", lambda: view @ x, dense @ x),
        ("rmm", lambda: w @ view, w @ dense),
        ("transposed-lmm", lambda: view.T @ y, dense.T @ y),
        ("crossprod", lambda: view.crossprod(), dense.T @ dense),
        ("rowsums", lambda: view.rowsums(), dense.sum(axis=1, keepdims=True)),
        ("colsums", lambda: view.colsums(), dense.sum(axis=0, keepdims=True)),
        ("total-sum", lambda: np.asarray(view.total_sum()), np.asarray(dense.sum())),
        ("scalar-mul", lambda: (view * scalar) @ x, (dense * scalar) @ x),
        ("scalar-radd", lambda: (scalar + view).rowsums(),
         (scalar + dense).sum(axis=1, keepdims=True)),
        ("scalar-rsub", lambda: (scalar - view).colsums(),
         (scalar - dense).sum(axis=0, keepdims=True)),
        ("scalar-div", lambda: (view / scalar).rowsums(),
         (dense / scalar).sum(axis=1, keepdims=True)),
        ("square", lambda: (view ** 2).colsums(), (dense ** 2).sum(axis=0, keepdims=True)),
    ]
    if hasattr(view, "__neg__"):  # ChunkedMatrix spells negation as * -1 only
        checks.append(("negate", lambda: (-view).rowsums(), -dense.sum(axis=1, keepdims=True)))
    if hasattr(view, "apply"):
        checks.append(("apply-exp", lambda: view.apply(np.exp).colsums(),
                       np.exp(dense).sum(axis=0, keepdims=True)))
    elif hasattr(view, "elementwise"):
        checks.append(("elementwise-exp", lambda: view.elementwise(np.exp).colsums(),
                       np.exp(dense).sum(axis=0, keepdims=True)))
    if backend != "chunked":
        other = rng.standard_normal((n, d))
        checks.append((_MATRIX_ELEMWISE, lambda: view * other, dense * other))
    return checks


def run_case(backend: str, seed: int) -> None:
    import contextlib

    from repro.la import kernels

    force = {"normalized-dense": "dense", "normalized-sparse": "sparse"}.get(backend, "random")
    case = generate_case(seed, force_density=force)
    rng = np.random.default_rng(seed + 1_000_003)
    view = build_view(backend, case, rng)
    context = (kernels.using(kernels.best_available()) if backend == "fused"
               else contextlib.nullcontext())
    with context:
        _run_checks(backend, seed, case, view, rng)


def _run_checks(backend: str, seed: int, case: Case, view, rng) -> None:
    for name, compute, expected in operator_checks(view, case.dense, rng, backend):
        actual = _as_dense(compute())
        expected = np.asarray(expected)
        assert actual.shape == expected.shape or actual.size == expected.size, (
            f"[seed={seed}] {backend}/{name} on {case.description}: "
            f"shape {actual.shape} != {expected.shape}"
        )
        assert np.allclose(actual.reshape(expected.shape), expected, atol=ATOL, rtol=RTOL), (
            f"[seed={seed}] {backend}/{name} on {case.description}: max abs diff "
            f"{np.abs(actual.reshape(expected.shape) - expected).max():.3e} exceeds {ATOL}"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch", range(BATCHES))
def test_differential(backend, batch):
    """Factorized / chunked / sharded operators agree with the dense reference."""
    for offset in range(CASES_PER_BATCH):
        run_case(backend, seed=batch * CASES_PER_BATCH + offset)


def test_case_count_meets_acceptance_floor():
    """The suite exercises at least 200 generated cases per backend."""
    assert CASES_PER_BACKEND >= 200


def test_generator_is_deterministic():
    """Same seed, same schema: required for CI reproducibility and replay."""
    a, b = generate_case(17), generate_case(17)
    assert a.description == b.description
    assert np.array_equal(a.dense, b.dense)


def test_generator_covers_all_join_families_and_densities():
    descriptions = [generate_case(seed).description for seed in range(CASES_PER_BACKEND)]
    assert any(d.startswith("pkfk") for d in descriptions)
    assert any(d.startswith("mn") for d in descriptions)
    assert any(d.startswith("snowflake") for d in descriptions)
    assert any("sparse=True" in d for d in descriptions)
    assert any("sparse=False" in d for d in descriptions)


# -- planner-chosen execution (engine="auto") ---------------------------------
# The same seeded schema generator drives the cost-based planner end to end: a
# fit with engine="auto" (whatever plan it picks -- materialized or
# factorized, eager or lazy, serial or sharded) must match the plain dense
# reference to the suite's 1e-8 tolerance, and the chosen Plan must be
# populated and explainable.  The planner gets the deterministic default
# calibration profile so no timing (or disk access) happens inside the test;
# correctness must hold for *any* profile, so fixing one loses no coverage.

AUTO_ENGINE_SEEDS = tuple(range(14))


def _deterministic_planner():
    from repro.core.planner import CalibrationProfile, Planner

    return Planner(calibration=CalibrationProfile.default())


def _assert_plan_populated(plan) -> None:
    assert plan is not None
    assert plan.candidates, "auto fit must score at least one candidate"
    text = plan.explain()
    assert "chosen:" in text
    assert "predicted" in text


@pytest.mark.parametrize("seed", AUTO_ENGINE_SEEDS)
def test_auto_engine_linreg_matches_dense_reference(seed):
    """engine="auto" GD linear regression equals the dense eager reference."""
    from repro.ml.linear_regression import LinearRegressionGD

    case = generate_case(seed)
    rng = np.random.default_rng(seed + 7_777_777)
    y = rng.standard_normal(case.dense.shape[0])
    auto = LinearRegressionGD(max_iter=3, step_size=1e-3, engine="auto")
    auto.planner = _deterministic_planner()
    auto.fit(case.normalized, y)
    reference = LinearRegressionGD(max_iter=3, step_size=1e-3).fit(case.dense, y)
    assert np.allclose(auto.coef_, reference.coef_, atol=ATOL, rtol=RTOL), (
        f"[seed={seed}] auto plan {auto.plan_.chosen.label} diverged on {case.description}: "
        f"max abs diff {np.abs(auto.coef_ - reference.coef_).max():.3e}"
    )
    _assert_plan_populated(auto.plan_)


@pytest.mark.parametrize("seed", AUTO_ENGINE_SEEDS[::3])
def test_auto_engine_logreg_matches_dense_reference(seed):
    """engine="auto" logistic regression equals the dense eager reference."""
    from repro.ml.logistic_regression import LogisticRegressionGD

    case = generate_case(seed)
    rng = np.random.default_rng(seed + 3_333_333)
    y = np.where(rng.standard_normal(case.dense.shape[0]) > 0, 1.0, -1.0)
    auto = LogisticRegressionGD(max_iter=3, engine="auto")
    auto.planner = _deterministic_planner()
    auto.fit(case.normalized, y)
    reference = LogisticRegressionGD(max_iter=3).fit(case.dense, y)
    assert np.allclose(auto.coef_, reference.coef_, atol=ATOL, rtol=RTOL), (
        f"[seed={seed}] auto plan {auto.plan_.chosen.label} diverged on {case.description}"
    )
    _assert_plan_populated(auto.plan_)


@pytest.mark.parametrize("seed", AUTO_ENGINE_SEEDS[::5])
def test_auto_engine_with_pinned_shards_matches_reference(seed):
    """engine="auto" composes with an explicit n_jobs: sharded, still exact."""
    from repro.ml.linear_regression import LinearRegressionGD

    case = generate_case(seed)
    if case.dense.shape[0] < 2:
        pytest.skip("sharding needs at least two rows")
    rng = np.random.default_rng(seed + 5_555_555)
    y = rng.standard_normal(case.dense.shape[0])
    auto = LinearRegressionGD(max_iter=3, step_size=1e-3, engine="auto", n_jobs=2)
    auto.planner = _deterministic_planner()
    auto.fit(case.normalized, y)
    assert auto.plan_.n_jobs == 2
    reference = LinearRegressionGD(max_iter=3, step_size=1e-3).fit(case.dense, y)
    assert np.allclose(auto.coef_, reference.coef_, atol=ATOL, rtol=RTOL), (
        f"[seed={seed}] sharded auto plan diverged on {case.description}"
    )
    _assert_plan_populated(auto.plan_)


# -- optional hypothesis layer -------------------------------------------------
# When hypothesis is installed (it is in the CI dev extras) an extra,
# derandomized exploration widens the seed space beyond the fixed grid above.
# The suite's 200-cases-per-backend guarantee never depends on it.
try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           backend=st.sampled_from(BACKENDS))
    @settings(max_examples=60, deadline=None, derandomize=True,
              suppress_health_check=[HealthCheck.too_slow])
    def test_differential_hypothesis(seed, backend):
        """Hypothesis-driven sweep over the full 31-bit seed space (derandomized)."""
        run_case(backend, seed)
except ImportError:  # pragma: no cover - hypothesis is optional
    pass
