"""Property-based differential testing of the incremental-maintenance layer.

Reuses the seeded schema generator of :mod:`tests.property.test_differential`
(star PK-FK and M:N join families, dense and sparse base matrices) and
checks, for 200+ generated cases, that **delta-patched state equals full
recompute** to within ``1e-8`` at every level of the stack:

* the successor matrix from ``apply_delta`` materializes identically to a
  normalized matrix rebuilt from scratch on the post-delta tables;
* every memoized join-invariant cache term (``crossprod``, LMM, transposed
  LMM, the aggregations) patched in place by the rank-|Δ| rules of
  :mod:`repro.core.rewrite.delta` equals the freshly computed term -- and is
  genuinely served from the cache (hits observed, no recompute);
* every execution backend view of the successor (chunked, sharded, plain
  sharded, streamed -- including the ``StreamedMatrix.apply_delta``
  passthrough) agrees with the post-delta dense reference;
* a serving partial patched by :func:`repro.serve.snapshot.patch_partial`
  is bit-compatible with :func:`~repro.serve.snapshot.compute_partial` on
  the post-delta table.

Deltas mix upserts and tombstone deletes; the failing seed is embedded in
every assertion message for replay.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.delta import MatrixDelta
from repro.core.lazy.expr import constant
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import DeltaPolicy
from repro.core.stream import StreamedMatrix
from repro.exceptions import DeltaError
from repro.serve.snapshot import compute_partial, patch_partial

from tests.property.test_differential import build_view, generate_case

ATOL = 1e-8
RTOL = 1e-8
BATCHES = 20
CASES_PER_BATCH = 10
CASES = BATCHES * CASES_PER_BATCH  # 200 generated delta cases

#: Backends whose view of the *successor* matrix must match the reference.
SUCCESSOR_BACKENDS = ("chunked", "sharded", "sharded-matrix", "streamed")

#: Forces patching whenever algebraically possible -- the path under test.
ALWAYS_PATCH = DeltaPolicy(threshold=1.0)


def _random_delta(rng: np.random.Generator, attribute, version: int = 1) -> MatrixDelta:
    """A seeded row delta on *attribute*: upsert usually, tombstone sometimes."""
    n_rows = attribute.shape[0]
    b = int(rng.integers(1, n_rows + 1))
    rows = rng.choice(n_rows, size=b, replace=False)
    if rng.random() < 0.25:
        return MatrixDelta.tombstone(rows, attribute, version=version)
    new_values = rng.standard_normal((b, attribute.shape[1]))
    return MatrixDelta.upsert(rows, new_values, attribute, version=version)


def _rebuild(normalized, table_index: int, delta: MatrixDelta):
    """Full recompute baseline: a fresh matrix over the post-delta tables."""
    attributes = list(normalized.attributes)
    attributes[table_index] = delta.apply_to(attributes[table_index])
    if isinstance(normalized, MNNormalizedMatrix):
        return MNNormalizedMatrix(normalized.indicators, attributes)
    return NormalizedMatrix(normalized.entity, normalized.indicators, attributes)


def _warm_terms(lazy, x, y):
    """Evaluate (and thereby memoize) every patchable join-invariant term."""
    return {
        "crossprod": np.asarray(lazy.crossprod().evaluate()),
        "lmm": np.asarray((lazy @ x).evaluate()),
        "tlmm": np.asarray((lazy.T @ y).evaluate()),
        "rowsums": np.asarray(lazy.rowsums().evaluate()),
        "colsums": np.asarray(lazy.colsums().evaluate()),
        "total_sum": np.asarray(lazy.total_sum().evaluate()),
    }


def _references(dense, x_arr, y_arr):
    return {
        "crossprod": dense.T @ dense,
        "lmm": dense @ x_arr,
        "tlmm": dense.T @ y_arr,
        "rowsums": dense.sum(axis=1, keepdims=True),
        "colsums": dense.sum(axis=0, keepdims=True),
        "total_sum": np.asarray(dense.sum()),
    }


def _as_dense(value) -> np.ndarray:
    if hasattr(value, "to_dense"):
        return np.asarray(value.to_dense())
    if sp.issparse(value):
        return np.asarray(value.todense())
    return np.asarray(value)


def run_delta_case(seed: int) -> None:
    case = generate_case(seed)
    rng = np.random.default_rng(seed + 9_999_991)
    table_index = int(rng.integers(0, len(case.normalized.attributes)))
    attribute = case.normalized.attributes[table_index]
    delta = _random_delta(rng, attribute)
    context = f"[seed={seed}] {case.description} table={table_index} {delta!r}"

    # Warm the lazy cache with every patchable term pre-delta.
    n, d = case.dense.shape
    x_arr = rng.standard_normal((d, int(rng.integers(1, 4))))
    y_arr = rng.standard_normal((n, int(rng.integers(1, 3))))
    x, y = constant(x_arr), constant(y_arr)
    lazy = case.normalized.lazy()
    pre = _warm_terms(lazy, x, y)
    for name, expected in _references(case.dense, x_arr, y_arr).items():
        assert np.allclose(pre[name], expected, atol=ATOL, rtol=RTOL), (
            f"{context}: pre-delta {name} disagrees with dense reference"
        )

    # The tentpole property: delta-patched successor == full recompute.
    successor = case.normalized.apply_delta(table_index, delta, policy=ALWAYS_PATCH)
    rebuilt = _rebuild(case.normalized, table_index, delta)
    dense_after = np.asarray(rebuilt.to_dense())
    assert np.allclose(np.asarray(successor.to_dense()), dense_after,
                       atol=ATOL, rtol=RTOL), (
        f"{context}: successor matrix != rebuilt matrix"
    )
    assert successor.version == case.normalized.version + 1, context

    cache = successor._lazy_cache
    assert cache.patched >= 6, (
        f"{context}: expected all six term kinds patched, got {cache.patched}"
    )
    hits_before = cache.hits
    post = _warm_terms(successor.lazy(), x, y)
    assert cache.hits > hits_before, (
        f"{context}: post-delta terms were recomputed, not served patched"
    )
    for name, expected in _references(dense_after, x_arr, y_arr).items():
        assert np.allclose(post[name], np.asarray(expected), atol=ATOL, rtol=RTOL), (
            f"{context}: cache-patched {name} != full recompute (max abs diff "
            f"{np.abs(post[name] - np.asarray(expected)).max():.3e})"
        )

    # Every backend view of the successor agrees with the reference.
    class _SuccessorCase:
        dense = dense_after
        normalized = successor

    for backend in SUCCESSOR_BACKENDS:
        if backend == "streamed":
            batch_rows = int(rng.integers(1, n + 1))
            streamed = StreamedMatrix(case.normalized, batch_rows=batch_rows)
            view = streamed.apply_delta(table_index, delta, policy=ALWAYS_PATCH)
        else:
            view = build_view(backend, _SuccessorCase, rng)
        got = _as_dense(view @ x_arr)
        assert np.allclose(got, dense_after @ x_arr, atol=ATOL, rtol=RTOL), (
            f"{context}: {backend} LMM over the successor diverged"
        )
        got = _as_dense(view.crossprod())
        assert np.allclose(got, dense_after.T @ dense_after, atol=ATOL, rtol=RTOL), (
            f"{context}: {backend} crossprod over the successor diverged"
        )

    # Serving partials: patch == recompute on the post-delta table.
    weights = rng.standard_normal((attribute.shape[1], 2))
    patched_partial = patch_partial(compute_partial(attribute, weights), delta, weights)
    fresh_partial = compute_partial(successor.attributes[table_index], weights)
    assert np.allclose(patched_partial, fresh_partial, atol=ATOL, rtol=RTOL), (
        f"{context}: patched serving partial != recomputed partial"
    )


@pytest.mark.parametrize("batch", range(BATCHES))
def test_delta_differential(batch):
    """Delta-patched state equals full recompute across the generated cases."""
    for offset in range(CASES_PER_BATCH):
        run_delta_case(seed=batch * CASES_PER_BATCH + offset)


def test_case_count_meets_acceptance_floor():
    assert CASES >= 200


# -- targeted properties beyond the generated sweep ---------------------------

def _small_star():
    from repro.la.ops import indicator_from_labels

    rng = np.random.default_rng(5)
    entity = rng.standard_normal((12, 2))
    k = indicator_from_labels(np.array([0, 1, 2, 3] * 3), num_columns=4)
    r = rng.standard_normal((4, 3))
    return NormalizedMatrix(entity, [k], [r]), r


def test_zero_threshold_policy_invalidates_instead_of_patching():
    """Correctness must not depend on the cost rule's verdict."""
    normalized, r = _small_star()
    lazy = normalized.lazy()
    lazy.crossprod().evaluate()
    delta = MatrixDelta.upsert([1], np.ones((1, 3)), r)
    successor = normalized.apply_delta(0, delta, policy=DeltaPolicy(threshold=0.0))
    cache = successor._lazy_cache
    assert cache.patched == 0 and cache.invalidated >= 1
    dense = np.asarray(successor.to_dense())
    assert np.allclose(np.asarray(successor.lazy().crossprod().evaluate()),
                       dense.T @ dense, atol=ATOL, rtol=RTOL)


def test_stale_delta_is_rejected():
    """A delta captured against a different table state must not patch."""
    normalized, r = _small_star()
    delta = MatrixDelta.upsert([0], np.zeros((1, 3)), r)
    stale = MatrixDelta(rows=delta.rows, old=delta.old + 1.0, new=delta.new,
                        num_rows=delta.num_rows)
    with pytest.raises(DeltaError, match="different version"):
        normalized.apply_delta(0, stale)


def test_growth_delta_rejected_on_matrices():
    """Row appends need a rebuild -- indicator shapes change."""
    normalized, r = _small_star()
    grow = MatrixDelta.upsert([r.shape[0]], np.zeros((1, 3)), r)
    with pytest.raises(DeltaError, match="appends rows"):
        normalized.apply_delta(0, grow)


def test_predecessor_cache_is_detached():
    """Post-delta, the predecessor must not serve entries patched for the successor."""
    normalized, r = _small_star()
    lazy = normalized.lazy()
    lazy.crossprod().evaluate()
    delta = MatrixDelta.upsert([2], np.full((1, 3), 7.0), r)
    successor = normalized.apply_delta(0, delta, policy=ALWAYS_PATCH)
    assert getattr(normalized, "_lazy_cache", None) is None
    assert getattr(normalized, "_lazy_token", None) is None
    assert successor._lazy_cache.patched >= 1
    # The predecessor still evaluates correctly (fresh cache, pre-delta data).
    dense = np.asarray(normalized.to_dense())
    assert np.allclose(np.asarray(normalized.lazy().crossprod().evaluate()),
                       dense.T @ dense, atol=ATOL, rtol=RTOL)


def test_chained_deltas_compose():
    """Version counters and patches accumulate across successive deltas."""
    normalized, r = _small_star()
    lazy = normalized.lazy()
    lazy.crossprod().evaluate()
    current, table = normalized, r
    for step in range(1, 4):
        rng = np.random.default_rng(step)
        delta = MatrixDelta.upsert([step], rng.standard_normal((1, 3)), table,
                                   version=step)
        current = current.apply_delta(0, delta, policy=ALWAYS_PATCH)
        table = current.attributes[0]
        assert current.version == step
    dense = np.asarray(current.to_dense())
    assert np.allclose(np.asarray(current.lazy().crossprod().evaluate()),
                       dense.T @ dense, atol=ATOL, rtol=RTOL)
