"""Fused kernel layer vs. the primitive-chain reference implementations.

The fused gather-multiply-reduce kernels (:mod:`repro.la.kernels`) claim that
executing each factorized operator as one loop over memoized indicator codes
beats chaining the generic sparse primitives (``K @ (R X)`` and friends) --
the Figure 3 operator workloads and the Figure 5 ML workloads at tuple ratio
>= 10 are where the paper's rewrites spend their time, so that is what this
module measures:

* **Operators** (Fig. 3 shapes) -- LMM ``T X``, transposed LMM ``T^T Y`` and
  ``crossprod(T)`` on a PK-FK star at tuple ratios 10 and 20.
* **ML** (Fig. 5 shapes) -- a few GD iterations of linear and logistic
  regression over the same normalized matrices.

Two comparisons, with different gates:

* ``numpy`` fused set vs. the ``reference`` primitive chains -- the NumPy
  kernels must **never lose** (speedup >= ``NUMPY_FLOOR``, one noise retry):
  they are the unconditional default, so a regression here slows every user.
* ``numba`` compiled set vs. the reference chains -- gated at
  >= ``COMPILED_TARGET`` (3x), but only when the ``[kernels]`` extra is
  installed; without Numba the compiled rows are skipped and reported as
  such in the results file.

Exactness is asserted between the sets at every measured point before any
timing, so a wrong kernel can never masquerade as a speedup.

Run styles:

* ``pytest benchmarks/bench_kernels.py`` -- timing-free exactness gates plus
  the pytest-benchmark timed sweep;
* ``python benchmarks/bench_kernels.py --smoke`` -- a reduced grid for CI;
  writes ``benchmarks/results/kernels.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import SpeedupResult, compare
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la import kernels
from repro.la.ops import indicator_from_labels
from repro.ml.linear_regression import LinearRegressionGD
from repro.ml.logistic_regression import LogisticRegressionGD

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "kernels.json"

FULL_GRID = dict(tuple_ratios=(10, 20), n_r=2_000, d_r=40, d_s=4,
                 x_cols=2, iters=3, repeats=5)
SMOKE_GRID = dict(tuple_ratios=(10,), n_r=1_000, d_r=40, d_s=4,
                  x_cols=2, iters=2, repeats=3)

#: the compiled set must win by this factor on every gated point
COMPILED_TARGET = 3.0
#: the NumPy set must never lose to the primitive chains (small noise margin)
NUMPY_FLOOR = 0.95


def _build_star(tuple_ratio: int, n_r: int, d_r: int, d_s: int,
                seed: int = 11) -> NormalizedMatrix:
    """A PK-FK star at the given tuple ratio (n_S = TR * n_R)."""
    rng = np.random.default_rng(seed)
    n_s = tuple_ratio * n_r
    entity = rng.standard_normal((n_s, d_s))
    labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(labels)
    indicator = indicator_from_labels(labels, num_columns=n_r)
    attribute = rng.standard_normal((n_r, d_r))
    return NormalizedMatrix(entity, [indicator], [attribute])


def _workloads(matrix: NormalizedMatrix, x_cols: int, iters: int,
               seed: int = 13) -> Dict[str, Callable[[], np.ndarray]]:
    """(name -> thunk) covering the Fig. 3 operators and Fig. 5 ML fits."""
    rng = np.random.default_rng(seed)
    n, d = matrix.shape
    x = rng.standard_normal((d, x_cols))
    y = rng.standard_normal((n, 1))
    labels = np.where(rng.standard_normal(n) > 0, 1.0, -1.0)

    return {
        "lmm": lambda: np.asarray(matrix @ x),
        "tlmm": lambda: np.asarray(matrix.T @ y),
        "crossprod": lambda: np.asarray(matrix.crossprod()),
        "linreg-gd": lambda: LinearRegressionGD(
            max_iter=iters, step_size=1e-6).fit(matrix, y).coef_,
        "logreg-gd": lambda: LogisticRegressionGD(
            max_iter=iters).fit(matrix, labels).coef_,
    }


def evaluate_point(tuple_ratio: int, n_r: int, d_r: int, d_s: int, x_cols: int,
                   iters: int, repeats: int, fused_set: str
                   ) -> Tuple[List[SpeedupResult], List[dict]]:
    """Time every workload under the reference chains vs. one fused set."""
    matrix = _build_star(tuple_ratio, n_r, d_r, d_s)
    results, records = [], []
    for name, thunk in _workloads(matrix, x_cols, iters).items():
        # Exactness first: the fused set must reproduce the reference values.
        with kernels.using("reference"):
            expected = thunk()
        with kernels.using(fused_set):
            actual = thunk()
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9)

        def run_reference():
            with kernels.using("reference"):
                return thunk()

        def run_fused():
            with kernels.using(fused_set):
                return thunk()

        timing = compare(
            run_reference, run_fused,
            parameters={"tuple_ratio": tuple_ratio, "workload": name},
            repeats=repeats,
        )
        results.append(timing)
        records.append({
            "workload": name,
            "tuple_ratio": tuple_ratio,
            "n_r": n_r,
            "d_r": d_r,
            "fused_set": fused_set,
            "reference_seconds": timing.materialized_seconds,
            "fused_seconds": timing.factorized_seconds,
            "speedup": timing.speedup,
        })
    return results, records


def run_sweep(tuple_ratios: Sequence[int], n_r: int, d_r: int, d_s: int,
              x_cols: int, iters: int, repeats: int
              ) -> Tuple[List[SpeedupResult], List[dict]]:
    sets = ["numpy"]
    if kernels.compiled_available():
        sets.append("numba")
    results, records = [], []
    for fused_set in sets:
        for tr in tuple_ratios:
            point_results, point_records = evaluate_point(
                tr, n_r, d_r, d_s, x_cols, iters, repeats, fused_set)
            results.extend(point_results)
            records.extend(point_records)
    return results, records


def write_results(records: List[dict]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_FILE.write_text(json.dumps({
        "compiled_available": kernels.compiled_available(),
        "best_set": kernels.best_available(),
        "points": records,
    }, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _passes(records: List[dict]) -> bool:
    for record in records:
        if record["fused_set"] == "numba" and record["speedup"] < COMPILED_TARGET:
            return False
        if record["fused_set"] == "numpy" and record["speedup"] < NUMPY_FLOOR:
            return False
    return True


def _format(records: List[dict]) -> str:
    return "\n".join(
        f"TR={r['tuple_ratio']:>3g} {r['fused_set']:>5s}/{r['workload']:<10s} "
        f"reference={r['reference_seconds'] * 1e3:8.3f} ms  "
        f"fused={r['fused_seconds'] * 1e3:8.3f} ms  speedup={r['speedup']:.2f}x"
        for r in records
    )


# -- timing-free gates (run in any environment) -------------------------------

def test_fused_sets_exact_on_benchmark_workloads():
    """Every available fused set reproduces the reference chains exactly."""
    matrix = _build_star(10, 200, 12, 3)
    for name, thunk in _workloads(matrix, 2, 2).items():
        with kernels.using("reference"):
            expected = thunk()
        for fused_set in kernels.available_sets():
            with kernels.using(fused_set):
                actual = thunk()
            np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9,
                                       err_msg=f"{fused_set}/{name}")


def test_results_file_is_self_describing():
    """The artifact records whether the compiled set was measured."""
    records = [{"workload": "lmm", "tuple_ratio": 10, "n_r": 10, "d_r": 2,
                "fused_set": "numpy", "reference_seconds": 1.0,
                "fused_seconds": 1.0, "speedup": 1.0}]
    path = write_results(records)
    payload = json.loads(path.read_text())
    assert payload["compiled_available"] == kernels.compiled_available()
    assert payload["points"] == records


# -- timed gate (pytest-benchmark) --------------------------------------------

def test_fused_kernels_meet_speedup_gates(benchmark):
    """numba >= 3x (when installed); numpy never loses to the chains."""
    def run():
        return run_sweep(**FULL_GRID)

    results, records = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(records)
    if not _passes(records):
        # one noise retry, like the other benchmark gates
        _, records = run_sweep(**dict(FULL_GRID, repeats=FULL_GRID["repeats"] + 2))
        write_results(records)
    assert _passes(records), _format(records)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced grid for CI")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    _, records = run_sweep(**grid)
    if not _passes(records):
        print("acceptance miss on first pass; re-measuring with more repeats")
        _, records = run_sweep(**dict(grid, repeats=grid["repeats"] + 2))
    path = write_results(records)
    print(f"wrote {path}")
    print(_format(records))
    compiled = kernels.compiled_available()
    print(f"compiled (numba) set measured: {compiled}")
    ok = _passes(records)
    gates = [f"numpy fused never loses (>= {NUMPY_FLOOR:g}x)"]
    if compiled:
        gates.append(f"numba fused >= {COMPILED_TARGET:g}x")
    print(" and ".join(gates) + f": {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
