"""Table 9: scalability on the ORE-style chunked backend, PK-FK join.

The paper runs logistic regression on Oracle R Enterprise over
larger-than-memory data and varies the feature ratio.  We emulate ORE's
``ore.rowapply`` execution with :class:`repro.la.ChunkedMatrix` (see docs/paper_map.md
for the substitution rationale): the materialized version streams the wide
join output chunk by chunk, while the factorized version streams only the
base-table chunks.
"""

import pytest

from _common import group_name, pkfk_dataset
from repro.la.chunked import ChunkedMatrix
from repro.ml import LogisticRegressionGD

FEATURE_RATIOS = (0.5, 1, 2, 4)
TUPLE_RATIO = 10
CHUNK_ROWS = 2_048
ITERATIONS = 3


@pytest.mark.parametrize("feature_ratio", FEATURE_RATIOS, ids=lambda f: f"FR{f:g}")
class TestChunkedLogisticPKFK:
    def test_materialized_chunked(self, benchmark, feature_ratio):
        benchmark.group = group_name("table9", "logreg-chunked", f"FR{feature_ratio:g}")
        dataset = pkfk_dataset(TUPLE_RATIO, feature_ratio)
        chunked = ChunkedMatrix.from_matrix(dataset.materialized, CHUNK_ROWS)
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(chunked, dataset.target), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, feature_ratio):
        benchmark.group = group_name("table9", "logreg-chunked", f"FR{feature_ratio:g}")
        dataset = pkfk_dataset(TUPLE_RATIO, feature_ratio)
        normalized = dataset.normalized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(normalized, dataset.target), rounds=2,
                           iterations=1, warmup_rounds=0)
