"""Out-of-core mini-batch streaming: factorized vs. materialized SGD.

Over the Section 5.1 decision-rule sweep grid, this module times one
mini-batch SGD logistic-regression fit (``solver="sgd"``) on the factorized
normalized matrix ("F": every batch is a ``take_rows`` slice of ``S`` and the
indicators, attribute tables shared) against the same fit on the materialized
join output ("M": every batch is a dense row slice).  The redundancy argument
of the paper carries over batch-by-batch, so factorized streaming should win
wherever the full-batch decision rule says "factorize"; the acceptance check
asserts it at the most redundant grid point (with one noise retry, like
``bench_auto_planner``).

``--smoke`` additionally exercises the full out-of-core path end to end: the
entity table is written to a CSV file, ``stream_normalized_batches`` reads it
back chunk by chunk under an artificial ``memory_budget`` smaller than the
materialized matrix (chunk size derived from the planner's memory model), and
``partial_fit`` trains logistic regression without the full ``S`` -- or the
join output -- ever being resident.

Run styles:

* ``pytest benchmarks/bench_streaming.py`` -- the full grid with
  pytest-benchmark timing;
* ``python benchmarks/bench_streaming.py --smoke`` -- a reduced grid plus the
  chunked-CSV demo for CI; writes ``benchmarks/results/streaming.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import SpeedupResult, compare
from repro.ml import LogisticRegressionGD

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "streaming.json"

# Scale note: mini-batch streaming repays factorization only once the
# arithmetic dominates the per-batch dispatch -- each factorized batch op
# re-runs the attribute-side product R @ x, so the win needs batch_rows well
# above n_R and a genuinely redundant corner (high TR x FR), exactly like the
# paper's full-batch decision rule.  The grid spans both regimes on purpose:
# the low-redundancy points *should* favour materialized batches.
FULL_GRID = dict(tuple_ratios=(2, 5, 10, 20), feature_ratios=(0.5, 1, 2, 4),
                 attribute_rows=2_000, entity_features=20, batch_size=8_192,
                 max_iter=3, repeats=3)
SMOKE_GRID = dict(tuple_ratios=(2, 20), feature_ratios=(0.5, 4),
                  attribute_rows=2_000, entity_features=20, batch_size=8_192,
                  max_iter=3, repeats=3)


def _labels_for(n_rows: int, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.where(rng.standard_normal(n_rows) > 0, 1.0, -1.0)


def evaluate_point(tuple_ratio: float, feature_ratio: float, attribute_rows: int,
                   entity_features: int, batch_size: int, max_iter: int,
                   repeats: int) -> Tuple[SpeedupResult, dict]:
    """Time factorized vs. materialized mini-batch SGD at one grid point."""
    from repro.bench.experiments import build_pk_fk_dataset

    dataset = build_pk_fk_dataset(tuple_ratio, feature_ratio,
                                  num_attribute_rows=attribute_rows,
                                  num_entity_features=entity_features)
    normalized, materialized = dataset.normalized, dataset.materialized
    y = _labels_for(normalized.shape[0])

    def fit(data):
        LogisticRegressionGD(max_iter=max_iter, solver="sgd",
                             batch_size=batch_size).fit(data, y)

    result = compare(
        lambda: fit(materialized),
        lambda: fit(normalized),
        parameters={"tuple_ratio": tuple_ratio, "feature_ratio": feature_ratio},
        repeats=repeats,
    )
    record = {
        "tuple_ratio": tuple_ratio,
        "feature_ratio": feature_ratio,
        "batch_size": batch_size,
        "n_rows": int(normalized.shape[0]),
        "materialized_seconds": result.materialized_seconds,
        "factorized_seconds": result.factorized_seconds,
        "speedup": result.speedup,
    }
    return result, record


def run_sweep(tuple_ratios: Sequence[float], feature_ratios: Sequence[float],
              attribute_rows: int, entity_features: int, batch_size: int,
              max_iter: int, repeats: int) -> Tuple[List[SpeedupResult], List[dict]]:
    results, records = [], []
    for tr in tuple_ratios:
        for fr in feature_ratios:
            result, record = evaluate_point(tr, fr, attribute_rows, entity_features,
                                            batch_size, max_iter, repeats)
            results.append(result)
            records.append(record)
    return results, records


def csv_streaming_demo(attribute_rows: int = 400, tuple_ratio: int = 10,
                       epochs: int = 2, budget_fraction: float = 0.05) -> dict:
    """Train through the chunked-CSV path under an artificial memory budget.

    Builds a small star schema, writes the entity table to a CSV file, streams
    it back with ``stream_normalized_batches`` at a ``memory_budget`` equal to
    *budget_fraction* of the materialized matrix's bytes, and ``partial_fit``s
    logistic regression over the batches.  Asserts that every batch's
    densified footprint respects the budget and that the learned coefficients
    are finite -- the acceptance criterion of the streaming issue.
    """
    from repro.core.planner.memory import DENSE_ELEMENT_BYTES
    from repro.relational import Table, stream_normalized_batches, write_csv

    rng = np.random.default_rng(7)
    n_r, n_s = attribute_rows, attribute_rows * tuple_ratio
    attribute = Table("attr", {
        "pk": np.arange(n_r).astype(float),
        "x1": rng.standard_normal(n_r),
        "x2": rng.standard_normal(n_r),
        "cat": np.asarray([f"c{i % 5}" for i in range(n_r)], dtype=object),
    })
    fk = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    rng.shuffle(fk)
    entity = Table("entity", {
        "fk": fk.astype(float),
        "amount": rng.standard_normal(n_s),
        "label": np.where(rng.standard_normal(n_s) > 0, 1.0, -1.0),
    })
    edges = [("fk", attribute, "pk", ["x1", "x2", "cat"])]

    d = 1 + 2 + 5  # entity feature + numeric attrs + one-hot categories
    materialized_bytes = n_s * d * DENSE_ELEMENT_BYTES
    budget = max(int(materialized_bytes * budget_fraction), d * DENSE_ELEMENT_BYTES)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "entity.csv"
        write_csv(entity, path)
        model = LogisticRegressionGD(step_size=1e-3)
        batch_sizes: List[int] = []
        rows_seen = 0
        for _ in range(epochs):
            rows_seen = 0
            for batch in stream_normalized_batches(
                    path, edges, entity_features=["amount"],
                    target_column="label", memory_budget=budget):
                assert batch.is_factorized
                footprint = batch.matrix.shape[0] * d * DENSE_ELEMENT_BYTES
                assert footprint <= budget + d * DENSE_ELEMENT_BYTES, (
                    f"batch footprint {footprint} exceeds budget {budget}"
                )
                model.partial_fit(batch.matrix, batch.target)
                batch_sizes.append(int(batch.matrix.shape[0]))
                rows_seen += int(batch.matrix.shape[0])
        assert rows_seen == n_s, "stream did not cover every entity row"
        assert np.all(np.isfinite(model.coef_)), "streamed fit produced non-finite weights"
    return {
        "n_rows": n_s,
        "columns": d,
        "materialized_bytes": materialized_bytes,
        "memory_budget": budget,
        "epochs": epochs,
        "batch_rows": max(batch_sizes),
        "num_batches_per_epoch": len(batch_sizes) // epochs,
    }


def write_results(records: List[dict], demo: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"points": records, "csv_streaming_demo": demo}
    RESULTS_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _most_redundant_wins(results: List[SpeedupResult]) -> bool:
    """Factorized streaming beats materialized at the most redundant point."""
    best = max(results, key=lambda r: (r.parameters["tuple_ratio"],
                                       r.parameters["feature_ratio"]))
    return best.speedup > 1.0


def test_streamed_factorized_beats_materialized(benchmark):
    """Factorized mini-batch SGD wins where the decision rule says factorize."""
    def run():
        return run_sweep(**FULL_GRID)

    results, records = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(records, csv_streaming_demo())
    assert len(results) == len(FULL_GRID["tuple_ratios"]) * len(FULL_GRID["feature_ratios"])
    assert _most_redundant_wins(results), "\n".join(
        f"TR={r.parameters['tuple_ratio']:g} FR={r.parameters['feature_ratio']:g}: "
        f"F {r.factorized_seconds * 1e3:.2f} ms vs M {r.materialized_seconds * 1e3:.2f} ms "
        f"({r.speedup:.2f}x)" for r in results
    )


def test_csv_streaming_under_budget():
    """The chunked-CSV ingestion path trains under the artificial budget."""
    demo = csv_streaming_demo()
    assert demo["memory_budget"] < demo["materialized_bytes"]
    assert demo["num_batches_per_epoch"] > 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid + chunked-CSV demo for CI")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    demo = csv_streaming_demo()
    print(f"chunked-CSV streaming demo: {demo['n_rows']} rows x {demo['columns']} cols, "
          f"budget {demo['memory_budget']} B of {demo['materialized_bytes']} B "
          f"materialized -> {demo['num_batches_per_epoch']} batches/epoch of "
          f"<= {demo['batch_rows']} rows: OK")

    results, records = run_sweep(**grid)
    if not _most_redundant_wins(results):
        # One retry with more repeats before declaring a regression; the gate
        # measures wall clock on shared runners.
        retry = dict(grid, repeats=grid["repeats"] + 2)
        print("acceptance miss on first pass; re-measuring with more repeats")
        results, records = run_sweep(**retry)
    path = write_results(records, demo)
    print(f"wrote {path}")
    for r in results:
        print(f"TR={r.parameters['tuple_ratio']:>4g} FR={r.parameters['feature_ratio']:>5g}  "
              f"M={r.materialized_seconds * 1e3:8.2f} ms  "
              f"F={r.factorized_seconds * 1e3:8.2f} ms  speedup={r.speedup:.2f}x")
    ok = _most_redundant_wins(results)
    print(f"factorized streaming at the most redundant point: {'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
