"""Table 12: data-preparation time versus ML runtime.

The paper shows that the one-time cost of constructing the normalized matrix
(building the sparse indicator matrices) is a small fraction of an iterative
ML algorithm's runtime -- and almost always smaller than materializing the
join output.  We benchmark the two preparation paths for every real-dataset
stand-in and, for one dataset, compare against the logistic-regression
runtime.
"""

import pathlib

import numpy as np
import pytest

from _common import group_name, real_dataset
from repro.bench.reporting import format_table
from repro.core.normalized_matrix import NormalizedMatrix
from repro.la.ops import indicator_from_labels
from repro.ml import LogisticRegressionGD

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DATASETS = ("expedia", "movies", "yelp", "walmart", "lastfm", "books", "flights")
SCALE = 0.01


def _fk_labels(dataset):
    """Recover the foreign-key label arrays from the stand-in's indicators."""
    return [np.asarray(indicator.argmax(axis=1)).ravel() for indicator in dataset.indicators]


@pytest.mark.parametrize("name", DATASETS)
class TestDataPreparation:
    def test_materialize_join(self, benchmark, name):
        """Paper's "M" preparation: compute the join output [S, K1 R1, ...]."""
        benchmark.group = group_name("table12", "prep", name)
        dataset = real_dataset(name, SCALE)
        normalized = dataset.normalized
        benchmark.pedantic(normalized.materialize, rounds=3, iterations=1, warmup_rounds=1)

    def test_build_normalized_matrix(self, benchmark, name):
        """Paper's "F" preparation: build indicator matrices from foreign keys."""
        benchmark.group = group_name("table12", "prep", name)
        dataset = real_dataset(name, SCALE)
        labels = _fk_labels(dataset)
        sizes = [attribute.shape[0] for attribute in dataset.attributes]

        def build():
            indicators = [indicator_from_labels(lab, num_columns=size)
                          for lab, size in zip(labels, sizes)]
            return NormalizedMatrix(dataset.entity, indicators, dataset.attributes,
                                    validate=False)

        benchmark.pedantic(build, rounds=3, iterations=1, warmup_rounds=1)


def test_table12_prep_to_training_ratio(benchmark):
    """Preparation time should be a small fraction of a 20-iteration training run."""
    import time

    dataset = real_dataset("walmart", SCALE)
    labels = _fk_labels(dataset)
    sizes = [attribute.shape[0] for attribute in dataset.attributes]

    def measure_ratio():
        start = time.perf_counter()
        indicators = [indicator_from_labels(lab, num_columns=size)
                      for lab, size in zip(labels, sizes)]
        normalized = NormalizedMatrix(dataset.entity, indicators, dataset.attributes,
                                      validate=False)
        prep_seconds = time.perf_counter() - start

        start = time.perf_counter()
        LogisticRegressionGD(max_iter=20, step_size=1e-4).fit(normalized, dataset.binary_target)
        train_seconds = time.perf_counter() - start
        return prep_seconds, train_seconds

    prep_seconds, train_seconds = benchmark.pedantic(measure_ratio, rounds=1, iterations=1)
    ratio = prep_seconds / train_seconds
    RESULTS_DIR.mkdir(exist_ok=True)
    table = format_table(
        ["dataset", "prep (s)", "20-iteration logistic regression (s)", "ratio"],
        [["walmart", f"{prep_seconds:.4f}", f"{train_seconds:.4f}", f"{ratio:.3f}"]],
    )
    (RESULTS_DIR / "table12_data_prep.txt").write_text(table + "\n")
    # The paper reports ratios of a few percent; allow generous slack at laptop scale.
    assert ratio < 0.5
