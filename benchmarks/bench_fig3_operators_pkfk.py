"""Figure 3: speed-ups of factorized LA operators for a PK-FK join.

The paper's Figure 3 shows speed-up heat maps over the (tuple ratio, feature
ratio) grid for four key operators: scalar multiplication, LMM, cross-product
and pseudo-inverse.  Each parameter point below benchmarks the materialized
("M") and Morpheus-factorized ("F") versions back to back; the speed-up is the
ratio of the two rows in the pytest-benchmark group.  A full grid sweep is
also timed once and written to ``benchmarks/results/fig3_grid.txt`` in the
same layout as the paper's heat maps.
"""

import pathlib

import pytest

from _common import (
    PKFK_POINTS,
    group_name,
    lmm_operand,
    materialized_cache,
    pkfk_dataset,
    point_id,
)
from repro.bench import experiments
from repro.bench.reporting import format_speedup_grid

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.mark.parametrize("point", PKFK_POINTS, ids=point_id)
class TestScalarMultiplication:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig3", "scalar-mult", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized * 3.0, rounds=5, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig3", "scalar-mult", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(lambda: normalized * 3.0, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", PKFK_POINTS, ids=point_id)
class TestLMM:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig3", "lmm", point_id(point))
        materialized = materialized_cache(*point)
        operand = lmm_operand(materialized.shape[1])
        benchmark.pedantic(lambda: materialized @ operand, rounds=5, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig3", "lmm", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        operand = lmm_operand(normalized.shape[1])
        benchmark.pedantic(lambda: normalized @ operand, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", PKFK_POINTS, ids=point_id)
class TestCrossprod:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig3", "crossprod", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.T @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig3", "crossprod", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.crossprod, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", PKFK_POINTS[-2:], ids=point_id)
class TestPseudoInverse:
    """Restricted to the two most redundant points; pinv dominates the suite otherwise."""

    def test_materialized(self, benchmark, point):
        import numpy as np

        benchmark.group = group_name("fig3", "pseudoinverse", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: np.linalg.pinv(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig3", "pseudoinverse", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.ginv, rounds=2, iterations=1, warmup_rounds=0)


def test_fig3_grid_report(benchmark):
    """Regenerate the Figure 3 speed-up grid for LMM and write it to results/."""
    experiment = next(e for e in experiments.pk_fk_operator_experiments() if e.name == "lmm")

    def run_sweep():
        return experiments.run_pk_fk_operator_sweep(
            experiment, tuple_ratios=(2, 5, 10, 20), feature_ratios=(0.5, 1, 2, 4),
            num_attribute_rows=1_000, repeats=1)

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    grid = format_speedup_grid(results, row_key="feature_ratio", col_key="tuple_ratio")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig3_grid.txt").write_text(
        "Figure 3 (LMM): factorized-over-materialized speed-ups\n" + grid + "\n")
    assert len(results) == 16
