"""Online scoring: the factorized serving subsystem vs. materialized rows.

Over the Section 5.1 decision-rule sweep grid, this module compares two ways
of serving point scoring requests for a model trained over a star schema:

* **M (materialized per-request)** -- the conventional serving baseline: the
  join output ``T`` is kept resident (``n_S x d`` dense) and every request
  computes its own row score ``T[i] @ w``.
* **F (factorized service)** -- the :mod:`repro.serve` path: per-table
  partial scores ``R_k @ w_k`` precomputed once, requests answered by an
  entity-local dot product plus one O(1) partial gather per join key, and
  the request stream micro-batched by the :class:`ScoringService`.

The redundancy argument of the paper carries over to inference: the
factorized path touches ``d_S`` columns per request instead of ``d`` and its
resident state is a small multiple of the *base* tables rather than the
join output -- the memory ratio grows linearly with the tuple ratio, which
is what makes the materialized baseline untenable at serving scale.  The
acceptance check asserts a >= 5x throughput win at every grid point with
tuple ratio >= 10 (with one noise retry, like the other benchmark gates);
secondary columns record the batched-materialized and per-request factorized
timings for an honest like-for-like picture, plus the resident-bytes ratio.

Run styles:

* ``pytest benchmarks/bench_serving.py`` -- the full grid with
  pytest-benchmark timing;
* ``python benchmarks/bench_serving.py --smoke`` -- a reduced grid for CI;
  writes ``benchmarks/results/serving.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import SpeedupResult, compare
from repro.ml import LinearRegressionGD
from repro.serve import FactorizedScorer, ScoringService

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "serving.json"

FULL_GRID = dict(tuple_ratios=(2, 5, 10, 20), feature_ratios=(0.5, 1, 2, 4),
                 attribute_rows=2_000, entity_features=20, num_requests=2_000,
                 micro_batch=256, repeats=3)
SMOKE_GRID = dict(tuple_ratios=(2, 20), feature_ratios=(0.5, 4),
                  attribute_rows=1_000, entity_features=20, num_requests=1_000,
                  micro_batch=256, repeats=3)

#: acceptance: factorized point-serving throughput >= 5x materialized
#: per-request scoring wherever the tuple ratio is at least this.
TARGET_SPEEDUP = 5.0
TARGET_TUPLE_RATIO = 10


def evaluate_point(tuple_ratio: float, feature_ratio: float, attribute_rows: int,
                   entity_features: int, num_requests: int, micro_batch: int,
                   repeats: int) -> Tuple[SpeedupResult, dict]:
    """Time factorized vs. materialized point serving at one grid point."""
    from repro.bench.experiments import build_pk_fk_dataset

    dataset = build_pk_fk_dataset(tuple_ratio, feature_ratio,
                                  num_attribute_rows=attribute_rows,
                                  num_entity_features=entity_features)
    normalized = dataset.normalized
    dense = np.asarray(dataset.materialized)
    rng = np.random.default_rng(41)
    y = rng.standard_normal(normalized.shape[0])
    model = LinearRegressionGD(max_iter=2).fit(normalized, y)
    w = model.coef_

    scorer = FactorizedScorer.from_model(model, normalized)
    service = ScoringService(scorer, max_batch_size=micro_batch, cache_size=0)
    requests = rng.integers(0, normalized.shape[0], size=num_requests)

    # Serving answers must agree before any timing means anything.
    reference = dense[requests] @ w
    np.testing.assert_allclose(service.score_rows(requests), reference,
                               rtol=1e-9, atol=1e-9)

    def materialized_per_request():
        for i in requests:
            dense[i:i + 1] @ w

    def factorized_service():
        service.score_rows(requests)

    result = compare(
        materialized_per_request,
        factorized_service,
        parameters={"tuple_ratio": tuple_ratio, "feature_ratio": feature_ratio},
        repeats=repeats,
    )

    # Secondary diagnostics: like-for-like batched and per-request timings.
    start = time.perf_counter()
    for chunk_start in range(0, num_requests, micro_batch):
        dense[requests[chunk_start:chunk_start + micro_batch]] @ w
    materialized_batched = time.perf_counter() - start
    start = time.perf_counter()
    for i in requests[:200]:
        scorer.score_rows([i])
    factorized_per_request = (time.perf_counter() - start) * (num_requests / 200)

    def _resident_bytes(block) -> int:
        if block is None:
            return 0
        if hasattr(block, "nbytes"):  # dense
            return int(block.nbytes)
        return int(block.data.nbytes + block.indices.nbytes + block.indptr.nbytes)  # CSR

    factorized_bytes = scorer.partial_bytes + sum(
        _resident_bytes(block) for block in [normalized.entity, *normalized.indicators]
    )
    record = {
        "tuple_ratio": tuple_ratio,
        "feature_ratio": feature_ratio,
        "n_rows": int(normalized.shape[0]),
        "n_cols": int(normalized.shape[1]),
        "num_requests": num_requests,
        "micro_batch": micro_batch,
        "materialized_seconds": result.materialized_seconds,
        "factorized_seconds": result.factorized_seconds,
        "speedup": result.speedup,
        "materialized_batched_seconds": materialized_batched,
        "factorized_per_request_seconds": factorized_per_request,
        "materialized_bytes": int(dense.nbytes),
        "factorized_resident_bytes": int(factorized_bytes),
        "memory_ratio": dense.nbytes / factorized_bytes if factorized_bytes else float("inf"),
    }
    return result, record


def run_sweep(tuple_ratios: Sequence[float], feature_ratios: Sequence[float],
              attribute_rows: int, entity_features: int, num_requests: int,
              micro_batch: int, repeats: int) -> Tuple[List[SpeedupResult], List[dict]]:
    results, records = [], []
    for tr in tuple_ratios:
        for fr in feature_ratios:
            result, record = evaluate_point(tr, fr, attribute_rows, entity_features,
                                            num_requests, micro_batch, repeats)
            results.append(result)
            records.append(record)
    return results, records


def write_results(records: List[dict]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_FILE.write_text(json.dumps({"points": records}, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _acceptance(results: List[SpeedupResult]) -> Dict[str, bool]:
    """Per-point pass/fail at the decision-rule corner the issue targets."""
    verdict = {}
    for r in results:
        if r.parameters["tuple_ratio"] >= TARGET_TUPLE_RATIO:
            key = f"TR={r.parameters['tuple_ratio']:g},FR={r.parameters['feature_ratio']:g}"
            verdict[key] = bool(r.speedup >= TARGET_SPEEDUP)
    return verdict


def _passes(results: List[SpeedupResult]) -> bool:
    verdict = _acceptance(results)
    return bool(verdict) and all(verdict.values())


def _format(results: List[SpeedupResult]) -> str:
    return "\n".join(
        f"TR={r.parameters['tuple_ratio']:>4g} FR={r.parameters['feature_ratio']:>5g}  "
        f"M={r.materialized_seconds * 1e3:8.2f} ms  "
        f"F={r.factorized_seconds * 1e3:8.2f} ms  speedup={r.speedup:.1f}x"
        for r in results
    )


def test_factorized_serving_beats_materialized(benchmark):
    """Factorized point serving wins >= 5x wherever the tuple ratio is >= 10."""
    def run():
        return run_sweep(**FULL_GRID)

    results, records = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(records)
    assert len(results) == len(FULL_GRID["tuple_ratios"]) * len(FULL_GRID["feature_ratios"])
    assert _passes(results), _format(results)


def test_serving_memory_footprint_scales_with_tuple_ratio():
    """Resident serving state stays near base-table size (timing-independent)."""
    _, low = evaluate_point(2, 2, 400, 10, num_requests=200, micro_batch=64, repeats=1)
    _, high = evaluate_point(20, 2, 400, 10, num_requests=200, micro_batch=64, repeats=1)
    assert high["memory_ratio"] > low["memory_ratio"]
    assert high["memory_ratio"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced grid for CI")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    results, records = run_sweep(**grid)
    if not _passes(results):
        retry = dict(grid, repeats=grid["repeats"] + 2)
        print("acceptance miss on first pass; re-measuring with more repeats")
        results, records = run_sweep(**retry)
    path = write_results(records)
    print(f"wrote {path}")
    print(_format(results))
    for record in records:
        print(f"TR={record['tuple_ratio']:>4g} FR={record['feature_ratio']:>5g}  "
              f"resident: F {record['factorized_resident_bytes'] / 1e6:7.2f} MB vs "
              f"M {record['materialized_bytes'] / 1e6:7.2f} MB "
              f"({record['memory_ratio']:.1f}x)")
    ok = _passes(results)
    print(f"factorized serving >= {TARGET_SPEEDUP:g}x at TR >= {TARGET_TUPLE_RATIO}: "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
