"""Validation of the cost-based adaptive planner (``engine="auto"``).

Over the same (tuple ratio, feature ratio) sweep grid as the Section 5.1
decision-rule benchmark, this module measures a logistic-regression GD fit
under every hand-picked configuration -- materialized vs. factorized layout x
eager vs. lazy engine x serial vs. 2-shard execution -- then asks the planner
to choose.  The acceptance bar: at every grid point the configuration
``engine="auto"`` selects must run within 1.5x of the fastest hand-picked
configuration (selection quality is what is scored; the planner's own
overhead is a one-time microbenchmark probe cached on disk).

Run styles:

* ``pytest benchmarks/bench_auto_planner.py`` -- the full grid with
  pytest-benchmark timing (like every other module here);
* ``python benchmarks/bench_auto_planner.py --smoke`` -- a reduced grid for
  CI; writes ``benchmarks/results/auto_planner.json`` (per-point plans +
  evaluations + the calibration profile) as a build artifact either way.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bench.harness import PlanEvaluation, measure
from repro.ml.logistic_regression import LogisticRegressionGD

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "auto_planner.json"

#: acceptance factor: auto-picked plan vs. fastest hand-picked configuration
ACCEPTANCE_FACTOR = 1.5

#: hand-picked configurations: (factorized, engine, n_jobs)
Config = Tuple[bool, str, int]
HAND_PICKED: Tuple[Config, ...] = (
    (False, "eager", 1),
    (False, "lazy", 1),
    (True, "eager", 1),
    (True, "lazy", 1),
    (False, "eager", 2),
    (True, "eager", 2),
)

FULL_GRID = dict(tuple_ratios=(1, 2, 5, 10, 20), feature_ratios=(0.25, 0.5, 1, 2, 4),
                 attribute_rows=1_500, max_iter=5, repeats=3)
# Smoke scale: big enough that per-fit timings are in the milliseconds (a
# 300-row grid measures ~100 us fits, which cold-runner noise can spread by
# several x between identical workloads).
SMOKE_GRID = dict(tuple_ratios=(2, 10), feature_ratios=(0.5, 2),
                  attribute_rows=600, max_iter=5, repeats=3)


def _config_label(config: Config) -> str:
    factorized, engine, n_jobs = config
    layout = "factorized" if factorized else "materialized"
    shards = f" x{n_jobs}" if n_jobs > 1 else ""
    return f"{layout}/{engine}{shards}"


def _labels_for(n_rows: int, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.where(rng.standard_normal(n_rows) > 0, 1.0, -1.0)


def evaluate_point(tuple_ratio: float, feature_ratio: float, attribute_rows: int,
                   max_iter: int, repeats: int) -> Tuple[PlanEvaluation, dict]:
    """Measure every configuration at one grid point and score the auto pick."""
    from repro.bench.experiments import build_pk_fk_dataset

    dataset = build_pk_fk_dataset(tuple_ratio, feature_ratio,
                                  num_attribute_rows=attribute_rows)
    normalized, materialized = dataset.normalized, dataset.materialized
    y = _labels_for(normalized.shape[0])

    def fit(config: Config):
        factorized, engine, n_jobs = config
        data = normalized if factorized else materialized
        LogisticRegressionGD(max_iter=max_iter, engine=engine, n_jobs=n_jobs
                             ).fit(data, y)

    # One untimed pass over every configuration first: the very first fits of
    # a process pay one-time costs (lazy-engine imports, BLAS threading
    # warm-up) that would otherwise land on whichever config is measured
    # first and masquerade as a planner miss on cold CI runners.
    for config in HAND_PICKED:
        fit(config)

    timings: Dict[Config, float] = {}
    for config in HAND_PICKED:
        timings[config] = measure(lambda c=config: fit(c),
                                  label=_config_label(config), repeats=repeats).best

    auto = LogisticRegressionGD(max_iter=max_iter, engine="auto")
    auto.fit(normalized, y)
    plan = auto.plan_
    auto_config: Config = (plan.factorized, plan.engine, plan.n_jobs)
    if auto_config not in timings:  # plan outside the hand-picked set: measure it
        timings[auto_config] = measure(lambda: fit(auto_config),
                                       label=_config_label(auto_config),
                                       repeats=repeats).best

    best_config = min(HAND_PICKED, key=lambda c: timings[c])
    evaluation = PlanEvaluation(
        parameters={"tuple_ratio": tuple_ratio, "feature_ratio": feature_ratio},
        auto_label=_config_label(auto_config),
        auto_seconds=timings[auto_config],
        best_label=_config_label(best_config),
        best_seconds=timings[best_config],
    )
    record = {
        "tuple_ratio": tuple_ratio,
        "feature_ratio": feature_ratio,
        "timings": {_config_label(c): s for c, s in timings.items()},
        "auto": _config_label(auto_config),
        "best": _config_label(best_config),
        "slowdown": evaluation.slowdown,
        "plan": plan.to_json(),
    }
    return evaluation, record


def run_sweep(tuple_ratios: Sequence[float], feature_ratios: Sequence[float],
              attribute_rows: int, max_iter: int, repeats: int
              ) -> Tuple[List[PlanEvaluation], List[dict]]:
    evaluations, records = [], []
    for tr in tuple_ratios:
        for fr in feature_ratios:
            evaluation, record = evaluate_point(tr, fr, attribute_rows,
                                                max_iter, repeats)
            evaluations.append(evaluation)
            records.append(record)
    return evaluations, records


def write_results(records: List[dict]) -> pathlib.Path:
    from repro.core.planner import get_profile
    from repro.la.backend import backend_capabilities

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "acceptance_factor": ACCEPTANCE_FACTOR,
        "calibration": get_profile().to_json(),
        "backends": backend_capabilities(),
        "points": records,
    }
    RESULTS_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def test_auto_planner_within_factor_of_best(benchmark):
    """engine="auto" is never > 1.5x off the fastest hand-picked configuration."""
    def run():
        return run_sweep(**FULL_GRID)

    evaluations, records = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(records)
    assert len(evaluations) == len(FULL_GRID["tuple_ratios"]) * len(FULL_GRID["feature_ratios"])
    violations = [e for e in evaluations if not e.within(ACCEPTANCE_FACTOR)]
    assert not violations, "\n".join(
        f"TR={e.parameters['tuple_ratio']:g} FR={e.parameters['feature_ratio']:g}: "
        f"auto {e.auto_label} {e.auto_seconds * 1e3:.2f} ms vs best {e.best_label} "
        f"{e.best_seconds * 1e3:.2f} ms ({e.slowdown:.2f}x)"
        for e in violations
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (seconds, not minutes)")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    evaluations, records = run_sweep(**grid)
    if not all(ev.within(ACCEPTANCE_FACTOR) for ev in evaluations):
        # One retry with more repeats before declaring a regression: the gate
        # measures wall clock on shared runners, and a single noisy repeat
        # must not fail the build when the selection itself is sound.
        retry = dict(grid, repeats=grid["repeats"] + 2)
        print("acceptance miss on first pass; re-measuring with more repeats")
        evaluations, records = run_sweep(**retry)
    path = write_results(records)
    print(f"wrote {path}")
    worst = 0.0
    for ev in evaluations:
        print(f"TR={ev.parameters['tuple_ratio']:>4g} FR={ev.parameters['feature_ratio']:>5g}  "
              f"auto={ev.auto_label:<22} best={ev.best_label:<22} "
              f"slowdown={ev.slowdown:.2f}x")
        worst = max(worst, ev.slowdown)
    ok = all(ev.within(ACCEPTANCE_FACTOR) for ev in evaluations)
    print(f"worst slowdown {worst:.2f}x (acceptance {ACCEPTANCE_FACTOR}x): "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
