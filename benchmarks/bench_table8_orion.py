"""Table 8: Morpheus versus the ML algorithm-specific Orion tool.

The paper compares the speed-up of Morpheus-factorized logistic regression
against Orion's factorized learning over a dense PK-FK join while varying the
feature ratio.  We benchmark three implementations at each feature ratio:

* the materialized baseline (the common denominator),
* the Orion-style hash/associative-array implementation, and
* Morpheus's pure-LA factorized version.

Morpheus should achieve comparable or better runtimes than Orion (Table 8's
takeaway), both being faster than the materialized baseline.
"""

import numpy as np
import pytest

from _common import group_name, pkfk_dataset
from repro.baselines.orion import OrionLogisticRegression
from repro.ml import LogisticRegressionGD

FEATURE_RATIOS = (1, 2, 4)
TUPLE_RATIO = 10
ITERATIONS = 3
# Orion streams Python-level rows, so use a smaller base than the pure-LA benches.
ATTRIBUTE_ROWS = 200


def _dataset(feature_ratio):
    return pkfk_dataset(TUPLE_RATIO, feature_ratio, attribute_rows=ATTRIBUTE_ROWS,
                        entity_features=10)


@pytest.mark.parametrize("feature_ratio", FEATURE_RATIOS, ids=lambda f: f"FR{f}")
class TestOrionComparison:
    def test_materialized(self, benchmark, feature_ratio):
        benchmark.group = group_name("table8", "logreg", f"FR{feature_ratio}")
        dataset = _dataset(feature_ratio)
        materialized = dataset.materialized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-3)
        benchmark.pedantic(lambda: model.fit(materialized, dataset.target), rounds=2,
                           iterations=1, warmup_rounds=0)

    def test_orion(self, benchmark, feature_ratio):
        benchmark.group = group_name("table8", "logreg", f"FR{feature_ratio}")
        dataset = _dataset(feature_ratio)
        labels = np.asarray(dataset.indicators[0].argmax(axis=1)).ravel()
        model = OrionLogisticRegression(max_iter=ITERATIONS, step_size=1e-3)
        benchmark.pedantic(
            lambda: model.fit(dataset.entity, labels, dataset.attributes[0], dataset.target),
            rounds=1, iterations=1, warmup_rounds=0)

    def test_morpheus(self, benchmark, feature_ratio):
        benchmark.group = group_name("table8", "logreg", f"FR{feature_ratio}")
        dataset = _dataset(feature_ratio)
        normalized = dataset.normalized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-3)
        benchmark.pedantic(lambda: model.fit(normalized, dataset.target), rounds=2,
                           iterations=1, warmup_rounds=0)
