"""Top-k scoring: zone-map bound pruning vs. the full-scan baseline.

The top-k subsystem claims that "give me the k best entities" should cost
work proportional to the blocks that *could* hold winners, not to ``N`` --
whenever high scores cluster.  This module measures that claim on a skewed
clustered workload (heavy-tailed attribute scaling, entity rows sorted by
their foreign key so winners share blocks, the layout range partitioning or
time-ordered ingestion naturally produces):

* **Latency** -- :meth:`FactorizedScorer.top_k` (seed sample, blocks visited
  in decreasing bound order, prune on the k-th best) versus the baseline of
  one vectorized ``score_rows`` over all ``N`` rows followed by the
  ``full_scan_top_k`` selection.  The acceptance gate asserts the pruned
  search is >= 3x faster wherever ``k <= N / 100`` and ``N >= 1e5`` (with
  one noise retry, like the other benchmark gates).
* **Work skipped** (timing-independent) -- the pruned search must skip a
  majority of blocks and score fewer than half the rows at those points; the
  same stats are also written to the results file as a diagnostic.

Both sides return identical rows and scores -- exactness is asserted at
every measured point, so a pruning bug can never masquerade as a speedup.

Run styles:

* ``pytest benchmarks/bench_topk.py`` -- the full grid with pytest-benchmark
  timing plus timing-independent exactness/pruning gates;
* ``python benchmarks/bench_topk.py --smoke`` -- a reduced grid for CI;
  writes ``benchmarks/results/topk.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.bench.harness import SpeedupResult, compare
from repro.core.normalized_matrix import NormalizedMatrix
from repro.ml import ServingExport
from repro.serve import FactorizedScorer
from repro.serve.topk import full_scan_top_k

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "topk.json"

FULL_GRID = dict(entity_rows=(100_000, 200_000), ks=(10, 100, 1000),
                 table_rows=256, table_width=40, outputs=2, repeats=5)
SMOKE_GRID = dict(entity_rows=(100_000,), ks=(100, 1000),
                  table_rows=256, table_width=40, outputs=2, repeats=3)

#: acceptance: the pruned search beats the full scan by at least this
#: wherever k <= N / TARGET_K_DIVISOR and N >= TARGET_ENTITY_ROWS.
TARGET_SPEEDUP = 3.0
TARGET_K_DIVISOR = 100
TARGET_ENTITY_ROWS = 100_000

#: timing-independent floor: at accepted points the search must skip a
#: majority of blocks and score fewer than half the rows.
SKIP_MAJORITY = 0.5


def _build_skewed_scorer(entity_rows: int, table_rows: int, table_width: int,
                         outputs: int, block_size: int = 1024,
                         seed: int = 29) -> FactorizedScorer:
    """A star-schema scorer whose score mass clusters in few blocks.

    Each attribute row gets a log-normal scale factor, so a handful of
    attribute rows dominate the score range; sorting the entity's foreign
    keys gives rows that share an attribute row adjacent positions -- the
    clustered layout (range partitioning, time-ordered ingestion) that makes
    zone maps selective.  Entity features are kept small so the gathered
    partial dominates each score.
    """
    rng = np.random.default_rng(seed)
    entity = 0.01 * rng.standard_normal((entity_rows, 4))
    codes = np.sort(np.concatenate([
        rng.permutation(table_rows),  # PK-FK cover: every attribute row used
        rng.integers(0, table_rows, entity_rows - table_rows),
    ]))
    indicator = sparse.csr_matrix(
        (np.ones(entity_rows), (np.arange(entity_rows), codes)),
        shape=(entity_rows, table_rows),
    )
    scale = np.exp(3.0 * rng.standard_normal((table_rows, 1)))
    table = scale * rng.standard_normal((table_rows, table_width))
    normalized = NormalizedMatrix(entity, [indicator], [table])
    export = ServingExport(
        "linear_regression",
        rng.standard_normal((4 + table_width, outputs)),
    )
    return FactorizedScorer(export, normalized, zone_block_size=block_size)


def evaluate_point(scorer: FactorizedScorer, entity_rows: int, k: int,
                   repeats: int) -> Tuple[SpeedupResult, dict]:
    """Time pruned top-k vs. the full-scan baseline at one (N, k) point."""
    all_rows = np.arange(entity_rows, dtype=np.int64)

    def full_scan():
        return full_scan_top_k(scorer.score_rows(all_rows)[:, 0], k)

    def pruned():
        return scorer.top_k(k)

    # Exactness first: a wrong answer must never time as a win.
    base_rows, base_scores = full_scan()
    result = pruned()
    np.testing.assert_array_equal(result.rows, base_rows)
    np.testing.assert_allclose(result.scores, base_scores, rtol=0, atol=0)

    timing = compare(
        full_scan, pruned,
        parameters={"entity_rows": entity_rows, "k": k},
        repeats=repeats,
    )
    stats = result.stats
    record = {
        "entity_rows": entity_rows,
        "k": k,
        "blocks_total": stats["blocks_total"],
        "blocks_visited": stats["blocks_visited"],
        "blocks_skipped": stats["blocks_skipped"],
        "rows_scored": stats["rows_scored"],
        "full_scan_seconds": timing.materialized_seconds,
        "pruned_seconds": timing.factorized_seconds,
        "speedup": timing.speedup,
    }
    return timing, record


def run_sweep(entity_rows: Sequence[int], ks: Sequence[int], table_rows: int,
              table_width: int, outputs: int,
              repeats: int) -> Tuple[List[SpeedupResult], List[dict]]:
    results, records = [], []
    for n in entity_rows:
        scorer = _build_skewed_scorer(n, table_rows, table_width, outputs)
        try:
            for k in ks:
                result, record = evaluate_point(scorer, n, k, repeats)
                results.append(result)
                records.append(record)
        finally:
            scorer.close()
    return results, records


def write_results(records: List[dict]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_FILE.write_text(
        json.dumps({"points": records}, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _gated(parameters: Dict[str, float]) -> bool:
    return (parameters["entity_rows"] >= TARGET_ENTITY_ROWS
            and parameters["k"] * TARGET_K_DIVISOR <= parameters["entity_rows"])


def _acceptance(results: List[SpeedupResult]) -> Dict[str, bool]:
    """Per-point pass/fail at the corner the issue gates on."""
    return {
        f"n={r.parameters['entity_rows']:g},k={r.parameters['k']:g}":
            bool(r.speedup >= TARGET_SPEEDUP)
        for r in results if _gated(r.parameters)
    }


def _passes(results: List[SpeedupResult]) -> bool:
    verdict = _acceptance(results)
    return not verdict or all(verdict.values())


def _format(results: List[SpeedupResult]) -> str:
    return "\n".join(
        f"n={r.parameters['entity_rows']:>7g} k={r.parameters['k']:>5g}  "
        f"full={r.materialized_seconds * 1e3:8.3f} ms  "
        f"pruned={r.factorized_seconds * 1e3:8.3f} ms  speedup={r.speedup:.1f}x"
        for r in results
    )


# -- timing-independent gates (run in any environment) ------------------------

def test_pruned_top_k_is_exact_on_benchmark_workload():
    """Same rows, same scores, same order as the full scan -- both ends of k."""
    n = 20_000
    scorer = _build_skewed_scorer(n, 128, 12, 2, block_size=256)
    try:
        scores = scorer.score_rows(np.arange(n))
        for k in (1, 10, 200):
            for largest in (True, False):
                for output in (0, 1):
                    rows, expected = full_scan_top_k(scores[:, output], k, largest)
                    result = scorer.top_k(k, largest=largest, output=output)
                    np.testing.assert_array_equal(result.rows, rows)
                    np.testing.assert_allclose(result.scores, expected,
                                               rtol=0, atol=0)
    finally:
        scorer.close()


def test_skewed_workload_skips_majority_of_blocks():
    """At k <= N/100 the search visits a minority of blocks and rows."""
    n = 50_000
    scorer = _build_skewed_scorer(n, 256, 12, 2, block_size=512)
    try:
        result = scorer.top_k(n // 100)
        stats = result.stats
        assert stats["pruned"]
        assert stats["blocks_skipped"] > SKIP_MAJORITY * stats["blocks_total"], stats
        assert stats["rows_scored"] < n / 2, stats
    finally:
        scorer.close()


# -- timed gates (pytest-benchmark) -------------------------------------------

def test_pruned_top_k_beats_full_scan(benchmark):
    """Pruned top-k wins >= 3x at k <= N/100 on >= 1e5 skewed rows."""
    def run():
        return run_sweep(**FULL_GRID)

    results, records = benchmark.pedantic(run, rounds=1, iterations=1)
    write_results(records)
    assert len(results) == len(FULL_GRID["entity_rows"]) * len(FULL_GRID["ks"])
    assert _passes(results), _format(results)
    for record in records:
        if _gated({"entity_rows": record["entity_rows"], "k": record["k"]}):
            assert record["blocks_skipped"] > SKIP_MAJORITY * record["blocks_total"], (
                record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced grid for CI")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    results, records = run_sweep(**grid)
    if not _passes(results):
        retry = dict(grid, repeats=grid["repeats"] + 2)
        print("acceptance miss on first pass; re-measuring with more repeats")
        results, records = run_sweep(**retry)
    path = write_results(records)
    print(f"wrote {path}")
    print(_format(results))
    for record in records:
        print(f"n={record['entity_rows']:>7g} k={record['k']:>5g}  "
              f"blocks {record['blocks_visited']}/{record['blocks_total']} visited "
              f"({record['blocks_skipped']} skipped), "
              f"{record['rows_scored']:,} rows scored")
    ok = _passes(results)
    skipped_ok = all(
        record["blocks_skipped"] > SKIP_MAJORITY * record["blocks_total"]
        for record in records
        if _gated({"entity_rows": record["entity_rows"], "k": record["k"]})
    )
    print(f"pruned top-k >= {TARGET_SPEEDUP:g}x at k <= N/{TARGET_K_DIVISOR:g}, "
          f"N >= {TARGET_ENTITY_ROWS:g}: {'OK' if ok else 'FAIL'}")
    print(f"majority of blocks skipped at gated points: "
          f"{'OK' if skipped_ok else 'FAIL'}")
    return 0 if ok and skipped_ok else 1


if __name__ == "__main__":
    sys.exit(main())
