"""Section 5.1: evaluation of the heuristic decision rule.

The paper tunes the thresholds (tau = 5 on the tuple ratio, rho = 1 on the
feature ratio) conservatively on the synthetic operator sweeps: the rule may
forgo small wins but should not miss large ones, and the region it selects for
factorization should be the profitable region.  This benchmark measures the
cross-product speed-up over a (TR, FR) grid (cross-product is the operator
whose factorized win is most robust at laptop scale), evaluates the rule
against the measurements and writes the outcome to
``benchmarks/results/decision_rule.txt``.
"""

import pathlib

from _common import group_name
from repro.bench import experiments
from repro.bench.reporting import format_speedup_grid, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_decision_rule_confusion_matrix(benchmark):
    experiment = next(e for e in experiments.pk_fk_operator_experiments()
                      if e.name == "crossprod")

    def run_sweep():
        return experiments.run_pk_fk_operator_sweep(
            experiment, tuple_ratios=(1, 2, 5, 10, 20), feature_ratios=(0.25, 0.5, 1, 2, 4),
            num_attribute_rows=1_500, repeats=2)

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    counts = experiments.decision_rule_confusion(results)

    grid = format_speedup_grid(results, row_key="feature_ratio", col_key="tuple_ratio")
    table = format_table(["outcome", "count"], [[k, v] for k, v in counts.items()])
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "decision_rule.txt").write_text(
        "Measured cross-product speed-up grid\n" + grid + "\n\nDecision-rule confusion counts\n"
        + table + "\n")

    total = sum(counts.values())
    assert total == 25

    # The rule must not miss any large win: every point with a measured
    # speed-up of at least 2x must fall inside the factorize region.
    for result in results:
        if result.speedup >= 2.0:
            assert result.parameters["tuple_ratio"] >= 5
            assert result.parameters["feature_ratio"] >= 1

    # The region the rule selects should be more profitable on average than
    # the region it rejects (the separation the paper's thresholds encode).
    chosen = [r.speedup for r in results
              if r.parameters["tuple_ratio"] >= 5 and r.parameters["feature_ratio"] >= 1]
    rejected = [r.speedup for r in results
                if not (r.parameters["tuple_ratio"] >= 5 and r.parameters["feature_ratio"] >= 1)]
    assert chosen and rejected
    assert sum(chosen) / len(chosen) > sum(rejected) / len(rejected)
