"""Parallel sharded execution: speedup vs. shard count for factorized logreg GD.

No direct figure in the paper: this module measures the sharded execution
backend (``repro.core.shard``) that parallelizes the paper's serial chunked
scalability setup (Section 5.2.4, Tables 9/10).  The workload is the paper's
scalability workload -- logistic regression with batch gradient descent --
at laptop benchmark scale, and three execution strategies are compared:

* ``serial-chunked factorized``  -- the factorized algorithm streamed
  serially at ORE-like chunk granularity (``CHUNK_ROWS`` rows per chunk),
  i.e. ``TN.shard(n_chunks, pool="serial")``.  This is the baseline the
  acceptance criterion names: factorized logistic-regression GD under serial
  chunked execution.
* ``serial-chunked materialized`` -- the materialized join output streamed
  through :class:`repro.la.chunked.ChunkedMatrix` (the Table-9 "M" setup),
  reported for context.
* ``sharded(k) factorized``      -- ``TN.shard(k, pool="thread")`` for
  ``k`` in ``SHARD_COUNTS``: few large shards dispatched through a thread
  pool.

Two effects add up in the sharded column.  Coarse sharding amortizes the
per-chunk dispatch overhead that fine-grained serial streaming pays (each
chunk of the factorized baseline re-runs the whole per-chunk operator
pipeline, including the ``R``-sided products); and on multi-core hardware the
thread pool overlaps the per-shard NumPy/SciPy kernels, which release the
GIL.  Only the first effect is visible on a single-core CI runner -- which is
already enough for the >= 2x acceptance gate asserted below; on real
hardware the shard-count curve additionally bends with the core count (see
``docs/parallelism.md``).
"""

import numpy as np
import pytest

from _common import pkfk_dataset
from repro.bench.harness import SpeedupResult, measure
from repro.bench.reporting import format_table, print_report
from repro.la.chunked import ChunkedMatrix
from repro.ml import LogisticRegressionGD

TUPLE_RATIO = 20
FEATURE_RATIO = 4
CHUNK_ROWS = 512            # ORE-style streaming granularity of the serial baseline
SHARD_COUNTS = (1, 2, 4, 8)
ITERATIONS = 5
REPEATS = 3
ACCEPTANCE_SHARDS = 4
ACCEPTANCE_SPEEDUP = 2.0


def _fit_time(data, target) -> float:
    model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
    return measure(lambda: model.fit(data, target), repeats=REPEATS, warmup=1).best


@pytest.fixture(scope="module")
def workload():
    dataset = pkfk_dataset(TUPLE_RATIO, FEATURE_RATIO)
    target = np.where(np.asarray(dataset.target) > 0, 1.0, -1.0)
    return dataset, target


@pytest.fixture(scope="module")
def timings(workload):
    """Measure every strategy once per module and share the numbers."""
    dataset, target = workload
    normalized = dataset.normalized
    n_rows = normalized.shape[0]
    n_chunks = max(1, n_rows // CHUNK_ROWS)

    results = {
        "serial-chunked factorized": _fit_time(
            normalized.shard(n_chunks, pool="serial"), target
        ),
        "serial-chunked materialized": _fit_time(
            ChunkedMatrix.from_matrix(dataset.materialized, CHUNK_ROWS), target
        ),
    }
    for shards in SHARD_COUNTS:
        results[f"sharded({shards}) factorized"] = _fit_time(
            normalized.shard(shards, pool="thread"), target
        )
    return results


def test_report_scaling_table(timings, workload):
    """Print the shard-count scaling table (speedups vs. both serial baselines)."""
    dataset, _ = workload
    baseline = timings["serial-chunked factorized"]
    materialized = timings["serial-chunked materialized"]
    rows = []
    for label, seconds in timings.items():
        rows.append([
            label, f"{seconds * 1000:.2f}",
            f"{baseline / seconds:.2f}x", f"{materialized / seconds:.2f}x",
        ])
    body = format_table(
        ["strategy", "time (ms)", "vs serial-chunked F", "vs serial-chunked M"], rows
    )
    shape = dataset.materialized.shape
    print_report(
        f"Parallel sharded scaling: logreg GD, {ITERATIONS} iterations, "
        f"T = {shape[0]}x{shape[1]} (TR={TUPLE_RATIO}, FR={FEATURE_RATIO}, "
        f"chunk_rows={CHUNK_ROWS})", body,
    )


def test_acceptance_speedup_at_four_shards(timings):
    """>= 2x at 4 shards over serial chunked execution of factorized logreg GD."""
    result = SpeedupResult(
        parameters={"shards": ACCEPTANCE_SHARDS},
        materialized_seconds=timings["serial-chunked factorized"],
        factorized_seconds=timings[f"sharded({ACCEPTANCE_SHARDS}) factorized"],
    )
    assert result.speedup >= ACCEPTANCE_SPEEDUP, (
        f"sharded({ACCEPTANCE_SHARDS}) is only {result.speedup:.2f}x faster than "
        f"serial chunked factorized execution (acceptance floor "
        f"{ACCEPTANCE_SPEEDUP}x)"
    )


def test_sharded_fit_matches_serial_coefficients(workload):
    """The speed comparison is apples-to-apples: identical models, 1e-8 close."""
    dataset, target = workload
    serial = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4).fit(
        dataset.normalized, target
    )
    sharded = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4).fit(
        dataset.normalized.shard(ACCEPTANCE_SHARDS, pool="thread"), target
    )
    assert np.allclose(sharded.coef_, serial.coef_, atol=1e-8)
