"""Cross-iteration memoization: lazy vs eager inner loops (new subsystem).

Unlike the ``bench_fig*`` modules this benchmark has no direct figure in the
paper: it measures the lazy expression-graph layer (``repro.core.lazy``) that
memoizes join-invariant subexpressions across the iterations of the paper's
iterative workloads (Figures 8--10).  Three comparisons per sweep point:

* ``linreg-gd``  -- eager GD performs one LMM and one transposed LMM per
  iteration; the lazy path evaluates the gradient as
  ``crossprod(T) w - T^T Y``, so after the first iteration both data-sized
  terms are cache hits and an iteration costs ``O(d^2)``.
* ``kmeans``     -- the lazy path writes ``rowSums(T^2)`` and ``2 T`` inside
  the loop and lets the FactorizedCache hoist them.
* ``logreg-gd``  -- no data-sized term is join invariant (the gradient is
  nonlinear in ``w``), so only the transposed view is memoized and the
  per-iteration LMM structure is unchanged; this one bounds the overhead of
  the graph layer rather than showing a speed-up.

Each lazy benchmark asserts the acceptance criterion (>= 1 cache hit per
iteration after the first) and the module prints the hit/miss counters next
to the runtimes.
"""

import numpy as np
import pytest

from _common import group_name, pkfk_dataset, point_id
from repro.bench.reporting import format_table, print_report
from repro.ml import KMeans, LinearRegressionGD, LogisticRegressionGD

POINTS = ((10, 2), (20, 4))
ITERATIONS = 20

_cache_rows = []


def _record(workload, point, cache):
    stats = cache.stats()
    _cache_rows.append([
        workload, point_id(point), stats.hits, stats.misses,
        f"{stats.hit_rate:.2f}",
    ])


def _fresh_normalized(point):
    """A private normalized-matrix view so each round starts with a cold cache.

    The underlying base matrices are shared with the cached dataset; only the
    wrapper (and hence the attached FactorizedCache) is new.
    """
    dataset = pkfk_dataset(*point)
    source = dataset.normalized
    from repro.core.normalized_matrix import NormalizedMatrix

    return NormalizedMatrix(source.entity, source.indicators, source.attributes,
                            validate=False)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestLinregGDMemoization:
    def test_eager(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "linreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionGD(max_iter=ITERATIONS, step_size=1e-6)
        benchmark.pedantic(lambda: model.fit(dataset.normalized, target),
                           rounds=2, iterations=1, warmup_rounds=0)

    def test_lazy(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "linreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        target = np.asarray(dataset.target, dtype=np.float64)

        def run():
            model = LinearRegressionGD(max_iter=ITERATIONS, step_size=1e-6,
                                       engine="lazy")
            model.fit(_fresh_normalized(point), target)
            return model

        model = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
        # Acceptance: crossprod(T) and T^T Y hit on every iteration but the first.
        assert model.lazy_cache_.hits >= 2 * (ITERATIONS - 1)
        _record("linreg-gd", point, model.lazy_cache_)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestKMeansMemoization:
    def test_eager(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "kmeans", point_id(point))
        dataset = pkfk_dataset(*point)
        model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(dataset.normalized),
                           rounds=2, iterations=1, warmup_rounds=0)

    def test_lazy(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "kmeans", point_id(point))

        def run():
            model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0, engine="lazy")
            model.fit(_fresh_normalized(point))
            return model

        model = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
        assert model.lazy_cache_.hits >= 3 * (ITERATIONS - 1)
        _record("kmeans", point, model.lazy_cache_)


@pytest.mark.parametrize("point", POINTS[:1], ids=point_id)
class TestLogregGDOverhead:
    def test_eager(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "logreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(dataset.normalized, target),
                           rounds=2, iterations=1, warmup_rounds=0)

    def test_lazy(self, benchmark, point):
        benchmark.group = group_name("lazy-memo", "logreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        target = np.asarray(dataset.target, dtype=np.float64)

        def run():
            model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4,
                                         engine="lazy")
            model.fit(_fresh_normalized(point), target)
            return model

        model = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
        assert model.lazy_cache_.hits >= ITERATIONS - 1
        _record("logreg-gd", point, model.lazy_cache_)


def test_report_cache_statistics():
    """Print the FactorizedCache counters collected by the lazy benchmarks."""
    if not _cache_rows:
        pytest.skip("no lazy benchmarks ran")
    body = format_table(
        ["workload", "point", "hits", "misses", "hit rate"], _cache_rows
    )
    print_report("Lazy memoization: FactorizedCache statistics "
                 f"({ITERATIONS} iterations per fit)", body)
