"""Table 10: scalability on the ORE-style chunked backend, M:N join.

The paper varies the join-attribute domain size; smaller domains blow up the
join output, so the materialized (chunked) runtime explodes while the
factorized runtime stays flat -- speed-ups approaching two orders of magnitude.
"""

import pytest

from _common import group_name, mn_dataset
from repro.la.chunked import ChunkedMatrix
from repro.ml import LogisticRegressionGD

UNIQUENESS_POINTS = (0.5, 0.1, 0.02)
CHUNK_ROWS = 4_096
ITERATIONS = 3


@pytest.mark.parametrize("degree", UNIQUENESS_POINTS, ids=lambda d: f"nU{d:g}")
class TestChunkedLogisticMN:
    def test_materialized_chunked(self, benchmark, degree):
        benchmark.group = group_name("table10", "logreg-chunked", f"nU={degree:g}")
        dataset = mn_dataset(degree, num_rows=1_000, num_features=30)
        chunked = ChunkedMatrix.from_matrix(dataset.materialized, CHUNK_ROWS)
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(chunked, dataset.target), rounds=1, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("table10", "logreg-chunked", f"nU={degree:g}")
        dataset = mn_dataset(degree, num_rows=1_000, num_features=30)
        normalized = dataset.normalized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(normalized, dataset.target), rounds=1,
                           iterations=1, warmup_rounds=0)
