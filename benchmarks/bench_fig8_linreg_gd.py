"""Figure 8: linear regression trained with gradient descent (Appendix G).

The paper varies the tuple ratio, the feature ratio and the number of
iterations; the runtime is dominated by one LMM and one transposed LMM per
iteration, so the speed-up tracks Figure 3(b).
"""

import numpy as np
import pytest

from _common import group_name, pkfk_dataset, point_id
from repro.ml import LinearRegressionGD

POINTS = ((10, 2), (20, 4))
ITERATION_COUNTS = (5, 10)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestLinearRegressionGDSweep:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig8", "linreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = dataset.materialized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionGD(max_iter=5, step_size=1e-6)
        benchmark.pedantic(lambda: model.fit(materialized, target), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig8", "linreg-gd", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionGD(max_iter=5, step_size=1e-6)
        benchmark.pedantic(lambda: model.fit(normalized, target), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("iterations", ITERATION_COUNTS, ids=lambda i: f"iters{i}")
class TestLinearRegressionGDIterations:
    """Runtime grows linearly with the iteration count for both variants."""

    def test_materialized(self, benchmark, iterations):
        benchmark.group = group_name("fig8", "linreg-gd-iters", iterations)
        dataset = pkfk_dataset(10, 2)
        materialized = dataset.materialized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionGD(max_iter=iterations, step_size=1e-6)
        benchmark.pedantic(lambda: model.fit(materialized, target), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, iterations):
        benchmark.group = group_name("fig8", "linreg-gd-iters", iterations)
        dataset = pkfk_dataset(10, 2)
        normalized = dataset.normalized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionGD(max_iter=iterations, step_size=1e-6)
        benchmark.pedantic(lambda: model.fit(normalized, target), rounds=2, iterations=1,
                           warmup_rounds=0)
