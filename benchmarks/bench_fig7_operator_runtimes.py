"""Figure 7: absolute runtimes of scalar multiplication, LMM, cross-product and
pseudo-inverse while varying one axis at a time.

The paper's Figure 7 plots runtimes (not just speed-ups) as the tuple ratio
varies with a fixed feature ratio, and vice versa.  We benchmark the
materialized and factorized versions along the tuple-ratio axis at FR = 2 and
along the feature-ratio axis at TR = 10.
"""

import pytest

from _common import group_name, lmm_operand, materialized_cache, pkfk_dataset

TR_AXIS = ((2, 2), (10, 2), (20, 2))
FR_AXIS = ((10, 0.5), (10, 2), (10, 4))


def _axis_id(point):
    return f"TR{point[0]:g}-FR{point[1]:g}"


@pytest.mark.parametrize("point", TR_AXIS + FR_AXIS, ids=_axis_id)
class TestScalarMultiplicationRuntime:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig7", "scalar-mult", _axis_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized * 2.0, rounds=5, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig7", "scalar-mult", _axis_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(lambda: normalized * 2.0, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", TR_AXIS + FR_AXIS, ids=_axis_id)
class TestLMMRuntime:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig7", "lmm", _axis_id(point))
        materialized = materialized_cache(*point)
        operand = lmm_operand(materialized.shape[1])
        benchmark.pedantic(lambda: materialized @ operand, rounds=5, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig7", "lmm", _axis_id(point))
        normalized = pkfk_dataset(*point).normalized
        operand = lmm_operand(normalized.shape[1])
        benchmark.pedantic(lambda: normalized @ operand, rounds=5, iterations=1,
                           warmup_rounds=1)


@pytest.mark.parametrize("point", FR_AXIS, ids=_axis_id)
class TestCrossprodRuntime:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig7", "crossprod", _axis_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.T @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig7", "crossprod", _axis_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.crossprod, rounds=3, iterations=1, warmup_rounds=1)
