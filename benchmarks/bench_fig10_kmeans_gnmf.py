"""Figure 10: K-Means and GNMF runtimes versus tuple ratio and feature ratio.

Also covers Figures 5(c2)/5(d2): runtime versus the number of centroids
(K-Means) and the number of topics (GNMF) at a fixed sweep point.
"""

import numpy as np
import pytest

from _common import group_name, pkfk_dataset, point_id
from repro.ml import GNMF, KMeans

POINTS = ((10, 2), (20, 4))
CENTROID_COUNTS = (5, 10)
TOPIC_COUNTS = (2, 5)
ITERATIONS = 5


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestKMeansSweep:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig10", "kmeans", point_id(point))
        dataset = pkfk_dataset(*point)
        model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0)
        materialized = dataset.materialized
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig10", "kmeans", point_id(point))
        dataset = pkfk_dataset(*point)
        model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0)
        normalized = dataset.normalized
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("centroids", CENTROID_COUNTS, ids=lambda k: f"k{k}")
class TestKMeansCentroids:
    def test_materialized(self, benchmark, centroids):
        benchmark.group = group_name("fig10", "kmeans-centroids", centroids)
        dataset = pkfk_dataset(10, 2)
        materialized = dataset.materialized
        model = KMeans(num_clusters=centroids, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, centroids):
        benchmark.group = group_name("fig10", "kmeans-centroids", centroids)
        dataset = pkfk_dataset(10, 2)
        normalized = dataset.normalized
        model = KMeans(num_clusters=centroids, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestGNMFSweep:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig10", "gnmf", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = np.abs(dataset.materialized)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig10", "gnmf", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized.apply(np.abs)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("topics", TOPIC_COUNTS, ids=lambda r: f"r{r}")
class TestGNMFTopics:
    def test_materialized(self, benchmark, topics):
        benchmark.group = group_name("fig10", "gnmf-topics", topics)
        dataset = pkfk_dataset(10, 2)
        materialized = np.abs(dataset.materialized)
        model = GNMF(rank=topics, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, topics):
        benchmark.group = group_name("fig10", "gnmf-topics", topics)
        dataset = pkfk_dataset(10, 2)
        normalized = dataset.normalized.apply(np.abs)
        model = GNMF(rank=topics, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)
