"""Ablation: the two LMM multiplication orders (Section 3.3.3).

``K (R X)`` computes the small product first and scatters it through the
indicator matrix; ``(K R) X`` expands the join first, which reintroduces the
very redundancy factorization is meant to avoid.  Both orders are logically
equivalent; the benchmark shows the performance gap.
"""

import pytest

from _common import group_name, lmm_operand, pkfk_dataset, point_id
from repro.core.rewrite import multiplication

POINTS = ((10, 2), (20, 4))


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestLMMOrderAblation:
    def test_factorized_order(self, benchmark, point):
        """K (R X): the order Morpheus uses."""
        benchmark.group = group_name("ablation", "lmm-order", point_id(point))
        dataset = pkfk_dataset(*point)
        operand = lmm_operand(dataset.normalized.shape[1])
        benchmark.pedantic(
            lambda: multiplication.lmm_star(dataset.entity, dataset.indicators,
                                            dataset.attributes, operand),
            rounds=3, iterations=1, warmup_rounds=1)

    def test_materializing_order(self, benchmark, point):
        """(K R) X: logically equivalent but materializes part of the join."""
        benchmark.group = group_name("ablation", "lmm-order", point_id(point))
        dataset = pkfk_dataset(*point)
        operand = lmm_operand(dataset.normalized.shape[1])
        benchmark.pedantic(
            lambda: multiplication.lmm_star_materialized_order(dataset.entity, dataset.indicators,
                                                               dataset.attributes, operand),
            rounds=3, iterations=1, warmup_rounds=1)
