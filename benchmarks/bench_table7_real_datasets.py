"""Table 7: ML runtimes and Morpheus speed-ups on the seven real datasets.

The paper's Table 7 reports, for each of the seven multi-table datasets, the
materialized runtime and the Morpheus speed-up of linear regression, logistic
regression, K-Means and GNMF.  We use the synthetic stand-ins of
:mod:`repro.datasets.realworld` (same schemas, scaled down -- see docs/paper_map.md)
and benchmark the materialized and factorized runs of each algorithm.

To keep the suite fast, per-dataset benchmarks cover logistic and linear
regression on every dataset, while K-Means and GNMF run on a representative
subset (Movies has the highest redundancy, Books the lowest).  A summary table
with all four algorithms on all seven datasets is produced by
``examples/real_datasets_study.py``.
"""

import numpy as np
import pytest

from _common import group_name, real_dataset
from repro.ml import GNMF, KMeans, LinearRegressionNE, LogisticRegressionGD

ALL_DATASETS = ("expedia", "movies", "yelp", "walmart", "lastfm", "books", "flights")
SUBSET_DATASETS = ("movies", "books")
SCALE = 0.01
ITERATIONS = 5


@pytest.mark.parametrize("name", ALL_DATASETS)
class TestLogisticRegressionRealData:
    def test_materialized(self, benchmark, name):
        benchmark.group = group_name("table7", "logreg", name)
        dataset = real_dataset(name, SCALE)
        materialized = dataset.materialized
        target = dataset.binary_target
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(materialized, target), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, name):
        benchmark.group = group_name("table7", "logreg", name)
        dataset = real_dataset(name, SCALE)
        normalized = dataset.normalized
        target = dataset.binary_target
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(normalized, target), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("name", ALL_DATASETS)
class TestLinearRegressionRealData:
    def test_materialized(self, benchmark, name):
        benchmark.group = group_name("table7", "linreg", name)
        dataset = real_dataset(name, SCALE)
        materialized = dataset.materialized
        target = dataset.target
        model = LinearRegressionNE()
        benchmark.pedantic(lambda: model.fit(materialized, target), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, name):
        benchmark.group = group_name("table7", "linreg", name)
        dataset = real_dataset(name, SCALE)
        normalized = dataset.normalized
        target = dataset.target
        model = LinearRegressionNE()
        benchmark.pedantic(lambda: model.fit(normalized, target), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("name", SUBSET_DATASETS)
class TestKMeansRealData:
    def test_materialized(self, benchmark, name):
        benchmark.group = group_name("table7", "kmeans", name)
        dataset = real_dataset(name, SCALE)
        materialized = dataset.materialized
        model = KMeans(num_clusters=10, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=1, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, name):
        benchmark.group = group_name("table7", "kmeans", name)
        dataset = real_dataset(name, SCALE)
        normalized = dataset.normalized
        model = KMeans(num_clusters=10, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=1, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("name", SUBSET_DATASETS)
class TestGNMFRealData:
    def test_materialized(self, benchmark, name):
        benchmark.group = group_name("table7", "gnmf", name)
        dataset = real_dataset(name, SCALE)
        materialized = abs(dataset.materialized)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=1, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, name):
        benchmark.group = group_name("table7", "gnmf", name)
        dataset = real_dataset(name, SCALE)
        normalized = dataset.normalized.apply(np.abs)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=1, iterations=1,
                           warmup_rounds=0)
