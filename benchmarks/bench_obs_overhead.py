"""Observability overhead: instrumented fits vs. the undecorated baseline.

The obs layer's contract is "permanently installed, near-zero when off":
every planner/cache/kernel/serving code path keeps its instrumentation in
production, guarded by one module-global boolean.  This module measures that
claim on the paper's Figure 3/5 GD workloads (factorized linear and logistic
regression on synthetic PK-FK data) in three configurations:

* **baseline** -- the undecorated ``fit`` body, reached through
  ``fit.__wrapped__`` (the ``fit_telemetry`` decorator preserves it via
  ``functools.wraps``), with observability disabled;
* **disabled** -- the shipping decorated ``fit`` with observability off.
  Acceptance gate: <= 2% over baseline (plus a small absolute slack so
  sub-millisecond jitter cannot fail a run on its own);
* **enabled** -- the decorated ``fit`` with metrics and tracing recording.
  Acceptance gate: <= 10% over baseline.

Timing is min-of-N (the standard variance killer for short fits) after a
warmup fit, with one noise retry before declaring a miss, like the other
benchmark gates in this suite.

Run styles:

* ``python benchmarks/bench_obs_overhead.py`` -- the full grid; writes
  ``benchmarks/results/obs_overhead.json`` and exits nonzero on a gate miss;
* ``python benchmarks/bench_obs_overhead.py --smoke`` -- one grid point with
  fewer repeats, for CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from _common import pkfk_dataset
from repro import obs
from repro.ml import LinearRegressionGD, LogisticRegressionGD

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "obs_overhead.json"

#: Figure 3/5 sweep corners (tuple ratio, feature ratio).
FULL_POINTS: Tuple[Tuple[float, float], ...] = ((5, 1), (10, 2))
SMOKE_POINTS: Tuple[Tuple[float, float], ...] = ((5, 1),)

ITERATIONS = 5          # GD iterations per fit (speed-ups are per-iteration)
FULL_REPEATS = 7
SMOKE_REPEATS = 5

DISABLED_BUDGET = 1.02   # <= 2% over the undecorated baseline
ENABLED_BUDGET = 1.10    # <= 10% with recording on
ABSOLUTE_SLACK = 2e-3    # seconds; scheduler jitter floor for short fits

ESTIMATORS = {
    "linreg-gd": lambda: LinearRegressionGD(max_iter=ITERATIONS, step_size=1e-6),
    "logreg-gd": lambda: LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4),
}


def _min_time(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warmup: numpy buffers, lazy imports, branch predictors
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_point(estimator_key: str, point: Tuple[float, float],
                  repeats: int) -> dict:
    """Baseline / disabled / enabled min-times for one (estimator, TR, FR)."""
    dataset = pkfk_dataset(*point)
    normalized = dataset.normalized
    target = np.asarray(dataset.target, dtype=np.float64)
    model = ESTIMATORS[estimator_key]()
    undecorated = type(model).fit.__wrapped__

    obs.disable()
    baseline = _min_time(lambda: undecorated(model, normalized, target), repeats)
    disabled = _min_time(lambda: model.fit(normalized, target), repeats)
    obs.enable()
    try:
        enabled = _min_time(lambda: model.fit(normalized, target), repeats)
    finally:
        obs.disable()
        obs.clear_spans()

    return {
        "estimator": estimator_key,
        "tuple_ratio": point[0],
        "feature_ratio": point[1],
        "iterations": ITERATIONS,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_ratio": disabled / baseline,
        "enabled_ratio": enabled / baseline,
    }


def _within_gates(record: dict) -> Dict[str, bool]:
    baseline = record["baseline_seconds"]
    return {
        "disabled": record["disabled_seconds"]
        <= baseline * DISABLED_BUDGET + ABSOLUTE_SLACK,
        "enabled": record["enabled_seconds"]
        <= baseline * ENABLED_BUDGET + ABSOLUTE_SLACK,
    }


def run_sweep(points: Sequence[Tuple[float, float]],
              repeats: int) -> List[dict]:
    records = []
    for estimator_key in ESTIMATORS:
        for point in points:
            record = measure_point(estimator_key, point, repeats)
            if not all(_within_gates(record).values()):
                # One noise retry with more repeats before declaring a miss.
                record = measure_point(estimator_key, point, repeats + 2)
            record["gates"] = _within_gates(record)
            records.append(record)
    return records


def write_results(records: List[dict]) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "disabled_budget": DISABLED_BUDGET,
        "enabled_budget": ENABLED_BUDGET,
        "absolute_slack_seconds": ABSOLUTE_SLACK,
        "points": records,
    }
    RESULTS_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _format(records: List[dict]) -> str:
    lines = []
    for r in records:
        gates = r["gates"]
        lines.append(
            f"{r['estimator']:>10} TR={r['tuple_ratio']:>4g} FR={r['feature_ratio']:>4g}  "
            f"baseline={r['baseline_seconds'] * 1e3:8.3f} ms  "
            f"disabled={r['disabled_ratio']:.3f}x "
            f"[{'OK' if gates['disabled'] else 'FAIL'}]  "
            f"enabled={r['enabled_ratio']:.3f}x "
            f"[{'OK' if gates['enabled'] else 'FAIL'}]"
        )
    return "\n".join(lines)


# -- pytest entry point (timing gate, same machinery) --------------------------

def test_disabled_overhead_on_gd_fits():
    """Disabled-mode instrumentation costs <= 2% on the smoke grid."""
    records = run_sweep(SMOKE_POINTS, SMOKE_REPEATS)
    assert all(r["gates"]["disabled"] for r in records), _format(records)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one grid point with fewer repeats, for CI")
    args = parser.parse_args(argv)
    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    repeats = SMOKE_REPEATS if args.smoke else FULL_REPEATS

    records = run_sweep(points, repeats)
    path = write_results(records)
    print(f"wrote {path}")
    print(_format(records))
    ok = all(all(r["gates"].values()) for r in records)
    print(f"disabled <= {DISABLED_BUDGET - 1:.0%}, "
          f"enabled <= {ENABLED_BUDGET - 1:.0%} over baseline: "
          f"{'OK' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
