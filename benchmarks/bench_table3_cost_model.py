"""Table 3 / Table 11: the analytic cost model versus measured speed-ups.

The paper's Table 3 gives the arithmetic-operation counts of the standard and
factorized operators; Table 11 gives the asymptotic speed-ups.  This benchmark
measures the actual operator speed-ups at one strongly redundant sweep point
and writes a comparison of predicted versus measured speed-up to
``benchmarks/results/table3_cost_model.txt``.  Absolute agreement is not
expected (the model counts flops, not memory traffic), but the ordering and
rough magnitudes should line up.
"""

import pathlib

import numpy as np
import pytest

from _common import lmm_operand, materialized_cache, pkfk_dataset
from repro.bench.harness import compare
from repro.bench.reporting import format_table
from repro.core.cost import CostModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
POINT = (20, 4)


def test_table3_predicted_vs_measured(benchmark):
    dataset = pkfk_dataset(*POINT)
    materialized = materialized_cache(*POINT)
    normalized = dataset.normalized
    operand = lmm_operand(materialized.shape[1])
    model = CostModel(
        n_s=materialized.shape[0], d_s=normalized.entity_width,
        attribute_dims=[(r.shape[0], r.shape[1]) for r in normalized.attributes],
    )

    def run_all():
        rows = []
        measurements = {
            "scalar": compare(lambda: materialized * 2.0, lambda: normalized * 2.0,
                              {"op": 0}, repeats=3),
            "lmm": compare(lambda: materialized @ operand, lambda: normalized @ operand,
                           {"op": 1}, repeats=3),
            "crossprod": compare(lambda: materialized.T @ materialized, normalized.crossprod,
                                 {"op": 2}, repeats=2),
        }
        predictions = model.summary()
        for name, measured in measurements.items():
            rows.append([name, f"{predictions[name]:.1f}x", f"{measured.speedup:.1f}x"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(["operator", "predicted speedup", "measured speedup"], rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table3_cost_model.txt").write_text(
        f"Table 3 cost-model validation at TR={POINT[0]}, FR={POINT[1]}\n{table}\n")
    assert len(rows) == 3


def test_table3_cost_model_predicts_crossprod_largest(benchmark):
    """Table 11: cross-product has the largest asymptotic speed-up (quadratic in d)."""
    dataset = pkfk_dataset(*POINT)
    normalized = dataset.normalized
    model = CostModel(
        n_s=normalized.logical_rows, d_s=normalized.entity_width,
        attribute_dims=[(r.shape[0], r.shape[1]) for r in normalized.attributes],
    )
    summary = benchmark.pedantic(model.summary, rounds=1, iterations=1)
    assert summary["crossprod"] > summary["lmm"]
    assert summary["lmm"] == pytest.approx(summary["scalar"])
