"""Figure 9: logistic regression runtime versus the number of iterations.

Runtime should grow linearly with the iteration count for both the
materialized and factorized versions, with a constant per-iteration speed-up.
"""

import pytest

from _common import group_name, pkfk_dataset
from repro.ml import LogisticRegressionGD

ITERATION_COUNTS = (5, 10, 20)


@pytest.mark.parametrize("iterations", ITERATION_COUNTS, ids=lambda i: f"iters{i}")
class TestLogisticIterations:
    def test_materialized(self, benchmark, iterations):
        benchmark.group = group_name("fig9", "logreg-iters", iterations)
        dataset = pkfk_dataset(10, 2)
        materialized = dataset.materialized
        model = LogisticRegressionGD(max_iter=iterations, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(materialized, dataset.target), rounds=2,
                           iterations=1, warmup_rounds=0)

    def test_factorized(self, benchmark, iterations):
        benchmark.group = group_name("fig9", "logreg-iters", iterations)
        dataset = pkfk_dataset(10, 2)
        normalized = dataset.normalized
        model = LogisticRegressionGD(max_iter=iterations, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(normalized, dataset.target), rounds=2,
                           iterations=1, warmup_rounds=0)
