"""Incremental maintenance: delta patching vs. full recomputation.

The incremental layer claims that a small change to one attribute table
should cost work proportional to the **delta**, not to the table.  This
module measures that claim at the two places deltas land:

* **Serving partials** -- ``SnapshotManager.apply_delta`` patches the ``b``
  changed rows of one precomputed partial (O(b * d * m) matmul plus one
  O(n_Rk * m) copy-on-write of the partial) versus :meth:`update_table`,
  the pre-existing freshness path, which recomputes the whole ``R_k @ W_k``
  partial (O(n_Rk * d * m)).  The acceptance gate asserts the patch is
  >= 5x faster wherever the delta fraction is <= 1% and the table has at
  least 1e5 rows (with one noise retry, like the other benchmark gates).
* **Read throughput under writes** -- a paced stream of deltas applied by a
  writer thread must not disturb the lock-free reader path: scoring
  throughput with concurrent patching stays within 10% of the no-writes
  baseline (readers take no lock; a swap is one reference store).
* **Lazy cache terms** (secondary diagnostic, no gate) -- patching a warmed
  ``crossprod`` through ``NormalizedMatrix.apply_delta`` versus recomputing
  it from scratch on the post-delta matrix.

Run styles:

* ``pytest benchmarks/bench_incremental.py`` -- the full grid with
  pytest-benchmark timing plus timing-independent exactness gates;
* ``python benchmarks/bench_incremental.py --smoke`` -- a reduced grid for
  CI; writes ``benchmarks/results/incremental.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.bench.harness import SpeedupResult, compare
from repro.core.delta import MatrixDelta
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import DeltaPolicy
from repro.ml import ServingExport
from repro.serve import FactorizedScorer
from repro.serve.snapshot import compute_partial, patch_partial

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "incremental.json"

FULL_GRID = dict(table_rows=(10_000, 100_000), delta_fractions=(0.001, 0.01),
                 table_width=50, outputs=4, entity_rows=5_000, repeats=5)
SMOKE_GRID = dict(table_rows=(100_000,), delta_fractions=(0.01,),
                  table_width=50, outputs=4, entity_rows=2_000, repeats=3)

#: acceptance: delta apply beats the full-partial rebuild by at least this
#: wherever the delta fraction is <= TARGET_FRACTION and the table has at
#: least TARGET_TABLE_ROWS rows.
TARGET_SPEEDUP = 5.0
TARGET_FRACTION = 0.01
TARGET_TABLE_ROWS = 100_000

#: acceptance: reader throughput under a paced delta stream stays within
#: this fraction of the no-writes baseline.
THROUGHPUT_FLOOR = 0.9


def _build_serving(table_rows: int, table_width: int, outputs: int,
                   entity_rows: int, seed: int = 17):
    """A single-join star schema scorer sized so the table dominates.

    The PK-FK contract requires every attribute row to be referenced, so the
    entity has at least ``table_rows`` rows: a covering permutation first,
    then random extra references up to *entity_rows*.
    """
    rng = np.random.default_rng(seed)
    entity_rows = max(entity_rows, table_rows)
    entity = rng.standard_normal((entity_rows, 4))
    codes = np.concatenate([
        rng.permutation(table_rows),
        rng.integers(0, table_rows, entity_rows - table_rows),
    ])
    indicator = sparse.csr_matrix(
        (np.ones(entity_rows), (np.arange(entity_rows), codes)),
        shape=(entity_rows, table_rows),
    )
    table = rng.standard_normal((table_rows, table_width))
    normalized = NormalizedMatrix(entity, [indicator], [table])
    export = ServingExport(
        "linear_regression", rng.standard_normal((4 + table_width, outputs))
    )
    return FactorizedScorer(export, normalized), normalized, table, rng


def _make_delta(rng: np.random.Generator, table: np.ndarray,
                fraction: float) -> MatrixDelta:
    b = max(1, int(round(fraction * table.shape[0])))
    rows = rng.choice(table.shape[0], size=b, replace=False)
    new_values = rng.standard_normal((b, table.shape[1]))
    return MatrixDelta.upsert(rows, new_values, table)


def evaluate_point(table_rows: int, delta_fraction: float, table_width: int,
                   outputs: int, entity_rows: int,
                   repeats: int) -> Tuple[SpeedupResult, dict]:
    """Time delta patching vs. full-partial rebuild at one grid point."""
    scorer, normalized, table, rng = _build_serving(
        table_rows, table_width, outputs, entity_rows
    )
    delta = _make_delta(rng, table, delta_fraction)
    table_after = delta.apply_to(table)

    # Both paths are idempotent from the scorer's point of view (the patch
    # rewrites the same rows, the rebuild recomputes the same partial), so
    # repeated timing needs no per-repeat reset.
    result = compare(
        lambda: scorer.update_table(0, table_after),       # full rebuild
        lambda: scorer.apply_delta(0, delta),              # delta patch
        parameters={"table_rows": table_rows, "delta_fraction": delta_fraction},
        repeats=repeats,
    )

    # Secondary diagnostic: cache-term patching vs. recompute (fresh state
    # per measurement because apply_delta migrates the cache to a successor).
    start = time.perf_counter()
    lazy = normalized.lazy()
    lazy.crossprod().evaluate()
    warmed = time.perf_counter() - start
    start = time.perf_counter()
    successor = normalized.apply_delta(0, delta, policy=DeltaPolicy(threshold=1.0))
    cache_patch = time.perf_counter() - start
    start = time.perf_counter()
    rebuilt = NormalizedMatrix(normalized.entity, normalized.indicators,
                               [table_after])
    rebuilt.lazy().crossprod().evaluate()
    cache_recompute = time.perf_counter() - start
    assert successor._lazy_cache.patched >= 1  # the patch path actually ran

    record = {
        "table_rows": table_rows,
        "delta_fraction": delta_fraction,
        "delta_rows": int(delta.num_changed),
        "table_width": table_width,
        "outputs": outputs,
        "rebuild_seconds": result.materialized_seconds,
        "patch_seconds": result.factorized_seconds,
        "speedup": result.speedup,
        "cache_warm_seconds": warmed,
        "cache_patch_seconds": cache_patch,
        "cache_recompute_seconds": cache_recompute,
    }
    scorer.close()
    return result, record


def measure_throughput(table_rows: int = 20_000, entity_rows: int = 4_000,
                       iters: int = 60, write_pause: float = 0.002,
                       repeats: int = 3) -> dict:
    """Scoring throughput with and without a concurrent paced delta stream."""
    scorer, _, table, rng = _build_serving(table_rows, 30, 2, entity_rows)
    requests = rng.integers(0, entity_rows, size=512)
    deltas = [_make_delta(rng, table, 0.005) for _ in range(8)]

    def read_loop() -> float:
        start = time.perf_counter()
        for _ in range(iters):
            scorer.score_rows(requests)
        elapsed = time.perf_counter() - start
        return iters * len(requests) / elapsed

    scorer.score_rows(requests)  # warm
    baseline_qps = max(read_loop() for _ in range(repeats))

    stop = threading.Event()

    def writer():
        index = 0
        while not stop.is_set():
            scorer.apply_delta(0, deltas[index % len(deltas)])
            index += 1
            time.sleep(write_pause)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        under_writes_qps = max(read_loop() for _ in range(repeats))
    finally:
        stop.set()
        thread.join(timeout=30)
    scorer.close()
    return {
        "baseline_qps": baseline_qps,
        "under_writes_qps": under_writes_qps,
        "throughput_ratio": under_writes_qps / baseline_qps,
    }


def run_sweep(table_rows: Sequence[int], delta_fractions: Sequence[float],
              table_width: int, outputs: int, entity_rows: int,
              repeats: int) -> Tuple[List[SpeedupResult], List[dict]]:
    results, records = [], []
    for rows in table_rows:
        for fraction in delta_fractions:
            result, record = evaluate_point(rows, fraction, table_width,
                                            outputs, entity_rows, repeats)
            results.append(result)
            records.append(record)
    return results, records


def write_results(records: List[dict], throughput: dict) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"points": records, "throughput": throughput}
    RESULTS_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return RESULTS_FILE


def _acceptance(results: List[SpeedupResult]) -> Dict[str, bool]:
    """Per-point pass/fail at the corner the issue gates on."""
    verdict = {}
    for r in results:
        if (r.parameters["delta_fraction"] <= TARGET_FRACTION
                and r.parameters["table_rows"] >= TARGET_TABLE_ROWS):
            key = (f"rows={r.parameters['table_rows']:g},"
                   f"frac={r.parameters['delta_fraction']:g}")
            verdict[key] = bool(r.speedup >= TARGET_SPEEDUP)
    return verdict


def _passes(results: List[SpeedupResult]) -> bool:
    verdict = _acceptance(results)
    return not verdict or all(verdict.values())


def _format(results: List[SpeedupResult]) -> str:
    return "\n".join(
        f"rows={r.parameters['table_rows']:>7g} "
        f"frac={r.parameters['delta_fraction']:>6g}  "
        f"rebuild={r.materialized_seconds * 1e3:8.3f} ms  "
        f"patch={r.factorized_seconds * 1e3:8.3f} ms  speedup={r.speedup:.1f}x"
        for r in results
    )


# -- timing-independent gates (run in any environment) ------------------------

def test_patched_partial_is_bit_for_bit_exact():
    """Patch and rebuild agree to the last bit on integer-valued data."""
    rng = np.random.default_rng(3)
    table = rng.integers(-5, 6, size=(512, 8)).astype(np.float64)
    weights = rng.integers(-3, 4, size=(8, 2)).astype(np.float64)
    delta = _make_delta_int(rng, table, 0.05)
    patched = patch_partial(compute_partial(table, weights), delta, weights)
    assert np.array_equal(patched, compute_partial(delta.apply_to(table), weights))


def _make_delta_int(rng, table, fraction):
    b = max(1, int(round(fraction * table.shape[0])))
    rows = rng.choice(table.shape[0], size=b, replace=False)
    new_values = rng.integers(-5, 6, size=(b, table.shape[1])).astype(np.float64)
    return MatrixDelta.upsert(rows, new_values, table)


def test_scorer_delta_matches_full_rebuild():
    """The two freshness paths land on the same published state."""
    scorer, _, table, rng = _build_serving(600, 6, 2, entity_rows=300)
    delta = _make_delta(rng, table, 0.02)
    scorer.apply_delta(0, delta)
    patched = scorer.current_snapshot().partials[0]
    scorer.update_table(0, delta.apply_to(table))
    rebuilt = scorer.current_snapshot().partials[0]
    np.testing.assert_allclose(patched, rebuilt, rtol=1e-12, atol=1e-12)
    scorer.close()


# -- timed gates (pytest-benchmark) -------------------------------------------

def test_delta_patch_beats_partial_rebuild(benchmark):
    """Delta apply wins >= 5x at fraction <= 1% on the 1e5-row table."""
    def run():
        return run_sweep(**FULL_GRID)

    results, records = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = measure_throughput()
    write_results(records, throughput)
    assert len(results) == (len(FULL_GRID["table_rows"])
                            * len(FULL_GRID["delta_fractions"]))
    assert _passes(results), _format(results)


def test_reader_throughput_survives_delta_stream():
    """Concurrent patching costs readers < 10% throughput."""
    best = max(measure_throughput()["throughput_ratio"] for _ in range(2))
    assert best >= THROUGHPUT_FLOOR, f"throughput ratio {best:.3f}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced grid for CI")
    args = parser.parse_args(argv)
    grid = SMOKE_GRID if args.smoke else FULL_GRID

    results, records = run_sweep(**grid)
    if not _passes(results):
        retry = dict(grid, repeats=grid["repeats"] + 2)
        print("acceptance miss on first pass; re-measuring with more repeats")
        results, records = run_sweep(**retry)
    throughput = measure_throughput()
    if throughput["throughput_ratio"] < THROUGHPUT_FLOOR:
        throughput = measure_throughput()  # one noise retry
    path = write_results(records, throughput)
    print(f"wrote {path}")
    print(_format(results))
    for record in records:
        print(f"rows={record['table_rows']:>7g} "
              f"frac={record['delta_fraction']:>6g}  cache: "
              f"patch {record['cache_patch_seconds'] * 1e3:7.2f} ms vs "
              f"recompute {record['cache_recompute_seconds'] * 1e3:7.2f} ms")
    print(f"reader throughput under writes: "
          f"{throughput['under_writes_qps']:,.0f} scores/s vs "
          f"{throughput['baseline_qps']:,.0f} baseline "
          f"({throughput['throughput_ratio']:.2f}x)")
    ok = _passes(results)
    throughput_ok = throughput["throughput_ratio"] >= THROUGHPUT_FLOOR
    print(f"delta patch >= {TARGET_SPEEDUP:g}x at fraction <= "
          f"{TARGET_FRACTION:g}, rows >= {TARGET_TABLE_ROWS:g}: "
          f"{'OK' if ok else 'FAIL'}")
    print(f"throughput within {1 - THROUGHPUT_FLOOR:.0%} of no-writes baseline: "
          f"{'OK' if throughput_ok else 'FAIL'}")
    return 0 if ok and throughput_ok else 1


if __name__ == "__main__":
    sys.exit(main())
