"""Figure 5: the four ML algorithms on synthetic PK-FK data.

Row 1 of the paper's Figure 5 covers logistic regression and normal-equation
linear regression; row 2 covers K-Means and GNMF.  For each algorithm we
benchmark the materialized and factorized runs at two (TR, FR) sweep points
with a fixed number of iterations, mirroring the paper's setup (the iteration
count is reduced so the suite stays fast; speed-ups are per-iteration anyway).
"""

import numpy as np
import pytest

from _common import group_name, pkfk_dataset, point_id
from repro.ml import GNMF, KMeans, LinearRegressionNE, LogisticRegressionGD

POINTS = ((10, 2), (20, 4))
ITERATIONS = 5


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestLogisticRegression:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig5", "logreg", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = dataset.materialized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(materialized, dataset.target),
                           rounds=2, iterations=1, warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig5", "logreg", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized
        model = LogisticRegressionGD(max_iter=ITERATIONS, step_size=1e-4)
        benchmark.pedantic(lambda: model.fit(normalized, dataset.target),
                           rounds=2, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestLinearRegressionNormalEquations:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig5", "linreg-ne", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = dataset.materialized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionNE()
        benchmark.pedantic(lambda: model.fit(materialized, target),
                           rounds=2, iterations=1, warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig5", "linreg-ne", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized
        target = np.asarray(dataset.target, dtype=np.float64)
        model = LinearRegressionNE()
        benchmark.pedantic(lambda: model.fit(normalized, target),
                           rounds=2, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestKMeans:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig5", "kmeans", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = dataset.materialized
        model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig5", "kmeans", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized
        model = KMeans(num_clusters=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestGNMF:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig5", "gnmf", point_id(point))
        dataset = pkfk_dataset(*point)
        materialized = np.abs(dataset.materialized)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(materialized), rounds=2, iterations=1,
                           warmup_rounds=0)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig5", "gnmf", point_id(point))
        dataset = pkfk_dataset(*point)
        normalized = dataset.normalized.apply(np.abs)
        model = GNMF(rank=5, max_iter=ITERATIONS, seed=0)
        benchmark.pedantic(lambda: model.fit(normalized), rounds=2, iterations=1,
                           warmup_rounds=0)
