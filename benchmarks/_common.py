"""Shared workloads and helpers for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper's
evaluation (see docs/paper_map.md for the per-experiment index).  The datasets built
here are laptop-scale versions of the paper's synthetic sweeps: the tuple
ratio / feature ratio / uniqueness-degree axes are the paper's, the absolute
sizes are shrunk so the whole suite finishes in minutes.

Each module benchmarks the materialized version ("M" in the paper's plots) and
the Morpheus-factorized version ("F") of the same operation with
pytest-benchmark; the speed-up the paper reports is the ratio of the two rows
in the pytest-benchmark table (they are grouped per parameter point).  In
addition, several modules print figure-style series via
:mod:`repro.bench.reporting` so the captured benchmark output contains the
same rows the paper's figures plot.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

import numpy as np

from repro.datasets.realworld import RealWorldDataset
from repro.datasets.registry import load_real_dataset
from repro.datasets.synthetic import (
    MNDataset,
    PKFKDataset,
    SyntheticMNConfig,
    SyntheticPKFKConfig,
    generate_mn,
    generate_pk_fk,
)

# Default laptop-scale sweep sizes.  The paper uses n_R = 10^6 and n_S up to
# 2x10^7; we keep the same TR / FR axes over a base of n_R = 2000.
PKFK_ATTRIBUTE_ROWS = 2_000
PKFK_ENTITY_FEATURES = 20
MN_ROWS = 1_500
MN_FEATURES = 40

#: Parameter points used by the operator-level figure benchmarks
#: (a representative corner of each region of Figure 3).
PKFK_POINTS: Tuple[Tuple[float, float], ...] = ((2, 0.5), (5, 1), (10, 2), (20, 4))
MN_UNIQUENESS_POINTS: Tuple[float, ...] = (0.01, 0.1, 0.5)


@functools.lru_cache(maxsize=None)
def pkfk_dataset(tuple_ratio: float, feature_ratio: float,
                 attribute_rows: int = PKFK_ATTRIBUTE_ROWS,
                 entity_features: int = PKFK_ENTITY_FEATURES,
                 seed: int = 0) -> PKFKDataset:
    """Cached synthetic PK-FK dataset for one (TR, FR) sweep point."""
    config = SyntheticPKFKConfig.from_ratios(
        tuple_ratio=tuple_ratio, feature_ratio=feature_ratio,
        num_attribute_rows=attribute_rows, num_entity_features=entity_features,
        seed=seed,
    )
    return generate_pk_fk(config)


@functools.lru_cache(maxsize=None)
def mn_dataset(uniqueness_degree: float, num_rows: int = MN_ROWS,
               num_features: int = MN_FEATURES, seed: int = 0) -> MNDataset:
    """Cached synthetic M:N dataset for one uniqueness-degree sweep point."""
    domain = max(1, int(round(uniqueness_degree * num_rows)))
    config = SyntheticMNConfig(num_rows=num_rows, num_features=num_features,
                               domain_size=domain, seed=seed)
    return generate_mn(config)


@functools.lru_cache(maxsize=None)
def real_dataset(name: str, scale: float = 0.01, seed: int = 0) -> RealWorldDataset:
    """Cached stand-in for one of the seven real datasets of Table 6."""
    return load_real_dataset(name, scale=scale, seed=seed)


@functools.lru_cache(maxsize=None)
def materialized_cache(tuple_ratio: float, feature_ratio: float) -> np.ndarray:
    """Cached materialized matrix for a PK-FK sweep point."""
    return pkfk_dataset(tuple_ratio, feature_ratio).materialized


def lmm_operand(num_cols: int, width: int = 2, seed: int = 7) -> np.ndarray:
    """Deterministic right-hand operand for LMM benchmarks."""
    return np.random.default_rng(seed).standard_normal((num_cols, width))


def rmm_operand(num_rows: int, width: int = 2, seed: int = 11) -> np.ndarray:
    """Deterministic left-hand operand for RMM benchmarks."""
    return np.random.default_rng(seed).standard_normal((width, num_rows))


def point_id(point: Tuple[float, float]) -> str:
    """Readable pytest parameter id for a (TR, FR) point."""
    return f"TR{point[0]:g}-FR{point[1]:g}"


def group_name(figure: str, operator: str, point) -> str:
    """Benchmark group so M and F land next to each other in the report."""
    return f"{figure} {operator} @ {point}"
