"""Figure 4: LMM and cross-product runtimes for an M:N join.

The paper varies the join-attribute uniqueness degree ``n_U / n_S`` from 0.01
to 0.5 and shows that the factorized versions become up to two orders of
magnitude faster as the join fans out.  Each uniqueness point benchmarks the
materialized and factorized versions of LMM and cross-product.
"""

import pytest

from _common import MN_UNIQUENESS_POINTS, group_name, lmm_operand, mn_dataset


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=lambda d: f"nU{d:g}")
class TestMNLMM:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig4", "lmm", f"nU={degree:g}")
        materialized = mn_dataset(degree).materialized
        operand = lmm_operand(materialized.shape[1])
        benchmark.pedantic(lambda: materialized @ operand, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig4", "lmm", f"nU={degree:g}")
        normalized = mn_dataset(degree).normalized
        operand = lmm_operand(normalized.shape[1])
        benchmark.pedantic(lambda: normalized @ operand, rounds=3, iterations=1,
                           warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=lambda d: f"nU{d:g}")
class TestMNCrossprod:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig4", "crossprod", f"nU={degree:g}")
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized.T @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig4", "crossprod", f"nU={degree:g}")
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(normalized.crossprod, rounds=3, iterations=1, warmup_rounds=1)
