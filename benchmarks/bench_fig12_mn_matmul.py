"""Figure 12: M:N operator-level results for LMM, RMM and cross-product."""

import pytest

from _common import MN_UNIQUENESS_POINTS, group_name, lmm_operand, mn_dataset, rmm_operand


def _degree_id(degree):
    return f"nU{degree:g}"


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNLMM:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "lmm", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        operand = lmm_operand(materialized.shape[1])
        benchmark.pedantic(lambda: materialized @ operand, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "lmm", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        operand = lmm_operand(normalized.shape[1])
        benchmark.pedantic(lambda: normalized @ operand, rounds=3, iterations=1,
                           warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNRMM:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "rmm", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        operand = rmm_operand(materialized.shape[0])
        benchmark.pedantic(lambda: operand @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "rmm", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        operand = rmm_operand(normalized.shape[0])
        benchmark.pedantic(lambda: operand @ normalized, rounds=3, iterations=1,
                           warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNCrossprod:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "crossprod", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized.T @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig12", "crossprod", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(normalized.crossprod, rounds=3, iterations=1, warmup_rounds=1)
