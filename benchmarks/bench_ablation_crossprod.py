"""Ablation: naive (Algorithm 1) versus efficient (Algorithm 2) cross-product.

Section 3.3.5 argues that the efficient rewrite saves roughly half of the
entity-side arithmetic (by using ``crossprod(S)``) and avoids the sparse
transposed product ``K^T K`` (by using ``diag(colSums(K))``).  The appendix
compares the two; this benchmark reproduces that comparison along with the
materialized baseline.
"""

import pytest

from _common import group_name, materialized_cache, pkfk_dataset, point_id

POINTS = ((10, 2), (20, 4))


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestCrossprodAblation:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("ablation", "crossprod", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.T @ materialized, rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized_naive(self, benchmark, point):
        benchmark.group = group_name("ablation", "crossprod", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(lambda: normalized.crossprod("naive"), rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized_efficient(self, benchmark, point):
        benchmark.group = group_name("ablation", "crossprod", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(lambda: normalized.crossprod("efficient"), rounds=3, iterations=1,
                           warmup_rounds=1)
