"""Figure 6: the remaining element-wise and aggregation operators for PK-FK joins.

The paper's Figure 6 covers scalar addition, RMM, row summation, column
summation and full summation over the same (TR, FR) sweep as Figure 3.
"""

import pytest

from _common import PKFK_POINTS, group_name, materialized_cache, pkfk_dataset, point_id, rmm_operand

POINTS = PKFK_POINTS[1:]  # skip the least redundant corner to keep the suite fast


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestScalarAddition:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig6", "scalar-add", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized + 3.0, rounds=5, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig6", "scalar-add", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(lambda: normalized + 3.0, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestRMM:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig6", "rmm", point_id(point))
        materialized = materialized_cache(*point)
        operand = rmm_operand(materialized.shape[0])
        benchmark.pedantic(lambda: operand @ materialized, rounds=5, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig6", "rmm", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        operand = rmm_operand(normalized.shape[0])
        benchmark.pedantic(lambda: operand @ normalized, rounds=5, iterations=1,
                           warmup_rounds=1)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestRowSums:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig6", "rowsums", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.sum(axis=1), rounds=5, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig6", "rowsums", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.rowsums, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestColSums:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig6", "colsums", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.sum(axis=0), rounds=5, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig6", "colsums", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.colsums, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("point", POINTS, ids=point_id)
class TestFullSum:
    def test_materialized(self, benchmark, point):
        benchmark.group = group_name("fig6", "sum", point_id(point))
        materialized = materialized_cache(*point)
        benchmark.pedantic(lambda: materialized.sum(), rounds=5, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, point):
        benchmark.group = group_name("fig6", "sum", point_id(point))
        normalized = pkfk_dataset(*point).normalized
        benchmark.pedantic(normalized.total_sum, rounds=5, iterations=1, warmup_rounds=1)
