"""Figures 11: M:N operator-level results for scalar and aggregation operators.

The paper sweeps the number of tuples, the number of features and the
join-attribute uniqueness degree; the dominant effect is the uniqueness
degree, which we sweep here for scalar addition/multiplication, rowSums,
colSums and sum.
"""

import pytest

from _common import MN_UNIQUENESS_POINTS, group_name, mn_dataset


def _degree_id(degree):
    return f"nU{degree:g}"


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNScalarAddition:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "scalar-add", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized + 3.0, rounds=3, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "scalar-add", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(lambda: normalized + 3.0, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNScalarMultiplication:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "scalar-mult", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized * 3.0, rounds=3, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "scalar-mult", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(lambda: normalized * 3.0, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNRowSums:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "rowsums", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized.sum(axis=1), rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "rowsums", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(normalized.rowsums, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNColSums:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "colsums", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized.sum(axis=0), rounds=3, iterations=1,
                           warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "colsums", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(normalized.colsums, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("degree", MN_UNIQUENESS_POINTS, ids=_degree_id)
class TestMNSum:
    def test_materialized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "sum", _degree_id(degree))
        materialized = mn_dataset(degree).materialized
        benchmark.pedantic(lambda: materialized.sum(), rounds=3, iterations=1, warmup_rounds=1)

    def test_factorized(self, benchmark, degree):
        benchmark.group = group_name("fig11", "sum", _degree_id(degree))
        normalized = mn_dataset(degree).normalized
        benchmark.pedantic(normalized.total_sum, rounds=3, iterations=1, warmup_rounds=1)
