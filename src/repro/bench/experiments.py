"""Per-figure / per-table experiment definitions.

Each function here builds the workload for one experiment of the paper's
evaluation at laptop scale and returns either the datasets or the
:class:`~repro.bench.harness.SpeedupResult` rows the corresponding benchmark
prints.  The pytest benchmarks in ``benchmarks/`` call these functions and add
pytest-benchmark timing on top; EXPERIMENTS.md records the resulting
paper-vs-measured comparison.

Scale note: the paper's synthetic sweeps use ``n_R = 10^6`` and
``n_S`` up to ``2 x 10^7``; the defaults here use ``n_R`` of a few thousand so
a full grid finishes in seconds.  The tuple-ratio and feature-ratio axes --
which determine the speed-up *shape* -- are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.bench.harness import SpeedupResult, compare
from repro.core.normalized_matrix import NormalizedMatrix
from repro.datasets.synthetic import (
    MNDataset,
    SyntheticMNConfig,
    SyntheticPKFKConfig,
    generate_mn,
    generate_pk_fk,
)

#: Default sweep axes, matching the ranges of Figures 3-7 (values thinned so a
#: full grid stays fast; the end points and the low-redundancy corner are kept).
DEFAULT_TUPLE_RATIOS = (1, 2, 5, 10, 20)
DEFAULT_FEATURE_RATIOS = (0.25, 0.5, 1, 2, 4)
DEFAULT_MN_UNIQUENESS = (0.01, 0.05, 0.1, 0.25, 0.5)


@dataclass
class OperatorExperiment:
    """One operator-level experiment: a name plus M and F callables per dataset."""

    name: str
    materialized_fn: Callable[[np.ndarray], object]
    factorized_fn: Callable[[NormalizedMatrix], object]


def pk_fk_operator_experiments(x_cols: int = 2) -> List[OperatorExperiment]:
    """The operator set of Figures 3, 6 and 7 with shared argument matrices."""

    def lmm_arg(d: int) -> np.ndarray:
        return np.random.default_rng(7).standard_normal((d, x_cols))

    def rmm_arg(n: int) -> np.ndarray:
        return np.random.default_rng(11).standard_normal((x_cols, n))

    return [
        OperatorExperiment(
            "scalar_multiplication",
            lambda t: t * 3.0,
            lambda tn: tn * 3.0,
        ),
        OperatorExperiment(
            "scalar_addition",
            lambda t: t + 3.0,
            lambda tn: tn + 3.0,
        ),
        OperatorExperiment(
            "scalar_exponentiation",
            lambda t: t ** 2,
            lambda tn: tn ** 2,
        ),
        OperatorExperiment(
            "rowsums",
            lambda t: t.sum(axis=1),
            lambda tn: tn.rowsums(),
        ),
        OperatorExperiment(
            "colsums",
            lambda t: t.sum(axis=0),
            lambda tn: tn.colsums(),
        ),
        OperatorExperiment(
            "sum",
            lambda t: t.sum(),
            lambda tn: tn.total_sum(),
        ),
        OperatorExperiment(
            "lmm",
            lambda t: t @ lmm_arg(t.shape[1]),
            lambda tn: tn @ lmm_arg(tn.shape[1]),
        ),
        OperatorExperiment(
            "rmm",
            lambda t: rmm_arg(t.shape[0]) @ t,
            lambda tn: rmm_arg(tn.shape[0]) @ tn,
        ),
        OperatorExperiment(
            "crossprod",
            lambda t: t.T @ t,
            lambda tn: tn.crossprod(),
        ),
        OperatorExperiment(
            "pseudoinverse",
            lambda t: np.linalg.pinv(t),
            lambda tn: tn.ginv(),
        ),
    ]


def build_pk_fk_dataset(tuple_ratio: float, feature_ratio: float,
                        num_attribute_rows: int = 400,
                        num_entity_features: int = 10, seed: int = 0):
    """Generate one PK-FK dataset of the sweep grid."""
    config = SyntheticPKFKConfig.from_ratios(
        tuple_ratio=tuple_ratio, feature_ratio=feature_ratio,
        num_attribute_rows=num_attribute_rows,
        num_entity_features=num_entity_features, seed=seed,
    )
    return generate_pk_fk(config)


def run_pk_fk_operator_sweep(experiment: OperatorExperiment,
                             tuple_ratios: Sequence[float] = DEFAULT_TUPLE_RATIOS,
                             feature_ratios: Sequence[float] = DEFAULT_FEATURE_RATIOS,
                             num_attribute_rows: int = 400,
                             repeats: int = 3) -> List[SpeedupResult]:
    """Measure one operator over the (TR, FR) grid (Figure 3/6/7 style)."""
    results: List[SpeedupResult] = []
    for tr in tuple_ratios:
        for fr in feature_ratios:
            dataset = build_pk_fk_dataset(tr, fr, num_attribute_rows=num_attribute_rows)
            materialized = dataset.materialized
            normalized = dataset.normalized
            results.append(compare(
                lambda m=materialized: experiment.materialized_fn(m),
                lambda n=normalized: experiment.factorized_fn(n),
                parameters={"tuple_ratio": tr, "feature_ratio": fr},
                repeats=repeats,
            ))
    return results


def build_mn_dataset(uniqueness_degree: float, num_rows: int = 600,
                     num_features: int = 20, seed: int = 0) -> MNDataset:
    """Generate one M:N dataset of the uniqueness-degree sweep (Figure 4/11/12)."""
    domain = max(1, int(round(uniqueness_degree * num_rows)))
    config = SyntheticMNConfig(num_rows=num_rows, num_features=num_features,
                               domain_size=domain, seed=seed)
    return generate_mn(config)


def mn_operator_experiments(x_cols: int = 2) -> List[OperatorExperiment]:
    """Operator set of Figures 4, 11 and 12 for M:N normalized matrices."""

    def lmm_arg(d: int) -> np.ndarray:
        return np.random.default_rng(7).standard_normal((d, x_cols))

    def rmm_arg(n: int) -> np.ndarray:
        return np.random.default_rng(11).standard_normal((x_cols, n))

    return [
        OperatorExperiment("scalar_addition", lambda t: t + 3.0, lambda tn: tn + 3.0),
        OperatorExperiment("scalar_multiplication", lambda t: t * 3.0, lambda tn: tn * 3.0),
        OperatorExperiment("rowsums", lambda t: t.sum(axis=1), lambda tn: tn.rowsums()),
        OperatorExperiment("colsums", lambda t: t.sum(axis=0), lambda tn: tn.colsums()),
        OperatorExperiment("sum", lambda t: t.sum(), lambda tn: tn.total_sum()),
        OperatorExperiment("lmm", lambda t: t @ lmm_arg(t.shape[1]),
                           lambda tn: tn @ lmm_arg(tn.shape[1])),
        OperatorExperiment("rmm", lambda t: rmm_arg(t.shape[0]) @ t,
                           lambda tn: rmm_arg(tn.shape[0]) @ tn),
        OperatorExperiment("crossprod", lambda t: t.T @ t, lambda tn: tn.crossprod()),
    ]


def run_mn_operator_sweep(experiment: OperatorExperiment,
                          uniqueness_degrees: Sequence[float] = DEFAULT_MN_UNIQUENESS,
                          num_rows: int = 600, num_features: int = 20,
                          repeats: int = 3) -> List[SpeedupResult]:
    """Measure one operator over the M:N uniqueness-degree sweep."""
    results: List[SpeedupResult] = []
    for degree in uniqueness_degrees:
        dataset = build_mn_dataset(degree, num_rows=num_rows, num_features=num_features)
        materialized = dataset.materialized
        normalized = dataset.normalized
        results.append(compare(
            lambda m=materialized: experiment.materialized_fn(m),
            lambda n=normalized: experiment.factorized_fn(n),
            parameters={"uniqueness_degree": degree},
            repeats=repeats,
        ))
    return results


def decision_rule_confusion(speedups: Sequence[SpeedupResult],
                            tuple_ratio_threshold: float = 5.0,
                            feature_ratio_threshold: float = 1.0) -> Dict[str, int]:
    """Evaluate the heuristic decision rule against measured speed-ups.

    Returns the four confusion-matrix counts where "positive" means "the rule
    chose to factorize" and the ground truth is "the factorized version was at
    least as fast" (Section 5.1's conservativeness discussion).
    """
    counts = {"true_positive": 0, "false_positive": 0, "true_negative": 0, "false_negative": 0}
    for result in speedups:
        chose_factorized = (
            result.parameters["tuple_ratio"] >= tuple_ratio_threshold
            and result.parameters["feature_ratio"] >= feature_ratio_threshold
        )
        factorized_won = result.speedup >= 1.0
        if chose_factorized and factorized_won:
            counts["true_positive"] += 1
        elif chose_factorized and not factorized_won:
            counts["false_positive"] += 1
        elif not chose_factorized and not factorized_won:
            counts["true_negative"] += 1
        else:
            counts["false_negative"] += 1
    return counts
