"""Timing and sweep utilities for the benchmark suite.

Everything here is deterministic and dependency-free so both the pytest
benchmarks and the runnable examples can reuse it.  Wall-clock timing uses
``time.perf_counter`` with a configurable number of repeats, reporting the
minimum (the conventional choice for micro-benchmarks because it is the least
noisy estimator of the achievable runtime).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple


@dataclass
class TimingResult:
    """Wall-clock timings of one callable.

    ``best``/``mean`` summarize the *finite* timings only: a NaN entry (the
    conventional marker for a failed or skipped repeat) is ignored rather
    than poisoning every downstream report, and an empty or all-NaN result
    reports NaN explicitly so callers can detect the missing measurement.
    """

    label: str
    seconds: List[float] = field(default_factory=list)

    @property
    def valid_seconds(self) -> List[float]:
        """The finite timings (failed repeats recorded as NaN/inf are dropped)."""
        return [s for s in self.seconds if math.isfinite(s)]

    @property
    def best(self) -> float:
        valid = self.valid_seconds
        return min(valid) if valid else float("nan")

    @property
    def mean(self) -> float:
        valid = self.valid_seconds
        return sum(valid) / len(valid) if valid else float("nan")


@dataclass
class SpeedupResult:
    """A factorized-vs-materialized comparison at one parameter point."""

    parameters: Dict[str, float]
    materialized_seconds: float
    factorized_seconds: float

    @property
    def speedup(self) -> float:
        """Materialized-over-factorized ratio; NaN when either side is unmeasured.

        A missing timing (NaN on either side) must not masquerade as a real
        ratio -- ``nan / x`` and ``x / nan`` already yield NaN, but
        ``nan <= 0`` is False, so without the explicit guard a NaN factorized
        time would fall through to the division and *look* intentional.
        """
        if math.isnan(self.materialized_seconds) or math.isnan(self.factorized_seconds):
            return float("nan")
        if self.factorized_seconds <= 0:
            return float("inf")
        return self.materialized_seconds / self.factorized_seconds


@dataclass
class PlanEvaluation:
    """How the planner's pick compares with the best hand-picked configuration.

    Used by the auto-planner benchmark: ``auto_seconds`` is the measured
    runtime of the configuration ``engine="auto"`` selected, ``best_seconds``
    the fastest measured hand-picked configuration (``best_label``).  Like
    :class:`SpeedupResult`, a missing measurement (NaN) never masquerades as
    a real ratio -- ``slowdown`` propagates NaN and ``within`` is then False.
    """

    parameters: Dict[str, float]
    auto_label: str
    auto_seconds: float
    best_label: str
    best_seconds: float

    @property
    def slowdown(self) -> float:
        """Auto-over-best ratio (1.0 = the planner picked the winner)."""
        if math.isnan(self.auto_seconds) or math.isnan(self.best_seconds):
            return float("nan")
        if self.best_seconds <= 0:
            return float("inf") if self.auto_seconds > 0 else 1.0
        return self.auto_seconds / self.best_seconds

    def within(self, factor: float) -> bool:
        """True when the auto pick is at most *factor* slower than the best."""
        ratio = self.slowdown
        return (not math.isnan(ratio)) and ratio <= factor


def measure(fn: Callable[[], object], label: str = "", repeats: int = 3,
            warmup: int = 1) -> TimingResult:
    """Time *fn* with *warmup* discarded runs followed by *repeats* measured runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        fn()
    result = TimingResult(label=label)
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        result.seconds.append(time.perf_counter() - start)
    return result


def compare(materialized_fn: Callable[[], object], factorized_fn: Callable[[], object],
            parameters: Dict[str, float], repeats: int = 3, warmup: int = 1) -> SpeedupResult:
    """Time the materialized and factorized versions of one operation and compare."""
    materialized = measure(materialized_fn, "materialized", repeats=repeats, warmup=warmup)
    factorized = measure(factorized_fn, "factorized", repeats=repeats, warmup=warmup)
    return SpeedupResult(
        parameters=dict(parameters),
        materialized_seconds=materialized.best,
        factorized_seconds=factorized.best,
    )


def sweep_grid(parameter_grid: Sequence[Dict[str, float]],
               runner: Callable[[Dict[str, float]], SpeedupResult]) -> List[SpeedupResult]:
    """Run *runner* for every parameter combination and collect the results."""
    return [runner(params) for params in parameter_grid]


def cartesian(**axes: Iterable) -> List[Dict[str, float]]:
    """Build a parameter grid from named axes, e.g. ``cartesian(tr=[5, 10], fr=[1, 2])``."""
    grid: List[Dict[str, float]] = [{}]
    for name, values in axes.items():
        grid = [dict(point, **{name: value}) for point in grid for value in values]
    return grid
