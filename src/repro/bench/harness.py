"""Timing and sweep utilities for the benchmark suite.

Everything here is deterministic and dependency-free so both the pytest
benchmarks and the runnable examples can reuse it.  Wall-clock timing uses
``time.perf_counter`` with a configurable number of repeats, reporting the
minimum (the conventional choice for micro-benchmarks because it is the least
noisy estimator of the achievable runtime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple


@dataclass
class TimingResult:
    """Wall-clock timings of one callable."""

    label: str
    seconds: List[float] = field(default_factory=list)

    @property
    def best(self) -> float:
        return min(self.seconds) if self.seconds else float("nan")

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds) if self.seconds else float("nan")


@dataclass
class SpeedupResult:
    """A factorized-vs-materialized comparison at one parameter point."""

    parameters: Dict[str, float]
    materialized_seconds: float
    factorized_seconds: float

    @property
    def speedup(self) -> float:
        if self.factorized_seconds <= 0:
            return float("inf")
        return self.materialized_seconds / self.factorized_seconds


def measure(fn: Callable[[], object], label: str = "", repeats: int = 3,
            warmup: int = 1) -> TimingResult:
    """Time *fn* with *warmup* discarded runs followed by *repeats* measured runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    for _ in range(warmup):
        fn()
    result = TimingResult(label=label)
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        result.seconds.append(time.perf_counter() - start)
    return result


def compare(materialized_fn: Callable[[], object], factorized_fn: Callable[[], object],
            parameters: Dict[str, float], repeats: int = 3, warmup: int = 1) -> SpeedupResult:
    """Time the materialized and factorized versions of one operation and compare."""
    materialized = measure(materialized_fn, "materialized", repeats=repeats, warmup=warmup)
    factorized = measure(factorized_fn, "factorized", repeats=repeats, warmup=warmup)
    return SpeedupResult(
        parameters=dict(parameters),
        materialized_seconds=materialized.best,
        factorized_seconds=factorized.best,
    )


def sweep_grid(parameter_grid: Sequence[Dict[str, float]],
               runner: Callable[[Dict[str, float]], SpeedupResult]) -> List[SpeedupResult]:
    """Run *runner* for every parameter combination and collect the results."""
    return [runner(params) for params in parameter_grid]


def cartesian(**axes: Iterable) -> List[Dict[str, float]]:
    """Build a parameter grid from named axes, e.g. ``cartesian(tr=[5, 10], fr=[1, 2])``."""
    grid: List[Dict[str, float]] = [{}]
    for name, values in axes.items():
        grid = [dict(point, **{name: value}) for point in grid for value in values]
    return grid
