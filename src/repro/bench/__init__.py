"""Benchmark harness shared by the ``benchmarks/`` suite.

The modules here contain no timing loops of their own (pytest-benchmark owns
those); they provide the plumbing every experiment needs:

* :mod:`repro.bench.harness` -- wall-clock measurement of a callable, speed-up
  computation, and grid sweeps over (tuple ratio, feature ratio) or M:N
  uniqueness degrees.
* :mod:`repro.bench.reporting` -- plain-text table/series rendering so each
  benchmark prints the same rows the paper's tables and figures report.
* :mod:`repro.bench.experiments` -- the per-figure / per-table experiment
  definitions (workloads, parameter grids, which operators or algorithms to
  run), shared between the pytest benchmarks and the examples.
"""

from repro.bench.harness import (
    TimingResult,
    SpeedupResult,
    measure,
    compare,
    sweep_grid,
)
from repro.bench.reporting import format_table, format_speedup_grid, print_report
from repro.bench import experiments

__all__ = [
    "TimingResult",
    "SpeedupResult",
    "measure",
    "compare",
    "sweep_grid",
    "format_table",
    "format_speedup_grid",
    "print_report",
    "experiments",
]
