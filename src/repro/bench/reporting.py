"""Plain-text rendering of benchmark results.

The paper reports its evaluation as tables of runtimes/speed-ups and as
speed-up grids over (tuple ratio, feature ratio).  These helpers render the
same rows and grids as fixed-width text so every benchmark prints a directly
comparable artifact (captured into ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import SpeedupResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(*([headers] + [list(r) for r in rows]))] \
        if rows else [[str(h)] for h in headers]
    widths = [max(len(v) for v in col) for col in columns]
    def fmt_row(values: Sequence[object]) -> str:
        return " | ".join(str(v).ljust(w) for v, w in zip(values, widths))
    lines = [fmt_row(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in rows)
    return "\n".join(lines)


def format_speedup_grid(results: Sequence[SpeedupResult], row_key: str,
                        col_key: str) -> str:
    """Render a grid of speed-ups indexed by two parameter names.

    This mirrors the paper's Figure 3/6 heat maps: rows are one parameter
    (e.g. feature ratio), columns the other (e.g. tuple ratio), cells are the
    measured speed-up of factorized over materialized.
    """
    row_values = sorted({r.parameters[row_key] for r in results})
    col_values = sorted({r.parameters[col_key] for r in results})
    lookup: Dict[tuple, float] = {
        (r.parameters[row_key], r.parameters[col_key]): r.speedup for r in results
    }
    headers = [f"{row_key}\\{col_key}"] + [f"{c:g}" for c in col_values]
    rows: List[List[str]] = []
    for rv in row_values:
        row = [f"{rv:g}"]
        for cv in col_values:
            value = lookup.get((rv, cv))
            row.append(f"{value:.2f}x" if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_speedup_rows(results: Sequence[SpeedupResult],
                        parameter_names: Sequence[str]) -> str:
    """Render one row per measurement: parameters, both runtimes and the speed-up."""
    headers = list(parameter_names) + ["materialized (s)", "factorized (s)", "speedup"]
    rows = []
    for result in results:
        row = [f"{result.parameters.get(name, ''):g}" if isinstance(result.parameters.get(name), (int, float))
               else str(result.parameters.get(name, "")) for name in parameter_names]
        row.extend([
            f"{result.materialized_seconds:.4f}",
            f"{result.factorized_seconds:.4f}",
            f"{result.speedup:.2f}x",
        ])
        rows.append(row)
    return format_table(headers, rows)


def print_report(title: str, body: str) -> None:
    """Print a titled report block (what the benchmarks emit into bench_output.txt)."""
    banner = "=" * max(len(title), 8)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
