"""Registry of the seven real-dataset specifications from Table 6.

Each entry records the published ``(n_S, d_S, nnz)`` of the entity table and
``(n_Ri, d_Ri, nnz)`` of every attribute table, exactly as printed in the
paper.  The Table 7 / Table 12 benchmarks iterate over this registry with a
scale factor so they finish in seconds on a laptop while preserving every
ratio that drives the speed-ups.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.realworld import (
    AttributeTableSpec,
    RealWorldDataset,
    RealWorldSpec,
    generate_real_dataset,
)

#: Specifications straight from Table 6 of the paper.
REAL_DATASET_SPECS: Dict[str, RealWorldSpec] = {
    "expedia": RealWorldSpec(
        name="expedia",
        num_entity_rows=942_142, num_entity_features=27, entity_nnz=5_652_852,
        attribute_tables=(
            AttributeTableSpec(11_939, 12_013, 107_451),
            AttributeTableSpec(37_021, 40_242, 555_315),
        ),
    ),
    "movies": RealWorldSpec(
        name="movies",
        num_entity_rows=1_000_209, num_entity_features=0, entity_nnz=0,
        attribute_tables=(
            AttributeTableSpec(6_040, 9_509, 30_200),
            AttributeTableSpec(3_706, 3_839, 81_532),
        ),
    ),
    "yelp": RealWorldSpec(
        name="yelp",
        num_entity_rows=215_879, num_entity_features=0, entity_nnz=0,
        attribute_tables=(
            AttributeTableSpec(11_535, 11_706, 380_655),
            AttributeTableSpec(43_873, 43_900, 307_111),
        ),
    ),
    "walmart": RealWorldSpec(
        name="walmart",
        num_entity_rows=421_570, num_entity_features=1, entity_nnz=421_570,
        attribute_tables=(
            AttributeTableSpec(2_340, 2_387, 23_400),
            AttributeTableSpec(45, 53, 135),
        ),
    ),
    "lastfm": RealWorldSpec(
        name="lastfm",
        num_entity_rows=343_747, num_entity_features=0, entity_nnz=0,
        attribute_tables=(
            AttributeTableSpec(4_099, 5_019, 39_992),
            AttributeTableSpec(50_000, 50_233, 250_000),
        ),
    ),
    "books": RealWorldSpec(
        name="books",
        num_entity_rows=253_120, num_entity_features=0, entity_nnz=0,
        attribute_tables=(
            AttributeTableSpec(27_876, 28_022, 83_628),
            AttributeTableSpec(49_972, 53_641, 249_860),
        ),
    ),
    "flights": RealWorldSpec(
        name="flights",
        num_entity_rows=66_548, num_entity_features=20, entity_nnz=55_301,
        attribute_tables=(
            AttributeTableSpec(540, 718, 3_240),
            AttributeTableSpec(3_167, 6_464, 22_169),
            AttributeTableSpec(3_170, 6_467, 22_190),
        ),
    ),
}


def list_real_datasets() -> List[str]:
    """Names of the registered real-dataset stand-ins, in Table 6 order."""
    return list(REAL_DATASET_SPECS.keys())


def load_real_dataset(name: str, scale: float = 0.01, seed: int = 0) -> RealWorldDataset:
    """Generate the stand-in for dataset *name*, scaled by *scale*.

    The default ``scale=0.01`` keeps the largest dataset around ten thousand
    entity rows, which is enough for every speed-up trend to be visible while
    keeping the whole Table 7 benchmark in the minutes range.
    """
    key = name.lower()
    if key not in REAL_DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {list_real_datasets()}")
    return generate_real_dataset(REAL_DATASET_SPECS[key], scale=scale, seed=seed)
