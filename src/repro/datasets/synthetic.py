"""Synthetic data generators for the paper's operator and ML sweeps.

Table 4 of the paper defines the PK-FK sweep in terms of the tuple ratio
``TR = n_S / n_R`` and the feature ratio ``FR = d_R / d_S``; Table 5 defines
the M:N sweep in terms of the table sizes, feature counts and the join
attribute's domain size ``n_U``.  The generators here take exactly those knobs
(plus a global ``scale`` so the laptop-scale benchmarks can shrink the
absolute sizes while preserving the ratios) and return both the base matrices
and the ready-made normalized matrix, along with a target vector for the
supervised algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DataGenerationError
from repro.la.ops import indicator_from_labels
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.mn_matrix import MNNormalizedMatrix


@dataclass
class SyntheticPKFKConfig:
    """Dimensions of a synthetic star-schema PK-FK dataset.

    ``num_entity_rows`` is ``n_S``; each attribute table ``i`` has
    ``num_attribute_rows[i]`` rows (``n_Ri``) and ``num_attribute_features[i]``
    features (``d_Ri``); the entity table has ``num_entity_features`` (``d_S``)
    features.  A single-join dataset is just one entry in each list.
    """

    num_entity_rows: int
    num_entity_features: int
    num_attribute_rows: List[int]
    num_attribute_features: List[int]
    target_noise: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_entity_rows <= 0:
            raise DataGenerationError("num_entity_rows must be positive")
        if self.num_entity_features < 0:
            raise DataGenerationError("num_entity_features must be non-negative")
        if len(self.num_attribute_rows) != len(self.num_attribute_features):
            raise DataGenerationError("attribute row/feature lists must have equal length")
        if not self.num_attribute_rows:
            raise DataGenerationError("at least one attribute table is required")
        for n_r in self.num_attribute_rows:
            if n_r <= 0:
                raise DataGenerationError("attribute tables must have at least one row")
            if n_r > self.num_entity_rows:
                raise DataGenerationError(
                    "n_R > n_S would leave unreferenced attribute rows; "
                    "shrink the attribute table or grow the entity table"
                )
        for d_r in self.num_attribute_features:
            if d_r <= 0:
                raise DataGenerationError("attribute tables must have at least one feature")

    @classmethod
    def from_ratios(cls, tuple_ratio: float, feature_ratio: float,
                    num_attribute_rows: int = 1000, num_entity_features: int = 20,
                    seed: int = 0) -> "SyntheticPKFKConfig":
        """Build a single-join config from (TR, FR), the paper's sweep knobs."""
        if tuple_ratio < 1:
            raise DataGenerationError("tuple_ratio must be >= 1")
        if feature_ratio <= 0:
            raise DataGenerationError("feature_ratio must be positive")
        n_s = int(round(tuple_ratio * num_attribute_rows))
        d_r = max(1, int(round(feature_ratio * num_entity_features)))
        return cls(
            num_entity_rows=n_s,
            num_entity_features=num_entity_features,
            num_attribute_rows=[num_attribute_rows],
            num_attribute_features=[d_r],
            seed=seed,
        )


@dataclass
class PKFKDataset:
    """A generated star-schema dataset: base matrices, indicators, target, and views."""

    entity: Optional[np.ndarray]
    indicators: List
    attributes: List[np.ndarray]
    target: np.ndarray
    config: SyntheticPKFKConfig = field(repr=False)

    @property
    def normalized(self) -> NormalizedMatrix:
        """The factorized view ("F" in the paper's plots)."""
        return NormalizedMatrix(self.entity, self.indicators, self.attributes)

    @property
    def materialized(self) -> np.ndarray:
        """The materialized single-table view ("M" in the paper's plots)."""
        return np.asarray(self.normalized.materialize())

    @property
    def tuple_ratio(self) -> float:
        return self.normalized.tuple_ratio

    @property
    def feature_ratio(self) -> float:
        return self.normalized.feature_ratio


def generate_pk_fk(config: SyntheticPKFKConfig) -> PKFKDataset:
    """Generate a synthetic star-schema PK-FK dataset.

    Feature values are standard Gaussian; foreign keys are drawn so that every
    attribute row is referenced at least once (the paper's standing
    assumption); the target is a noisy linear function of the joined features
    so the supervised algorithms have signal to fit.
    """
    rng = np.random.default_rng(config.seed)
    n_s = config.num_entity_rows
    entity = (rng.standard_normal((n_s, config.num_entity_features))
              if config.num_entity_features else None)

    indicators = []
    attributes = []
    for n_r, d_r in zip(config.num_attribute_rows, config.num_attribute_features):
        attributes.append(rng.standard_normal((n_r, d_r)))
        # Guarantee full coverage: first n_r entity rows reference each attribute
        # row once, the rest are uniform.
        labels = np.concatenate([
            np.arange(n_r, dtype=np.int64),
            rng.integers(0, n_r, size=n_s - n_r, dtype=np.int64),
        ])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=n_r))

    normalized = NormalizedMatrix(entity, indicators, attributes, validate=False)
    total_features = normalized.logical_cols
    true_weights = rng.standard_normal((total_features, 1))
    scores = normalized @ true_weights
    noise = config.target_noise * rng.standard_normal((n_s, 1))
    target = np.where(scores + noise > 0, 1.0, -1.0)
    return PKFKDataset(entity=entity, indicators=indicators, attributes=attributes,
                       target=target, config=config)


def generate_star(num_entity_rows: int, num_entity_features: int,
                  attribute_tables: Sequence[tuple], seed: int = 0) -> PKFKDataset:
    """Convenience wrapper: *attribute_tables* is a list of ``(n_R, d_R)`` pairs."""
    config = SyntheticPKFKConfig(
        num_entity_rows=num_entity_rows,
        num_entity_features=num_entity_features,
        num_attribute_rows=[n for n, _ in attribute_tables],
        num_attribute_features=[d for _, d in attribute_tables],
        seed=seed,
    )
    return generate_pk_fk(config)


@dataclass
class SyntheticMNConfig:
    """Dimensions of a synthetic two-table M:N join dataset (Table 5).

    Both tables have ``num_rows`` rows and ``num_features`` features; the join
    attribute takes ``domain_size`` (``n_U``) distinct values in each table.
    Smaller ``domain_size`` means more tuples repeat after the join
    (``domain_size == 1`` is the full Cartesian product).
    """

    num_rows: int
    num_features: int
    domain_size: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_rows <= 0 or self.num_features <= 0:
            raise DataGenerationError("num_rows and num_features must be positive")
        if not 1 <= self.domain_size <= self.num_rows:
            raise DataGenerationError("domain_size must be between 1 and num_rows")

    @property
    def uniqueness_degree(self) -> float:
        """The paper's join-attribute uniqueness degree ``n_U / n_S``."""
        return self.domain_size / self.num_rows


@dataclass
class MNDataset:
    """A generated M:N dataset: component matrices, indicators, target, views."""

    left: np.ndarray
    right: np.ndarray
    left_indicator: object
    right_indicator: object
    target: np.ndarray
    config: SyntheticMNConfig = field(repr=False)

    @property
    def normalized(self) -> MNNormalizedMatrix:
        return MNNormalizedMatrix([self.left_indicator, self.right_indicator],
                                  [self.left, self.right])

    @property
    def materialized(self) -> np.ndarray:
        return np.asarray(self.normalized.materialize())

    @property
    def output_rows(self) -> int:
        return self.left_indicator.shape[0]


def generate_mn(config: SyntheticMNConfig) -> MNDataset:
    """Generate a synthetic M:N equi-join dataset.

    Join-attribute values are assigned round-robin so every one of the
    ``domain_size`` values appears in both tables (no dangling rows), giving a
    join output of roughly ``num_rows^2 / domain_size`` rows.
    """
    rng = np.random.default_rng(config.seed)
    n, d, n_u = config.num_rows, config.num_features, config.domain_size
    left = rng.standard_normal((n, d))
    right = rng.standard_normal((n, d))

    left_join_values = np.arange(n, dtype=np.int64) % n_u
    right_join_values = np.arange(n, dtype=np.int64) % n_u
    rng.shuffle(left_join_values)
    rng.shuffle(right_join_values)

    # Enumerate the join output: group right rows by join value, then emit one
    # output row per (left row, matching right row) pair.
    right_groups: dict = {}
    for j, value in enumerate(right_join_values):
        right_groups.setdefault(int(value), []).append(j)
    left_rows: List[int] = []
    right_rows: List[int] = []
    for i, value in enumerate(left_join_values):
        for j in right_groups.get(int(value), ()):
            left_rows.append(i)
            right_rows.append(j)
    if not left_rows:
        raise DataGenerationError("M:N join produced no output rows")

    left_indicator = indicator_from_labels(np.asarray(left_rows), num_columns=n)
    right_indicator = indicator_from_labels(np.asarray(right_rows), num_columns=n)

    normalized = MNNormalizedMatrix([left_indicator, right_indicator], [left, right],
                                    validate=False)
    true_weights = rng.standard_normal((2 * d, 1))
    scores = normalized @ true_weights
    target = np.where(scores > 0, 1.0, -1.0)
    return MNDataset(left=left, right=right, left_indicator=left_indicator,
                     right_indicator=right_indicator, target=target, config=config)
