"""Synthetic stand-ins for the seven real multi-table datasets of Table 6.

The paper evaluates Morpheus on seven public multi-table datasets (Expedia,
MovieLens1M, Yelp, Walmart, LastFM, BookCrossing, Flights) adapted from
Kumar et al. [28]: categorical features are one-hot encoded, so the feature
matrices are sparse, and each dataset is a star schema with two or three
attribute tables.

We cannot ship the original data, so each spec here records the dataset's
dimensions from Table 6 -- ``(n_S, d_S, nnz_S)`` and per-attribute-table
``(n_Ri, d_Ri, nnz_i)`` -- and :func:`generate_real_dataset` synthesizes data
with the same *shape*: same relative table sizes, same feature counts and the
same per-table density, scaled down by a user-chosen factor.  Because the
factorized speed-ups depend only on these shape parameters (Section 3.4), the
stand-ins preserve who wins and by roughly how much, which is what
EXPERIMENTS.md compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DataGenerationError
from repro.la.ops import indicator_from_labels
from repro.core.normalized_matrix import NormalizedMatrix


@dataclass(frozen=True)
class AttributeTableSpec:
    """Published dimensions of one attribute table: rows, features, non-zeros."""

    num_rows: int
    num_features: int
    nnz: int


@dataclass(frozen=True)
class RealWorldSpec:
    """Published dimensions of one real dataset (a row of Table 6)."""

    name: str
    num_entity_rows: int
    num_entity_features: int
    entity_nnz: int
    attribute_tables: Tuple[AttributeTableSpec, ...]

    @property
    def num_joins(self) -> int:
        return len(self.attribute_tables)

    def scaled(self, scale: float) -> "RealWorldSpec":
        """Shrink every table by *scale* while preserving ratios and density."""
        if not 0 < scale <= 1:
            raise DataGenerationError("scale must be in (0, 1]")

        def shrink_rows(rows: int) -> int:
            return max(2, int(round(rows * scale)))

        entity_rows = shrink_rows(self.num_entity_rows)
        tables = []
        for table in self.attribute_tables:
            rows = min(shrink_rows(table.num_rows), entity_rows)
            # Preserve the average number of non-zeros per row: a one-hot encoded
            # attribute row has the same number of active features regardless of
            # how many rows the table has, and the operator costs depend on nnz.
            nnz_per_row = table.nnz / max(1, table.num_rows)
            features = max(2, int(round(table.num_features * scale)))
            nnz = min(rows * features, max(rows, int(round(nnz_per_row * rows))))
            tables.append(AttributeTableSpec(rows, features, nnz))
        entity_nnz_per_row = self.entity_nnz / max(1, self.num_entity_rows)
        entity_features = self.num_entity_features
        entity_nnz = min(entity_rows * max(1, entity_features),
                         int(round(entity_nnz_per_row * entity_rows)))
        return RealWorldSpec(self.name, entity_rows, entity_features, entity_nnz, tuple(tables))


@dataclass
class RealWorldDataset:
    """Synthesized stand-in: sparse base matrices, indicators and a numeric target."""

    spec: RealWorldSpec
    entity: Optional[sp.csr_matrix]
    indicators: List[sp.csr_matrix]
    attributes: List[sp.csr_matrix]
    target: np.ndarray = field(repr=False)

    @property
    def normalized(self) -> NormalizedMatrix:
        return NormalizedMatrix(self.entity, self.indicators, self.attributes)

    @property
    def materialized(self) -> sp.csr_matrix:
        return self.normalized.materialize()

    @property
    def binary_target(self) -> np.ndarray:
        """Median-binarized target in ``{-1, +1}`` (how the paper runs logistic regression)."""
        cut = float(np.median(self.target))
        return np.where(self.target > cut, 1.0, -1.0).reshape(-1, 1)


def _sparse_features(rng: np.random.Generator, num_rows: int, num_features: int,
                     nnz: int) -> sp.csr_matrix:
    """Random sparse non-negative feature matrix with roughly *nnz* non-zeros.

    Every row gets at least one non-zero (each entity/attribute row has at
    least its own one-hot category in the original encodings).
    """
    if num_features == 0:
        return sp.csr_matrix((num_rows, 0))
    nnz = max(num_rows, min(nnz, num_rows * num_features))
    rows = list(range(num_rows))
    cols = list(rng.integers(0, num_features, size=num_rows))
    extra = nnz - num_rows
    if extra > 0:
        rows.extend(rng.integers(0, num_rows, size=extra).tolist())
        cols.extend(rng.integers(0, num_features, size=extra).tolist())
    data = rng.uniform(0.1, 1.0, size=len(rows))
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(num_rows, num_features))
    matrix.sum_duplicates()
    return matrix


def generate_real_dataset(spec: RealWorldSpec, scale: float = 1.0,
                          seed: int = 0) -> RealWorldDataset:
    """Synthesize a dataset matching *spec* (optionally scaled down)."""
    scaled = spec.scaled(scale) if scale != 1.0 else spec
    rng = np.random.default_rng(seed)
    n_s = scaled.num_entity_rows

    entity = None
    if scaled.num_entity_features > 0:
        entity = _sparse_features(rng, n_s, scaled.num_entity_features, scaled.entity_nnz)

    indicators: List[sp.csr_matrix] = []
    attributes: List[sp.csr_matrix] = []
    for table in scaled.attribute_tables:
        attributes.append(_sparse_features(rng, table.num_rows, table.num_features, table.nnz))
        labels = np.concatenate([
            np.arange(table.num_rows, dtype=np.int64),
            rng.integers(0, table.num_rows, size=n_s - table.num_rows, dtype=np.int64),
        ])
        rng.shuffle(labels)
        indicators.append(indicator_from_labels(labels, num_columns=table.num_rows))

    normalized = NormalizedMatrix(entity, indicators, attributes, validate=False)
    weights = rng.standard_normal((normalized.logical_cols, 1))
    target = np.asarray(normalized @ weights).reshape(-1, 1)
    target += 0.1 * rng.standard_normal(target.shape)
    return RealWorldDataset(spec=scaled, entity=entity, indicators=indicators,
                            attributes=attributes, target=target)
