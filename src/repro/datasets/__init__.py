"""Dataset generators used by the examples, tests and benchmarks.

* :mod:`repro.datasets.synthetic` -- the synthetic PK-FK and M:N generators
  behind the paper's operator-level and algorithm-level sweeps (Tables 4/5,
  Figures 3-12).
* :mod:`repro.datasets.realworld` -- synthetic stand-ins for the seven real
  multi-table datasets of Table 6 (Expedia, Movies, Yelp, Walmart, LastFM,
  Books, Flights).  We do not ship the original data (it is third-party and
  large); instead each stand-in reproduces the dataset's *schema*, relative
  table sizes, feature counts and sparsity structure at a configurable scale
  factor, which is what the speed-ups depend on.
* :mod:`repro.datasets.registry` -- a small registry so benchmarks can iterate
  over "all real datasets" by name.
"""

from repro.datasets.synthetic import (
    SyntheticPKFKConfig,
    SyntheticMNConfig,
    PKFKDataset,
    MNDataset,
    generate_pk_fk,
    generate_star,
    generate_mn,
)
from repro.datasets.realworld import RealWorldSpec, RealWorldDataset, generate_real_dataset
from repro.datasets.registry import REAL_DATASET_SPECS, list_real_datasets, load_real_dataset

__all__ = [
    "SyntheticPKFKConfig",
    "SyntheticMNConfig",
    "PKFKDataset",
    "MNDataset",
    "generate_pk_fk",
    "generate_star",
    "generate_mn",
    "RealWorldSpec",
    "RealWorldDataset",
    "generate_real_dataset",
    "REAL_DATASET_SPECS",
    "list_real_datasets",
    "load_real_dataset",
]
