"""Orion-style algorithm-specific factorized logistic regression.

Kumar et al.'s "factorized learning" (SIGMOD 2015, reference [26] in the
paper) was the first system to push GLM training through a PK-FK join.  Unlike
Morpheus it is not expressed in linear algebra: for each gradient-descent
iteration it

1. computes the partial inner products ``w_R^T x_R`` for every *attribute
   table row* and stores them in an associative array (a hash map keyed by the
   attribute row id),
2. streams over the entity table, looks up each row's partial product by its
   foreign key, adds the entity-side partial product ``w_S^T x_S``, and
   accumulates the per-example gradient contributions, and
3. scatters the accumulated per-attribute-row statistics back through the
   hash map to finish the gradient for the attribute-side weights.

The Table 8 experiment compares this hash-based design with Morpheus's pure-LA
rewrites on dense PK-FK data; the paper attributes Orion's smaller speed-ups
to its hashing overheads, which this reimplementation reproduces by using a
Python dict keyed by attribute row id (the closest analogue of Orion's
in-memory associative arrays inside the RDBMS).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import ShapeError
from repro.la.types import to_dense
from repro.ml.base import IterativeEstimator, as_column


class OrionLogisticRegression(IterativeEstimator):
    """Factorized logistic regression over a single PK-FK join, Orion style.

    Parameters mirror :class:`~repro.ml.logistic_regression.LogisticRegressionGD`
    so the two can be benchmarked with identical settings.  Only dense features
    and a single PK-FK join are supported -- the same restrictions the paper
    notes for the original tool.
    """

    def __init__(self, max_iter: int = 20, step_size: float = 1e-4,
                 seed: Optional[int] = 0, update: str = "paper"):
        super().__init__(max_iter=max_iter, step_size=step_size, seed=seed)
        if update not in ("paper", "exact"):
            raise ValueError("update must be 'paper' or 'exact'")
        self.update = update
        self.coef_: Optional[np.ndarray] = None

    def fit(self, entity: np.ndarray, fk_labels: np.ndarray, attribute: np.ndarray,
            target: np.ndarray) -> "OrionLogisticRegression":
        """Train on base tables: entity features, foreign-key labels, attribute features.

        *fk_labels* holds, for every entity row, the zero-based row index of the
        attribute table it references (the associative-array key).
        """
        entity = to_dense(entity).astype(np.float64)
        attribute = to_dense(attribute).astype(np.float64)
        labels = np.asarray(fk_labels, dtype=np.int64).ravel()
        y = as_column(target)
        if entity.shape[0] != labels.shape[0] or entity.shape[0] != y.shape[0]:
            raise ShapeError("entity rows, foreign keys and target must align")
        if labels.size and (labels.min() < 0 or labels.max() >= attribute.shape[0]):
            raise ShapeError("foreign-key labels out of range for the attribute table")

        n_s, d_s = entity.shape
        n_r, d_r = attribute.shape
        w_s = np.zeros((d_s, 1))
        w_r = np.zeros((d_r, 1))

        for _ in range(self.max_iter):
            # Step 1: per-attribute-row partial inner products, keyed by row id.
            partial_products: Dict[int, float] = {
                rid: float((attribute[rid] @ w_r).item()) for rid in range(n_r)
            }
            # Step 2: stream the entity table, look up the partial product and
            # accumulate the entity-side gradient plus per-attribute-row scalars.
            gradient_s = np.zeros((d_s, 1))
            attribute_scalars: Dict[int, float] = {rid: 0.0 for rid in range(n_r)}
            for i in range(n_s):
                rid = int(labels[i])
                score = float((entity[i] @ w_s).item()) + partial_products[rid]
                if self.update == "paper":
                    p = float(y[i, 0]) / (1.0 + np.exp(score))
                else:
                    p = float(y[i, 0]) / (1.0 + np.exp(float(y[i, 0]) * score))
                gradient_s += p * entity[i].reshape(-1, 1)
                attribute_scalars[rid] += p
            # Step 3: scatter the accumulated scalars back through the hash map
            # to finish the attribute-side gradient.
            gradient_r = np.zeros((d_r, 1))
            for rid, scalar in attribute_scalars.items():
                if scalar != 0.0:
                    gradient_r += scalar * attribute[rid].reshape(-1, 1)
            w_s = w_s + self.step_size * gradient_s
            w_r = w_r + self.step_size * gradient_r

        self.coef_ = np.vstack([w_s, w_r])
        return self

    def predict_scores(self, entity: np.ndarray, fk_labels: np.ndarray,
                       attribute: np.ndarray) -> np.ndarray:
        """Scores ``T w`` computed from the base tables (no materialization)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        entity = to_dense(entity)
        attribute = to_dense(attribute)
        labels = np.asarray(fk_labels, dtype=np.int64).ravel()
        d_s = entity.shape[1]
        w_s, w_r = self.coef_[:d_s], self.coef_[d_s:]
        partial = attribute @ w_r
        return entity @ w_s + partial[labels]
