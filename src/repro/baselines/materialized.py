"""Materialized ("M") baselines for the four ML algorithms.

These thin helpers make the benchmark code read like the paper's experiment
descriptions: train the *same* estimator implementation on the materialized
single table.  Because the estimators in :mod:`repro.ml` are written against
the generic LA surface, the baseline is literally the same code path with a
plain matrix operand -- which is exactly the comparison the paper makes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.la.types import MatrixLike
from repro.ml.gnmf import GNMF
from repro.ml.kmeans import KMeans
from repro.ml.linear_regression import LinearRegressionNE
from repro.ml.logistic_regression import LogisticRegressionGD


def run_materialized_logistic(materialized: MatrixLike, target: np.ndarray,
                              max_iter: int = 20, step_size: float = 1e-4,
                              update: str = "paper") -> LogisticRegressionGD:
    """Train logistic regression on the materialized matrix and return the model."""
    model = LogisticRegressionGD(max_iter=max_iter, step_size=step_size, update=update)
    return model.fit(materialized, target)


def run_materialized_linear_ne(materialized: MatrixLike, target: np.ndarray
                               ) -> LinearRegressionNE:
    """Train normal-equation linear regression on the materialized matrix."""
    model = LinearRegressionNE()
    return model.fit(materialized, target)


def run_materialized_kmeans(materialized: MatrixLike, num_clusters: int = 10,
                            max_iter: int = 20, seed: int = 0,
                            initial_centroids: Optional[np.ndarray] = None) -> KMeans:
    """Run K-Means on the materialized matrix."""
    model = KMeans(num_clusters=num_clusters, max_iter=max_iter, seed=seed)
    return model.fit(materialized, initial_centroids=initial_centroids)


def run_materialized_gnmf(materialized: MatrixLike, rank: int = 5, max_iter: int = 20,
                          seed: int = 0) -> GNMF:
    """Run GNMF on the materialized matrix (must be non-negative)."""
    model = GNMF(rank=rank, max_iter=max_iter, seed=seed)
    return model.fit(materialized)
