"""Baselines the paper compares against.

* :mod:`repro.baselines.materialized` -- helpers that run the standard
  single-table ("M") versions of the ML algorithms, used by every benchmark's
  denominator.
* :mod:`repro.baselines.orion` -- a reimplementation of the ML
  algorithm-specific factorized GLM of Kumar et al. (the "Orion" tool [26]),
  which stores per-attribute-row partial inner products in an associative
  array instead of expressing the factorization in LA.  It exists to reproduce
  the Table 8 comparison: Morpheus should achieve comparable or better
  speed-ups despite being generic.
"""

from repro.baselines.materialized import (
    run_materialized_logistic,
    run_materialized_linear_ne,
    run_materialized_kmeans,
    run_materialized_gnmf,
)
from repro.baselines.orion import OrionLogisticRegression

__all__ = [
    "run_materialized_logistic",
    "run_materialized_linear_ne",
    "run_materialized_kmeans",
    "run_materialized_gnmf",
    "OrionLogisticRegression",
]
