"""Zone-map score bounds for data-skipping top-k serving.

Scanning all ``N`` entity rows to answer "the k best" wastes the factorized
structure twice over: the per-table partial scores already summarize every
attribute table, and real entity tables have *locality* -- rows ingested
together reference the same attribute rows, so high scores cluster in
contiguous row ranges.  This module turns both observations into zone maps
(the classic min-max data-skipping metadata, here over *score contributions*
instead of raw column values):

* The entity rows are cut into contiguous **blocks** of ``block_size`` rows.
* For every block and every output column, the zone map stores the min and
  max of each score component over the block: the entity contribution
  ``S[i] @ W_S`` and, per attribute table, the gathered partial contribution
  ``partial_k[code_k(i)]``.
* Summing the per-component maxima (in the same order the scorer accumulates
  the components -- floating-point rounding is monotone, so the computed
  bound dominates every computed score in the block) gives a per-block upper
  bound no row in the block can exceed; the minima give the lower bound.
  A top-k search can then *skip every block whose bound cannot reach the
  current k-th best score* (see :mod:`repro.serve.topk`).
* Per table, the global min/max of the partial-score rows is kept as well --
  the bound for **ad-hoc key requests**, where the key can name any
  attribute row rather than the ones the stored indicators reference.

The split between the two classes mirrors the snapshot protocol:

* :class:`ZoneMapIndex` is the **immutable per-scorer context** -- block
  geometry, the indicator codes (fixed for the scorer's lifetime), the
  entity-contribution block bounds (weights and entity matrix never change),
  and a per-table reverse index from attribute row to the entity blocks that
  reference it.  Built once in ``FactorizedScorer.__init__``.
* :class:`ZoneMaps` is the **per-snapshot state** -- per-table block bounds
  over the snapshot's partials plus the combined per-block bounds.  It is
  immutable like the snapshot that carries it: ``update_table`` swaps rebuild
  the swapped table's bounds (:meth:`ZoneMaps.rebuild_table`), delta patches
  recompute only the blocks whose rows reference a changed attribute row
  (:meth:`ZoneMaps.patch_table`), and either way the result is a fresh
  object published by the same atomic snapshot swap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.la.types import to_dense

#: Default number of entity rows per zone-map block.
DEFAULT_BLOCK_SIZE = 1024

#: When a delta touches more than this fraction of a table's blocks, patching
#: block-by-block costs more than one vectorized full rebuild of that table's
#: bounds; fall back to the rebuild (the partial itself is still patched in
#: O(b), this only concerns the metadata).
_PATCH_REBUILD_FRACTION = 0.5


def _readonly(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _block_reduce(values: np.ndarray, starts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block (min, max) of ``values`` cut at ``starts`` along axis 0."""
    if values.shape[0] == 0:
        empty = np.empty((0, values.shape[1]), dtype=np.float64)
        return empty, empty.copy()
    lo = np.minimum.reduceat(values, starts, axis=0)
    hi = np.maximum.reduceat(values, starts, axis=0)
    return lo, hi


class ZoneMapIndex:
    """Immutable block geometry + code index shared by every snapshot.

    Parameters are derived once from the scorer's fixed state: the indicator
    codes per attribute table, the number of entity rows and outputs, and
    (for star schemas with entity features) the per-block min/max of the
    entity contribution ``S @ W_S``.
    """

    __slots__ = ("block_size", "n_rows", "n_blocks", "n_outputs", "codes",
                 "block_starts", "entity_lo", "entity_hi",
                 "_sorted_codes", "_sorted_blocks")

    def __init__(self, codes: Sequence[np.ndarray], n_rows: int, n_outputs: int,
                 entity_lo: Optional[np.ndarray], entity_hi: Optional[np.ndarray],
                 block_size: int):
        if block_size < 1:
            raise ValueError("zone-map block_size must be at least 1")
        self.block_size = int(block_size)
        self.n_rows = int(n_rows)
        self.n_outputs = int(n_outputs)
        self.n_blocks = -(-self.n_rows // self.block_size) if self.n_rows else 0
        self.block_starts = np.arange(0, max(self.n_rows, 1), self.block_size)[: self.n_blocks]
        self.codes = tuple(np.asarray(c, dtype=np.int64) for c in codes)
        zeros = np.zeros((self.n_blocks, self.n_outputs), dtype=np.float64)
        self.entity_lo = _readonly(zeros if entity_lo is None else np.asarray(entity_lo))
        self.entity_hi = _readonly(zeros.copy() if entity_hi is None else np.asarray(entity_hi))
        # Reverse index: for table t, the entity blocks referencing each
        # attribute row, as (codes sorted ascending, matching block ids) --
        # two searchsorted calls per touched attribute row recover its blocks.
        self._sorted_codes: List[np.ndarray] = []
        self._sorted_blocks: List[np.ndarray] = []
        for table_codes in self.codes:
            order = np.argsort(table_codes, kind="stable")
            self._sorted_codes.append(_readonly(table_codes[order]))
            self._sorted_blocks.append(_readonly(order // self.block_size))

    @classmethod
    def build(cls, codes: Sequence[np.ndarray], n_rows: int, n_outputs: int,
              entity=None, entity_weights: Optional[np.ndarray] = None,
              block_size: int = DEFAULT_BLOCK_SIZE) -> "ZoneMapIndex":
        """Derive the index from scorer state, scoring the entity block-wise.

        The entity contribution is evaluated per block (never as one resident
        ``N x m`` matrix) with exactly the block slices the pruned search
        will later score, so the stored bounds dominate the values the
        scorer computes for those rows.
        """
        entity_lo = entity_hi = None
        if (entity is not None and entity_weights is not None
                and entity_weights.shape[0] and n_rows):
            n_blocks = -(-n_rows // block_size)
            entity_lo = np.empty((n_blocks, n_outputs), dtype=np.float64)
            entity_hi = np.empty((n_blocks, n_outputs), dtype=np.float64)
            for b in range(n_blocks):
                start = b * block_size
                stop = min(start + block_size, n_rows)
                scores = np.asarray(to_dense(entity[start:stop] @ entity_weights),
                                    dtype=np.float64)
                if scores.ndim == 1:
                    scores = scores.reshape(-1, 1)
                entity_lo[b] = scores.min(axis=0)
                entity_hi[b] = scores.max(axis=0)
        return cls(codes, n_rows, n_outputs, entity_lo, entity_hi, block_size)

    def block_bounds(self, start: int, stop: Optional[int] = None) -> Tuple[int, int]:
        """Row interval ``[lo, hi)`` covered by blocks ``start..stop``."""
        stop = start + 1 if stop is None else stop
        return start * self.block_size, min(stop * self.block_size, self.n_rows)

    def table_bounds(self, partial: np.ndarray, position: int) -> Tuple[np.ndarray, np.ndarray]:
        """Full per-block (min, max) of ``partial[codes]`` for one table."""
        gathered = partial[self.codes[position], :]
        lo, hi = _block_reduce(gathered, self.block_starts)
        return _readonly(lo), _readonly(hi)

    def touched_blocks(self, position: int, attribute_rows: np.ndarray) -> np.ndarray:
        """Entity blocks containing a row whose code is in *attribute_rows*."""
        sorted_codes = self._sorted_codes[position]
        sorted_blocks = self._sorted_blocks[position]
        attribute_rows = np.asarray(attribute_rows, dtype=np.int64).ravel()
        starts = np.searchsorted(sorted_codes, attribute_rows, side="left")
        stops = np.searchsorted(sorted_codes, attribute_rows, side="right")
        pieces = [sorted_blocks[lo:hi] for lo, hi in zip(starts, stops) if hi > lo]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))


class ZoneMaps:
    """Per-snapshot zone-map state: block bounds over one set of partials.

    ``lower``/``upper`` are the combined ``(n_blocks, n_outputs)`` bounds on
    the full factorized score, accumulated component-by-component in the same
    order as :meth:`FactorizedScorer.score_rows` (entity first, then each
    table) so that, by monotonicity of floating-point rounding, no computed
    score in a block escapes its computed bound.  ``partial_lo``/
    ``partial_hi`` are the per-table global bounds over *all* attribute rows,
    valid for ad-hoc key requests.
    """

    __slots__ = ("index", "table_lo", "table_hi", "partial_lo", "partial_hi",
                 "lower", "upper")

    def __init__(self, index: ZoneMapIndex,
                 table_lo: Tuple[np.ndarray, ...], table_hi: Tuple[np.ndarray, ...],
                 partial_lo: Tuple[np.ndarray, ...], partial_hi: Tuple[np.ndarray, ...]):
        self.index = index
        self.table_lo = tuple(table_lo)
        self.table_hi = tuple(table_hi)
        self.partial_lo = tuple(partial_lo)
        self.partial_hi = tuple(partial_hi)
        lower = self.index.entity_lo.copy()
        upper = self.index.entity_hi.copy()
        for lo, hi in zip(self.table_lo, self.table_hi):
            lower = lower + lo
            upper = upper + hi
        self.lower = _readonly(lower)
        self.upper = _readonly(upper)

    @staticmethod
    def _global_bounds(partial: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if partial.shape[0] == 0:
            width = partial.shape[1]
            return (_readonly(np.full(width, np.inf)),
                    _readonly(np.full(width, -np.inf)))
        return (_readonly(partial.min(axis=0).astype(np.float64)),
                _readonly(partial.max(axis=0).astype(np.float64)))

    @classmethod
    def build(cls, index: ZoneMapIndex, partials: Sequence[np.ndarray]) -> "ZoneMaps":
        """Zone maps for a full set of partials (initial snapshot)."""
        table_lo, table_hi, partial_lo, partial_hi = [], [], [], []
        for position, partial in enumerate(partials):
            lo, hi = index.table_bounds(partial, position)
            table_lo.append(lo)
            table_hi.append(hi)
            glo, ghi = cls._global_bounds(partial)
            partial_lo.append(glo)
            partial_hi.append(ghi)
        return cls(index, tuple(table_lo), tuple(table_hi),
                   tuple(partial_lo), tuple(partial_hi))

    def rebuild_table(self, position: int, partial: np.ndarray) -> "ZoneMaps":
        """Successor zone maps with one table's bounds fully recomputed.

        Used by ``update_table`` swaps: the replacement partial shares
        nothing with its predecessor, so every block bound of that table is
        stale.  All other tables' bounds are shared with this object.
        """
        lo, hi = self.index.table_bounds(partial, position)
        return self._replace(position, lo, hi, partial)

    def patch_table(self, position: int, partial: np.ndarray,
                    attribute_rows: np.ndarray) -> "ZoneMaps":
        """Successor zone maps after a row delta to one table's partial.

        Only the entity blocks referencing a changed attribute row are
        recomputed (via the reverse code index); when the delta fans out to
        most blocks, one vectorized full rebuild of the table's bounds is
        cheaper and is used instead.  Either way the patched partial itself
        was already produced in O(b) by ``patch_partial``.
        """
        index = self.index
        touched = index.touched_blocks(position, attribute_rows)
        if touched.size > _PATCH_REBUILD_FRACTION * max(index.n_blocks, 1):
            return self.rebuild_table(position, partial)
        lo = np.array(self.table_lo[position])
        hi = np.array(self.table_hi[position])
        codes = index.codes[position]
        for b in touched:
            row_lo, row_hi = index.block_bounds(int(b))
            gathered = partial[codes[row_lo:row_hi], :]
            lo[b] = gathered.min(axis=0)
            hi[b] = gathered.max(axis=0)
        return self._replace(position, _readonly(lo), _readonly(hi), partial)

    def _replace(self, position: int, lo: np.ndarray, hi: np.ndarray,
                 partial: np.ndarray) -> "ZoneMaps":
        table_lo = list(self.table_lo)
        table_hi = list(self.table_hi)
        table_lo[position] = lo
        table_hi[position] = hi
        partial_lo = list(self.partial_lo)
        partial_hi = list(self.partial_hi)
        partial_lo[position], partial_hi[position] = self._global_bounds(partial)
        return ZoneMaps(self.index, tuple(table_lo), tuple(table_hi),
                        tuple(partial_lo), tuple(partial_hi))

    @property
    def n_blocks(self) -> int:
        return self.index.n_blocks

    @property
    def nbytes(self) -> int:
        """Resident bytes of the per-snapshot bound arrays."""
        arrays = [self.lower, self.upper, *self.table_lo, *self.table_hi,
                  *self.partial_lo, *self.partial_hi]
        return int(sum(a.nbytes for a in arrays))
