"""Immutable serving snapshots and the atomic swap protocol.

The serving subsystem must stay correct while attribute tables change
underneath it -- the HTAP freshness requirement: a new product row or a
refreshed feature vector lands in ``R_k``, and analytical reads (scoring
requests) must never observe a half-updated state.  The design follows the
consistent-snapshot recipe:

* All state a scoring request touches after validation lives in one
  **immutable** :class:`ServingSnapshot` (the per-table partial-score
  matrices, read-only).  A request reads the current snapshot reference
  exactly once and then works only with that object, so it can never see a
  mix of old and new partials.
* Updates build replacement state **off to the side** -- recomputing only the
  changed table's partial, not the whole model -- and then **atomically
  swap** the snapshot reference.  Reference assignment is atomic in Python,
  so readers are never blocked and never torn; a writer lock serializes
  concurrent updates so no swap is lost.
* :meth:`SnapshotManager.submit` runs the rebuild on a single background
  worker thread, which is what makes ``update_table`` non-blocking for the
  serving path: scoring continues against the old snapshot until the new one
  is ready.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Tuple

import numpy as np

from repro import obs
from repro.la import kernels
from repro.la.types import MatrixLike, to_dense

_SWAP_SECONDS = obs.REGISTRY.histogram(
    "repro_serve_snapshot_swap_seconds",
    "Duration of an atomic snapshot swap (update fn inside the writer lock)",
)
_SWAPS_TOTAL = obs.REGISTRY.counter(
    "repro_serve_snapshot_swaps_total",
    "Snapshot swaps published across all managers",
)
_REBUILDS_TOTAL = obs.REGISTRY.counter(
    "repro_serve_snapshot_rebuilds_total",
    "Background rebuild tasks submitted across all managers",
)


def compute_partial(attribute: MatrixLike, weight_slice: np.ndarray) -> np.ndarray:
    """Precompute one table's partial scores ``R_k @ W_k`` (``n_Rk x m``).

    The result is dense (partials are gathered per request, and ``m`` is
    small) and marked read-only, since it is shared by every snapshot that
    carries it and by every in-flight request.  Routed through the
    :mod:`repro.la.kernels` registry so the compiled set applies when active.
    """
    return kernels.partial_scores(attribute, weight_slice)


def patch_partial(partial: np.ndarray, delta, weight_slice: np.ndarray) -> np.ndarray:
    """The post-delta partial: only the ``b`` changed rows recomputed.

    ``partial = R_k @ W_k`` is linear in the table rows, so a row delta
    replaces exactly the changed rows -- ``partial'[ρ] = new[ρ] @ W_k`` --
    at ``O(b·d_k·m)`` cost, versus ``O(n_Rk·d_k·m)`` for
    :func:`compute_partial` from scratch.  Appending rows (``delta.grows``)
    extends the partial; new row positions not named by the delta score
    zero, matching the tombstone convention.  Returns a fresh read-only
    array -- the input snapshot's partial is shared and never mutated.
    """
    changed = np.asarray(to_dense(delta.new @ weight_slice), dtype=np.float64)
    if changed.ndim == 1:
        changed = changed.reshape(-1, 1)
    rows_after = max(partial.shape[0], delta.num_rows_after)
    if rows_after > partial.shape[0]:
        patched = np.zeros((rows_after, partial.shape[1]), dtype=np.float64)
        patched[: partial.shape[0]] = partial
    else:
        patched = np.array(partial, dtype=np.float64)
    patched[delta.rows, :] = changed
    patched.setflags(write=False)
    return patched


class ServingSnapshot:
    """One immutable, internally consistent serving state.

    Holds the per-table partial-score matrices plus a monotonically
    increasing version number.  Instances are never mutated; updates go
    through :meth:`with_partial`, which shares every untouched partial with
    its predecessor.

    When the snapshot carries zone maps (``zones``, see
    :mod:`repro.serve.bounds` -- the scorer builds them for its initial
    snapshot), every successor keeps them consistent with its partials:
    ``with_partial`` rebuilds the swapped table's block bounds from scratch,
    ``with_patched_partial`` recomputes only the blocks whose entity rows
    reference a row the delta touched.  Both run inside the writer lock of
    :meth:`SnapshotManager.swap`, so readers always observe partials and
    bounds from the *same* state.
    """

    __slots__ = ("partials", "version", "zones")

    def __init__(self, partials: Tuple[np.ndarray, ...], version: int = 0, zones=None):
        self.partials = tuple(partials)
        self.version = int(version)
        self.zones = zones

    def with_partial(self, table_index: int, partial: np.ndarray) -> "ServingSnapshot":
        """A successor snapshot replacing one table's partial (version + 1)."""
        partials = list(self.partials)
        partials[table_index] = partial
        zones = (self.zones.rebuild_table(table_index, partial)
                 if self.zones is not None else None)
        return ServingSnapshot(tuple(partials), self.version + 1, zones)

    def with_patched_partial(self, table_index: int, delta,
                             weight_slice: np.ndarray) -> "ServingSnapshot":
        """A successor with one partial delta-patched (see :func:`patch_partial`)."""
        patched = patch_partial(self.partials[table_index], delta, weight_slice)
        partials = list(self.partials)
        partials[table_index] = patched
        zones = (self.zones.patch_table(table_index, patched, delta.rows)
                 if self.zones is not None else None)
        return ServingSnapshot(tuple(partials), self.version + 1, zones)

    @property
    def partial_bytes(self) -> int:
        """Resident bytes of all partial-score matrices."""
        return int(sum(p.nbytes for p in self.partials))


class SnapshotManager:
    """Publishes snapshots to readers; serializes writers; owns the worker.

    Readers call :attr:`snapshot` (a single attribute read -- atomic, never
    blocking).  Writers pass a pure ``snapshot -> snapshot`` function to
    :meth:`swap`; the writer lock makes concurrent updates to *different*
    tables compose instead of overwriting each other.  :meth:`submit` runs a
    rebuild callable on one lazily created background thread, so at most one
    rebuild runs at a time and swaps apply in submission order.
    """

    def __init__(self, snapshot: ServingSnapshot):
        self._snapshot = snapshot
        self._write_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        # Back-compat style views: counting is unconditional, cheap, and
        # readable via the swap_count / rebuild_count properties.
        self._swaps = obs.Counter(always=True)
        self._rebuilds = obs.Counter(always=True)

    @property
    def snapshot(self) -> ServingSnapshot:
        """The current snapshot; read it once per request and hold on to it."""
        return self._snapshot

    @property
    def swap_count(self) -> int:
        """Snapshot swaps this manager has published."""
        return int(self._swaps.value)

    @property
    def rebuild_count(self) -> int:
        """Background rebuild tasks this manager has accepted."""
        return int(self._rebuilds.value)

    def swap(self, update: Callable[[ServingSnapshot], ServingSnapshot]) -> ServingSnapshot:
        """Atomically replace the snapshot with ``update(current)``."""
        record = obs.enabled()
        started = time.perf_counter() if record else 0.0
        with self._write_lock:
            snapshot = update(self._snapshot)
            self._snapshot = snapshot
        self._swaps.inc()
        _SWAPS_TOTAL.inc()
        if record:
            _SWAP_SECONDS.observe(time.perf_counter() - started)
        return snapshot

    def apply_delta(self, table_index: int, delta,
                    weight_slice: np.ndarray) -> ServingSnapshot:
        """Atomically publish a delta-patched partial for one table.

        The ``O(b·m)`` patch runs **inside** the writer lock so it always
        applies to the latest snapshot -- concurrent deltas and full
        ``update_table`` rebuilds on other tables compose instead of losing
        updates.  Readers are untouched: they hold either the pre- or the
        post-delta snapshot, never a mix (the patched partial is a fresh
        array, the swap a single reference assignment).
        """
        return self.swap(
            lambda snap: snap.with_patched_partial(table_index, delta, weight_slice)
        )

    def submit(self, task: Callable[[], ServingSnapshot]) -> "Future[ServingSnapshot]":
        """Run *task* (rebuild + swap) on the single background worker."""
        self._rebuilds.inc()
        _REBUILDS_TOTAL.inc()
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="serve-snapshot"
                )
            return self._executor.submit(task)

    def close(self) -> None:
        """Stop the background worker (waits for a pending rebuild)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
