"""Immutable serving snapshots and the atomic swap protocol.

The serving subsystem must stay correct while attribute tables change
underneath it -- the HTAP freshness requirement: a new product row or a
refreshed feature vector lands in ``R_k``, and analytical reads (scoring
requests) must never observe a half-updated state.  The design follows the
consistent-snapshot recipe:

* All state a scoring request touches after validation lives in one
  **immutable** :class:`ServingSnapshot` (the per-table partial-score
  matrices, read-only).  A request reads the current snapshot reference
  exactly once and then works only with that object, so it can never see a
  mix of old and new partials.
* Updates build replacement state **off to the side** -- recomputing only the
  changed table's partial, not the whole model -- and then **atomically
  swap** the snapshot reference.  Reference assignment is atomic in Python,
  so readers are never blocked and never torn; a writer lock serializes
  concurrent updates so no swap is lost.
* :meth:`SnapshotManager.submit` runs the rebuild on a single background
  worker thread, which is what makes ``update_table`` non-blocking for the
  serving path: scoring continues against the old snapshot until the new one
  is ready.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Optional, Tuple

import numpy as np

from repro.la.types import MatrixLike, to_dense


def compute_partial(attribute: MatrixLike, weight_slice: np.ndarray) -> np.ndarray:
    """Precompute one table's partial scores ``R_k @ W_k`` (``n_Rk x m``).

    The result is dense (partials are gathered per request, and ``m`` is
    small) and marked read-only, since it is shared by every snapshot that
    carries it and by every in-flight request.
    """
    partial = np.asarray(to_dense(attribute @ weight_slice), dtype=np.float64)
    if partial.ndim == 1:
        partial = partial.reshape(-1, 1)
    partial.setflags(write=False)
    return partial


class ServingSnapshot:
    """One immutable, internally consistent serving state.

    Holds the per-table partial-score matrices plus a monotonically
    increasing version number.  Instances are never mutated; updates go
    through :meth:`with_partial`, which shares every untouched partial with
    its predecessor.
    """

    __slots__ = ("partials", "version")

    def __init__(self, partials: Tuple[np.ndarray, ...], version: int = 0):
        self.partials = tuple(partials)
        self.version = int(version)

    def with_partial(self, table_index: int, partial: np.ndarray) -> "ServingSnapshot":
        """A successor snapshot replacing one table's partial (version + 1)."""
        partials = list(self.partials)
        partials[table_index] = partial
        return ServingSnapshot(tuple(partials), self.version + 1)

    @property
    def partial_bytes(self) -> int:
        """Resident bytes of all partial-score matrices."""
        return int(sum(p.nbytes for p in self.partials))


class SnapshotManager:
    """Publishes snapshots to readers; serializes writers; owns the worker.

    Readers call :attr:`snapshot` (a single attribute read -- atomic, never
    blocking).  Writers pass a pure ``snapshot -> snapshot`` function to
    :meth:`swap`; the writer lock makes concurrent updates to *different*
    tables compose instead of overwriting each other.  :meth:`submit` runs a
    rebuild callable on one lazily created background thread, so at most one
    rebuild runs at a time and swaps apply in submission order.
    """

    def __init__(self, snapshot: ServingSnapshot):
        self._snapshot = snapshot
        self._write_lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()

    @property
    def snapshot(self) -> ServingSnapshot:
        """The current snapshot; read it once per request and hold on to it."""
        return self._snapshot

    def swap(self, update: Callable[[ServingSnapshot], ServingSnapshot]) -> ServingSnapshot:
        """Atomically replace the snapshot with ``update(current)``."""
        with self._write_lock:
            snapshot = update(self._snapshot)
            self._snapshot = snapshot
        return snapshot

    def submit(self, task: Callable[[], ServingSnapshot]) -> "Future[ServingSnapshot]":
        """Run *task* (rebuild + swap) on the single background worker."""
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="serve-snapshot"
                )
            return self._executor.submit(task)

    def close(self) -> None:
        """Stop the background worker (waits for a pending rebuild)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
