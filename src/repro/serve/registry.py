"""Versioned on-disk model registry for the serving subsystem.

A registry directory holds one subdirectory per model name and one
``v<NNNN>`` subdirectory per saved version:

.. code-block:: text

    registry_root/
      churn/
        v0001/ weights.npz  meta.json
        v0002/ weights.npz  meta.json

``weights.npz`` stores the dense weight matrix (and offsets when present);
``meta.json`` stores the model kind, JSON-safe metadata and -- crucially --
the **schema fingerprint** of the normalized matrix the model was exported
against (see :func:`repro.core.segments.schema_fingerprint`).  Loading a
version against a serving matrix whose fingerprint differs raises
:class:`~repro.exceptions.SchemaMismatchError` instead of silently
mis-slicing the weight vector.

Writes are crash-safe in the usual marker-file way: ``meta.json`` is written
last (via a temp file + ``os.replace``), so a version directory without it
is an aborted save and is reported as corrupt rather than half-loaded.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import tempfile
import zipfile
from typing import List, Optional, Union

import numpy as np

from repro.core.segments import schema_fingerprint
from repro.exceptions import RegistryError, SchemaMismatchError
from repro.ml.export import ServingExport, export_model

_VERSION_DIR = re.compile(r"^v(\d{4,})$")


class ModelRegistry:
    """Save, list and load versioned model exports bound to a schema."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- writing -----------------------------------------------------------------

    def save(self, name: str, model, matrix) -> int:
        """Save a fitted *model* (or a ready ``ServingExport``) under *name*.

        The schema fingerprint of *matrix* is stored with the weights;
        returns the new (auto-incremented) version number.
        """
        self._check_name(name)
        export = model if isinstance(model, ServingExport) else export_model(model)
        fingerprint = schema_fingerprint(matrix)
        if export.fingerprint is not None and export.fingerprint != fingerprint:
            # A re-saved export that was loaded against a different schema
            # must not be silently rebound: equal total width does not mean
            # equal segment structure, and mis-sliced weights score wrong.
            raise SchemaMismatchError(
                f"export carries schema fingerprint {export.fingerprint[:12]}... but "
                f"the target matrix has {fingerprint[:12]}...; re-export from the model"
            )
        if export.n_features != matrix.logical_cols:
            raise SchemaMismatchError(
                f"model has {export.n_features} weights but the schema has "
                f"{matrix.logical_cols} columns"
            )
        # Validate metadata serializability *before* claiming a version
        # directory: failing in json.dump after weights.npz is written would
        # leak an incomplete vNNNN directory that burns a version number on
        # every retry (the directory is the allocation token below).
        try:
            json.dumps(export.metadata, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise RegistryError(
                f"cannot save {name!r}: export.metadata is not JSON-serializable ({exc})"
            ) from exc
        versions = self.versions(name)
        version = (versions[-1] + 1) if versions else 1
        while True:
            directory = self.root / name / f"v{version:04d}"
            try:
                directory.mkdir(parents=True)
                break
            except FileExistsError:
                # A concurrent save (or an aborted one) claimed this number;
                # the directory itself is the allocation token, so advance.
                version += 1

        try:
            arrays = {"weights": export.weights}
            if export.offsets is not None:
                arrays["offsets"] = export.offsets
            np.savez(directory / "weights.npz", **arrays)
            meta = {
                "name": name,
                "version": version,
                "kind": export.kind,
                "fingerprint": fingerprint,
                "n_features": export.n_features,
                "n_outputs": export.n_outputs,
                "metadata": export.metadata,
            }
            # meta.json last, atomically: its presence marks the save as complete.
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(meta, handle, indent=2, sort_keys=True)
                os.replace(tmp_path, directory / "meta.json")
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise
        except BaseException:
            # Best effort: without meta.json the directory is an aborted save
            # anyway (invisible to listings), but leaving it would burn this
            # version number for every future save.
            shutil.rmtree(directory, ignore_errors=True)
            raise
        return version

    # -- listing -----------------------------------------------------------------

    def models(self) -> List[str]:
        """Names with at least one complete version, sorted."""
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and self._complete_versions(p))

    def versions(self, name: str) -> List[int]:
        """Complete version numbers of *name*, ascending (empty if unknown)."""
        return self._complete_versions(self.root / name)

    def latest(self, name: str) -> int:
        """Newest complete version of *name*; :class:`RegistryError` if none."""
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"registry has no model named {name!r}")
        return versions[-1]

    @staticmethod
    def _complete_versions(directory: pathlib.Path) -> List[int]:
        if not directory.is_dir():
            return []
        found = []
        for child in directory.iterdir():
            match = _VERSION_DIR.match(child.name)
            if match and (child / "meta.json").is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    # -- loading -----------------------------------------------------------------

    def load(self, name: str, version: Optional[int] = None) -> ServingExport:
        """Load one version (default: latest) as a ``ServingExport``.

        The stored schema fingerprint is attached as ``export.fingerprint``
        so downstream consumers can verify it against a serving matrix.
        """
        if version is None:
            version = self.latest(name)
        directory = self.root / name / f"v{int(version):04d}"
        meta_path = directory / "meta.json"
        weights_path = directory / "weights.npz"
        if not directory.is_dir():
            raise RegistryError(f"registry has no version {version} of {name!r}")
        if not meta_path.is_file():
            raise RegistryError(
                f"{name!r} v{version} is incomplete (missing meta.json; aborted save?)"
            )
        if not weights_path.is_file():
            raise RegistryError(f"{name!r} v{version} is corrupt (missing weights.npz)")
        try:
            meta = json.loads(meta_path.read_text())
            with np.load(weights_path) as arrays:
                weights = arrays["weights"]
                offsets = arrays["offsets"] if "offsets" in arrays else None
            export = ServingExport(meta["kind"], weights, offsets=offsets,
                                   metadata=dict(meta.get("metadata", {})))
            export.fingerprint = meta["fingerprint"]
            export.registry_version = int(meta["version"])
        except (ValueError, KeyError, TypeError, OSError, zipfile.BadZipFile) as exc:
            # TypeError covers structurally wrong JSON (top-level non-dict,
            # null metadata); ServingExport validation errors pass through
            # unwrapped only because they already subclass the serving family.
            raise RegistryError(f"{name!r} v{version} is corrupt: {exc}") from exc
        return export

    def scorer(self, name: str, matrix, version: Optional[int] = None):
        """Load a version and bind it to *matrix* as a ``FactorizedScorer``.

        Raises :class:`SchemaMismatchError` when the matrix's column-segment
        structure differs from the one the model was saved under.
        """
        from repro.serve.scorer import FactorizedScorer

        export = self.load(name, version)
        return FactorizedScorer(export, matrix,
                                expected_fingerprint=export.fingerprint)

    def _check_name(self, name: str) -> None:
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
