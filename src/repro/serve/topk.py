"""Bound-pruned exact top-k search over the factorized serving state.

The NeedleTail observation for LIMIT-style queries carries over to scoring:
when the caller wants "the k best entities" out of ``N``, scanning all ``N``
scores is wasted work whenever high scores cluster -- and with zone-map
bounds (:mod:`repro.serve.bounds`) the clustering can be *proven* per block,
so skipped work never costs correctness.  The search is exact by
construction:

1. **Seed** a k-candidate pool from a dense strided sample of rows, scored
   exactly.  The sample establishes a high k-th-best threshold before any
   block is opened, so even the best-looking blocks can be skipped when the
   score distribution is flat near the top.
2. **Visit blocks in decreasing upper-bound order.**  A block whose upper
   bound is *strictly below* the current k-th best score cannot contribute a
   result row -- and because blocks are visited in bound order, neither can
   any later block: the search stops there and skips them all.  Blocks whose
   bound ties the threshold are still visited (a row inside could displace
   the current k-th on the row-index tie-break).
3. **Exact scoring inside surviving blocks** through the ordinary snapshot
   -pinned scoring path; candidates merge into the pool with deterministic
   ordering (score, then ascending row index).

The result is identical -- same rows, same order -- to the full-scan
reference (:func:`full_scan_top_k` over all ``N`` scores): every unvisited
row provably scores strictly below the returned k-th score, so it cannot
enter the result under any tie-break.  ``smallest`` queries run the same
machinery on negated scores with the lower bounds negated into upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.serve.bounds import ZoneMaps

#: Floor on the seed-sample size (rows), so tiny k still seeds a useful
#: threshold; the sample is also never larger than the dataset.
_MIN_SEED_SAMPLE = 64


@dataclass(frozen=True)
class TopKResult:
    """An exact top-k answer plus the pruning statistics that produced it.

    ``rows``/``scores`` are ordered best-first with ties broken by ascending
    row index -- exactly the order ``full_scan_top_k`` produces.  ``stats``
    records the work: blocks visited vs skipped (``pruned`` is False when the
    search fell back to a full scan -- no zone maps, or ``k`` covering most
    of the data) and the number of rows scored exactly.
    """

    rows: np.ndarray
    scores: np.ndarray
    k: int
    largest: bool
    output: int
    stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.rows.shape[0])


def full_scan_top_k(scores: np.ndarray, k: int, largest: bool = True):
    """Reference selection over a dense score vector: (rows, scores).

    Deterministic tie-break: equal scores order by ascending row index.  This
    is both the fallback path of :func:`top_k_search` and the oracle its
    exactness is tested against.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    k = max(0, min(int(k), scores.shape[0]))
    keyed = -scores if largest else scores
    order = np.lexsort((np.arange(scores.shape[0]), keyed))[:k]
    return order.astype(np.int64), scores[order]


def _merge_pool(pool_rows: np.ndarray, pool_keyed: np.ndarray,
                rows: np.ndarray, keyed: np.ndarray, k: int):
    """Merge candidates into the pool, keeping the best k (dedup by row)."""
    all_rows = np.concatenate([pool_rows, rows])
    all_keyed = np.concatenate([pool_keyed, keyed])
    # Seed rows reappear inside visited blocks; their scores are identical,
    # so keeping the first occurrence per row is enough.
    unique_rows, first = np.unique(all_rows, return_index=True)
    unique_keyed = all_keyed[first]
    order = np.lexsort((unique_rows, unique_keyed))[:k]
    return unique_rows[order], unique_keyed[order]


def top_k_search(score_fn: Callable[[np.ndarray], np.ndarray], n_rows: int,
                 k: int, zones: Optional[ZoneMaps], largest: bool = True,
                 output: int = 0) -> TopKResult:
    """Exact top-k rows under *score_fn* using zone-map pruning.

    Parameters
    ----------
    score_fn:
        Maps an int64 row-index array to the exact scores of those rows for
        the ranked output (1-D).  Must be pinned to one snapshot by the
        caller -- the bounds in *zones* describe exactly that state.
    n_rows:
        Total number of scoreable entity rows.
    k:
        Number of results; clamped to ``n_rows`` (``k = 0`` is an empty
        result, not an error).
    zones:
        The snapshot's :class:`~repro.serve.bounds.ZoneMaps`, or ``None`` to
        force the full-scan fallback.
    largest / output:
        Rank by the largest or smallest scores of output column *output*
        (the caller resolves *output* into *score_fn*; it is echoed in the
        result for bookkeeping).
    """
    k = min(int(k), n_rows)
    if k <= 0:
        empty = np.empty(0, dtype=np.int64)
        n_blocks = zones.n_blocks if zones is not None else 0
        return TopKResult(empty, np.empty(0, dtype=np.float64), 0, largest, output,
                          {"blocks_total": n_blocks, "blocks_visited": 0,
                           "blocks_skipped": n_blocks, "rows_scored": 0,
                           "pruned": False})

    n_blocks = zones.n_blocks if zones is not None else 0
    # Pruning cannot pay off when (almost) every row must be returned anyway,
    # or when there is at most one block to skip.
    if zones is None or n_blocks <= 1 or 2 * k >= n_rows:
        all_rows = np.arange(n_rows, dtype=np.int64)
        rows, scores = full_scan_top_k(score_fn(all_rows), k, largest)
        return TopKResult(rows, scores, k, largest, output,
                          {"blocks_total": n_blocks, "blocks_visited": n_blocks,
                           "blocks_skipped": 0, "rows_scored": n_rows,
                           "pruned": False})

    sign = -1.0 if largest else 1.0  # keyed = sign * score; smaller keyed = better
    bounds = zones.upper[:, output] if largest else zones.lower[:, output]
    block_keyed_bounds = sign * bounds  # best keyed score any row could reach

    # Seed: a strided dense sample across the whole row range.
    sample_size = min(n_rows, max(2 * k, _MIN_SEED_SAMPLE))
    stride = max(1, n_rows // sample_size)
    seed_rows = np.arange(0, n_rows, stride, dtype=np.int64)
    pool_rows = np.empty(0, dtype=np.int64)
    pool_keyed = np.empty(0, dtype=np.float64)
    pool_rows, pool_keyed = _merge_pool(pool_rows, pool_keyed,
                                        seed_rows, sign * score_fn(seed_rows), k)
    rows_scored = int(seed_rows.shape[0])

    # Visit blocks best-bound first (ties by ascending block id, stable).
    order = np.argsort(block_keyed_bounds, kind="stable")
    visited = 0
    for b in order:
        if pool_rows.shape[0] >= k and block_keyed_bounds[b] > pool_keyed[k - 1]:
            # Strictly worse than the current k-th best: no row in this block
            # (or any later one -- bounds only get worse) can enter the
            # result, even on tie-break.  Equal bounds must still be visited.
            break
        row_lo, row_hi = zones.index.block_bounds(int(b))
        block_rows = np.arange(row_lo, row_hi, dtype=np.int64)
        pool_rows, pool_keyed = _merge_pool(pool_rows, pool_keyed, block_rows,
                                            sign * score_fn(block_rows), k)
        rows_scored += int(block_rows.shape[0])
        visited += 1

    return TopKResult(pool_rows, sign * pool_keyed, k, largest, output,
                      {"blocks_total": n_blocks, "blocks_visited": visited,
                       "blocks_skipped": n_blocks - visited,
                       "rows_scored": rows_scored, "pruned": True})
