"""Factorized model serving: inference pushed through the joins.

Training over a normalized matrix avoids materializing the join; this
subpackage carries the idea to the online path.  A trained model's linear
map decomposes by the column segments of the schema into per-table partial
scores ``R_k @ W_k`` that are precomputed once -- a scoring request is then
an entity-local dot product plus one O(1) gather per join key, with no join,
no ``S``-sized state, and no per-request matmul over attribute columns.

* :class:`~repro.serve.scorer.FactorizedScorer` -- the math: weight slicing
  by :meth:`~repro.core.normalized_matrix.NormalizedMatrix.column_segments`,
  partial precomputation, FK-gather scoring, and per-table snapshot-swapped
  updates (``update_table``).
* :class:`~repro.serve.registry.ModelRegistry` -- versioned on-disk
  save/load of exported weights, bound to a schema fingerprint; loading
  against a mismatched schema raises
  :class:`~repro.exceptions.SchemaMismatchError`.
* :class:`~repro.serve.service.ScoringService` -- the online front end:
  micro-batching, a hot-entity LRU keyed by snapshot version, counters.
* :mod:`repro.serve.snapshot` -- the immutable-snapshot / atomic-swap
  protocol that keeps serving consistent while attribute tables change.
* :mod:`repro.serve.bounds` / :mod:`repro.serve.topk` -- zone-map score
  bounds over contiguous entity-row blocks, and the bound-pruned **exact
  top-k** search (``scorer.top_k`` / ``service.top_k``) that skips every
  block provably unable to reach the current k-th best score.

Quickstart::

    from repro.serve import FactorizedScorer, ScoringService

    scorer = FactorizedScorer.from_model(model, TN)   # any of the four models
    service = ScoringService(scorer)
    service.predict_rows([0, 17, 23])                 # O(1) gathers per key
    service.top_k(10)                                 # exact, data-skipping
    service.update_table("table_0", R0_new)           # atomic snapshot swap
"""

from repro.serve.bounds import ZoneMapIndex, ZoneMaps
from repro.serve.registry import ModelRegistry
from repro.serve.scorer import FactorizedScorer
from repro.serve.service import ScoringService
from repro.serve.snapshot import ServingSnapshot, SnapshotManager, compute_partial
from repro.serve.topk import TopKResult, full_scan_top_k, top_k_search

__all__ = [
    "FactorizedScorer",
    "ModelRegistry",
    "ScoringService",
    "ServingSnapshot",
    "SnapshotManager",
    "TopKResult",
    "ZoneMapIndex",
    "ZoneMaps",
    "compute_partial",
    "full_scan_top_k",
    "top_k_search",
]
