"""The online scoring front end: micro-batching, hot-entity cache, stats.

:class:`ScoringService` wraps a :class:`~repro.serve.scorer.FactorizedScorer`
with the two mechanics an online endpoint needs on top of the raw math:

* **Micro-batching** -- a stream of point requests is chunked into
  ``max_batch_size`` micro-batches, so the per-request cost is one gather
  row inside a vectorized batch instead of a full NumPy dispatch.  This is
  where the serving win over per-request materialized scoring comes from
  (see ``benchmarks/bench_serving.py``).
* **An LRU cache for hot entities** -- point lookups by entity row
  (:meth:`score_row`) are cached by ``(snapshot version, row)``, so a skewed
  request distribution is served mostly from the cache, and a snapshot swap
  (``update_table``) invalidates stale entries *implicitly*: the version in
  the key changes, and old entries age out of the LRU.

The service is thread-safe: the cache is guarded by a lock, and scoring
itself reads one immutable snapshot per call (see
:mod:`repro.serve.snapshot`), so concurrent readers never block writers.
"""

from __future__ import annotations

import threading
import time
import types
from collections import OrderedDict
from typing import Iterable, Mapping, Optional

import numpy as np

from repro import obs
from repro.exceptions import ServingError, ShapeError
from repro.ml.export import apply_head
from repro.serve.scorer import FactorizedScorer

_REQUESTS_TOTAL = obs.REGISTRY.counter(
    "repro_serve_requests_total",
    "Scoring requests (rows) served, by entry path",
    labels=("path",),
)
_REQUEST_SECONDS = obs.REGISTRY.histogram(
    "repro_serve_request_seconds",
    "End-to-end latency of point requests (score_row)",
)
_BATCH_SECONDS = obs.REGISTRY.histogram(
    "repro_serve_batch_seconds",
    "End-to-end latency of batch entry points (all micro-batches)",
)
_LRU_EVENTS = obs.REGISTRY.counter(
    "repro_serve_lru_events_total",
    "Hot-entity LRU cache events across all services",
    labels=("event",),
)
_TOPK_BLOCKS = obs.REGISTRY.counter(
    "repro_serve_topk_blocks_total",
    "Zone-map blocks examined by top-k requests, by outcome",
    labels=("outcome",),
)
_TOPK_ROWS_SCORED = obs.REGISTRY.counter(
    "repro_serve_topk_rows_scored_total",
    "Rows exactly scored by top-k requests",
)


class ScoringService:
    """Serve point and batch scoring requests for one bound scorer.

    Parameters
    ----------
    scorer:
        The bound :class:`FactorizedScorer` (build it from a model or load
        it from a :class:`~repro.serve.registry.ModelRegistry`).
    max_batch_size:
        Micro-batch size for the batch entry points; batches larger than
        this are chunked.
    cache_size:
        Capacity of the hot-entity LRU (``0`` disables caching).
    """

    def __init__(self, scorer: FactorizedScorer, max_batch_size: int = 256,
                 cache_size: int = 4096):
        if max_batch_size < 1:
            raise ServingError("max_batch_size must be at least 1")
        if cache_size < 0:
            raise ServingError("cache_size must be non-negative")
        self.scorer = scorer
        self.max_batch_size = int(max_batch_size)
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-instance series (always=True: stats() predates the obs layer
        # and must keep counting with observability off); the gated global
        # families above aggregate across services for the exporters.
        self._requests = obs.Counter(always=True)
        self._micro_batches = obs.Counter(always=True)
        self._cache_hits = obs.Counter(always=True)
        self._cache_misses = obs.Counter(always=True)
        self._topk_requests = obs.Counter(always=True)
        self._topk_blocks_visited = obs.Counter(always=True)
        self._topk_blocks_skipped = obs.Counter(always=True)
        self._topk_rows_scored = obs.Counter(always=True)

    # -- point path (LRU-cached) ---------------------------------------------------

    def score_row(self, row: int) -> np.ndarray:
        """Raw scores of one entity row as a ``(m,)`` vector (cached)."""
        row = int(row)
        # One snapshot pin serves both the cache key and the scoring call.
        # Reading the version and scoring separately would race a concurrent
        # update_table/apply_delta swap between the two: a post-swap score
        # cached under the pre-swap version key hands version v+1 data to
        # readers still on version v, breaking the one-consistent-snapshot
        # guarantee.
        record = obs.enabled()
        started = time.perf_counter() if record else 0.0
        snapshot = self.scorer.current_snapshot()
        key = (snapshot.version, row)
        with self._lock:
            self._requests.inc()
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._cache_hits.inc()
            else:
                self._cache_misses.inc()
        if cached is not None:
            if record:
                _REQUESTS_TOTAL.labels(path="point").inc()
                _LRU_EVENTS.labels(event="hit").inc()
                _REQUEST_SECONDS.observe(time.perf_counter() - started)
            return cached
        scores = self.scorer.score_rows([row], snapshot=snapshot)[0]
        scores.setflags(write=False)
        if self.cache_size:
            with self._lock:
                self._cache[key] = scores
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        if record:
            _REQUESTS_TOTAL.labels(path="point").inc()
            _LRU_EVENTS.labels(event="miss").inc()
            _REQUEST_SECONDS.observe(time.perf_counter() - started)
        return scores

    def predict_row(self, row: int) -> np.ndarray:
        """Prediction head over :meth:`score_row` (shares its cache)."""
        return apply_head(self.scorer.export,
                          self.score_row(row).reshape(1, -1), "predict")[0]

    # -- batch path (micro-batched) -------------------------------------------------

    def score_rows(self, rows: Iterable[int]) -> np.ndarray:
        """Raw scores for many entity rows, chunked into micro-batches."""
        return self._batched_rows(rows, "score")

    def predict_rows(self, rows: Iterable[int]) -> np.ndarray:
        """Predictions for many entity rows, chunked into micro-batches."""
        return self._batched_rows(rows, "predict")

    def predict_proba_rows(self, rows: Iterable[int]) -> np.ndarray:
        """Probabilities for many entity rows (logistic models only)."""
        return self._batched_rows(rows, "predict_proba")

    def score(self, features=None, keys=None) -> np.ndarray:
        """Raw scores for ad-hoc feature+key requests, micro-batched."""
        return self._batched_requests(features, keys, "score")

    def predict(self, features=None, keys=None) -> np.ndarray:
        """Predictions for ad-hoc feature+key requests, micro-batched."""
        return self._batched_requests(features, keys, "predict")

    def predict_proba(self, features=None, keys=None) -> np.ndarray:
        """Probabilities for ad-hoc requests (logistic models only)."""
        return self._batched_requests(features, keys, "predict_proba")

    def _batched_rows(self, rows, head: str) -> np.ndarray:
        from repro.la.types import normalize_row_indices

        # Resolve masks/validation up front: a boolean mask must not be
        # chunked (each piece would fail the scorer's length check), and the
        # request stat should count selected rows, not mask length.
        indices = normalize_row_indices(
            list(rows) if not isinstance(rows, np.ndarray) else rows,
            self.scorer.n_rows,
        )
        if indices.shape[0] == 0:
            # Route through the scorer so the empty result keeps the head's
            # shape/dtype (e.g. 1-D int labels for K-Means, not (0, k) floats).
            raw = self.scorer.score_rows(indices)
            return apply_head(self.scorer.export, raw, head) if head != "score" else raw
        record = obs.enabled()
        started = time.perf_counter() if record else 0.0
        # One snapshot for the whole service call: a batch split into
        # micro-batches must not straddle a concurrent update_table swap.
        snapshot = self.scorer.current_snapshot()
        chunks = []
        for start in range(0, indices.shape[0], self.max_batch_size):
            chunk = indices[start:start + self.max_batch_size]
            raw = self.scorer.score_rows(chunk, snapshot=snapshot)
            chunks.append(apply_head(self.scorer.export, raw, head)
                          if head != "score" else raw)
            with self._lock:
                self._requests.inc(int(chunk.shape[0]))
                self._micro_batches.inc()
        if record:
            _REQUESTS_TOTAL.labels(path="batch").inc(int(indices.shape[0]))
            _BATCH_SECONDS.observe(time.perf_counter() - started)
        return np.concatenate(chunks, axis=0)

    def _batched_requests(self, features, keys, head: str) -> np.ndarray:
        n = None
        if keys is not None:
            # Shared flat-vector disambiguation (see scorer.normalize_keys);
            # it must happen before chunking.
            keys = self.scorer.normalize_keys(keys)
            n = keys.shape[0]
        if features is not None:
            if not hasattr(features, "shape"):
                try:
                    features = np.asarray(features, dtype=np.float64)
                except (TypeError, ValueError) as exc:
                    raise ShapeError(
                        f"ScoringService.score: features are not matrix-like ({exc})"
                    ) from exc
            from repro.la.types import is_sparse

            if is_sparse(features):
                # COO/DIA/BSR matrices accept @ but not row slicing; chunking
                # needs a sliceable format.
                features = features.tocsr()
            if getattr(features, "ndim", 2) == 1:
                features = features.reshape(1, -1)
            if n is not None and features.shape[0] != n:
                # Chunking would silently truncate to the shorter side; the
                # scorer rejects the mismatch, so the front end must too.
                raise ServingError(
                    f"got {features.shape[0]} feature rows but {n} key rows"
                )
            n = features.shape[0]
        if n is None:
            raise ServingError("pass features and/or keys to score")
        if n == 0:
            raw = self.scorer.score(features, keys)
            return apply_head(self.scorer.export, raw, head) if head != "score" else raw
        record = obs.enabled()
        started = time.perf_counter() if record else 0.0
        snapshot = self.scorer.current_snapshot()
        chunks = []
        for start in range(0, n, self.max_batch_size):
            stop = min(start + self.max_batch_size, n)
            chunk_features = features[start:stop] if features is not None else None
            chunk_keys = keys[start:stop] if keys is not None else None
            raw = self.scorer.score(chunk_features, chunk_keys, snapshot=snapshot)
            chunks.append(apply_head(self.scorer.export, raw, head)
                          if head != "score" else raw)
            with self._lock:
                self._requests.inc(stop - start)
                self._micro_batches.inc()
        if record:
            _REQUESTS_TOTAL.labels(path="adhoc").inc(n)
            _BATCH_SECONDS.observe(time.perf_counter() - started)
        return np.concatenate(chunks, axis=0)

    # -- top-k (bound-pruned) --------------------------------------------------------

    def top_k(self, k: int, largest: bool = True, output: int = 0):
        """The k best entity rows via the scorer's bound-pruned search.

        Snapshot-pinned like every other entry point (the scorer reads one
        snapshot for bounds and exact scoring alike) and stats-counted: the
        service accumulates blocks visited vs skipped and rows scored, so an
        operator can see how much of the data the top-k traffic actually
        touches (see :meth:`stats`).
        """
        result = self.scorer.top_k(k, largest=largest, output=output)
        visited = result.stats.get("blocks_visited", 0)
        skipped = result.stats.get("blocks_skipped", 0)
        rows_scored = result.stats.get("rows_scored", 0)
        with self._lock:
            self._requests.inc()
            self._topk_requests.inc()
            self._topk_blocks_visited.inc(visited)
            self._topk_blocks_skipped.inc(skipped)
            self._topk_rows_scored.inc(rows_scored)
        if obs.enabled():
            _REQUESTS_TOTAL.labels(path="topk").inc()
            if visited:
                _TOPK_BLOCKS.labels(outcome="visited").inc(visited)
            if skipped:
                _TOPK_BLOCKS.labels(outcome="skipped").inc(skipped)
            if rows_scored:
                _TOPK_ROWS_SCORED.inc(rows_scored)
        return result

    # -- freshness + introspection ---------------------------------------------------

    def update_table(self, table, new_attribute, wait: bool = True):
        """Swap in a fresh attribute table (see ``FactorizedScorer.update_table``).

        Cached point scores stay valid: they are keyed by snapshot version,
        so the swap makes them unreachable and the LRU ages them out.
        """
        return self.scorer.update_table(table, new_attribute, wait=wait)

    def apply_delta(self, table, delta, wait: bool = True):
        """Patch one table's partial from a row delta (see ``FactorizedScorer.apply_delta``).

        Same cache story as :meth:`update_table`: the swap bumps the snapshot
        version, so stale cached point scores become unreachable.
        """
        return self.scorer.apply_delta(table, delta, wait=wait)

    def stats(self) -> Mapping[str, int]:
        """An immutable point-in-time snapshot of the service counters.

        The snapshot is built under the service lock (no torn reads of
        mid-batch state) and returned as a read-only mapping: mutating it
        raises ``TypeError`` and can never corrupt the live counters.
        """
        with self._lock:
            return types.MappingProxyType({
                "requests": int(self._requests.value),
                "micro_batches": int(self._micro_batches.value),
                "cache_hits": int(self._cache_hits.value),
                "cache_misses": int(self._cache_misses.value),
                "cache_entries": len(self._cache),
                "snapshot_version": self.scorer.version,
                "topk_requests": int(self._topk_requests.value),
                "topk_blocks_visited": int(self._topk_blocks_visited.value),
                "topk_blocks_skipped": int(self._topk_blocks_skipped.value),
                "topk_rows_scored": int(self._topk_rows_scored.value),
            })

    def clear_cache(self) -> None:
        """Drop every cached point score."""
        with self._lock:
            self._cache.clear()

    def close(self) -> None:
        """Release the scorer's background worker."""
        self.scorer.close()
