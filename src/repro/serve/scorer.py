"""The factorized scorer: inference pushed through the joins.

Training over normalized data avoids materializing the join; this module
carries the same idea to inference.  A linear score over the join output,

.. code-block:: text

    T @ W = [S, K1 R1, ..., Kq Rq] @ W
          = S @ W_S + K1 (R1 @ W_1) + ... + Kq (Rq @ W_q)

decomposes by the column segments of the normalized matrix: each attribute
table contributes ``K_k (R_k @ W_k)``, and ``R_k @ W_k`` -- the table's
**partial scores** -- depends only on the base table and the weights, never
on the request.  :class:`FactorizedScorer` precomputes those ``n_Rk x m``
partials once, so a scoring request is:

* one dense dot product over the *entity* features only (``d_S`` columns,
  not ``d``), plus
* one O(1) row gather per join key from each precomputed partial.

No join output row is ever assembled, no per-request matmul touches the
attribute columns, and the resident state (``sum_k n_Rk * m`` plus the base
matrices) is a tiny fraction of the materialized ``n_S x d`` matrix -- the
same redundancy argument as training, at request latency.  The M:N class
works identically with every component indicator-routed (no entity block).

Updates go through :meth:`update_table`: only the changed table's partial is
rebuilt (in the background if requested) and the snapshot swap of
:mod:`repro.serve.snapshot` publishes it atomically.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.core.indicator import indicator_codes
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.la import kernels
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.segments import schema_fingerprint
from repro.exceptions import SchemaMismatchError, ServingError
from repro.la.types import is_matrix_like, normalize_row_indices, to_dense
from repro.ml.base import validate_predict_data
from repro.ml.export import ServingExport, apply_head, export_model
from repro.serve.bounds import DEFAULT_BLOCK_SIZE, ZoneMapIndex, ZoneMaps
from repro.serve.snapshot import ServingSnapshot, SnapshotManager, compute_partial
from repro.serve.topk import TopKResult, top_k_search

#: Update-to-visibility: from the freshness call to the published swap,
#: including any queue wait on the background worker.
_VISIBILITY_SECONDS = obs.REGISTRY.histogram(
    "repro_serve_update_visibility_seconds",
    "Latency from update_table/apply_delta call to the published snapshot",
    labels=("path",),
)
_UPDATES_TOTAL = obs.REGISTRY.counter(
    "repro_serve_updates_total",
    "Freshness operations accepted, by path and mode",
    labels=("path", "mode"),
)


class FactorizedScorer:
    """Low-latency scorer over a normalized schema for one exported model.

    Parameters
    ----------
    export:
        The model's :class:`~repro.ml.export.ServingExport` (weights sliced
        here by column segment).
    matrix:
        The untransposed :class:`NormalizedMatrix` or
        :class:`MNNormalizedMatrix` describing the serving schema.  Its
        entity matrix and indicators provide the row-scoring path
        (:meth:`score_rows`); its attribute tables seed the partials.
    expected_fingerprint:
        Schema fingerprint the export was saved under (the registry passes
        it); mismatch with *matrix* raises :class:`SchemaMismatchError`.
    zone_block_size:
        Entity rows per zone-map block (see :mod:`repro.serve.bounds`).  The
        block min/max score bounds are what :meth:`top_k` prunes with; the
        default suits 1e5+-row serving sets.
    """

    def __init__(self, export: ServingExport, matrix, expected_fingerprint=None,
                 zone_block_size: int = DEFAULT_BLOCK_SIZE):
        if not isinstance(matrix, (NormalizedMatrix, MNNormalizedMatrix)):
            raise ServingError(
                "FactorizedScorer needs a normalized matrix describing the schema; "
                f"got {type(matrix).__name__} (serve plain matrices by plain matmul)"
            )
        if matrix.transposed:
            raise ServingError("FactorizedScorer is only defined for untransposed matrices")
        self.export = export
        self.fingerprint = schema_fingerprint(matrix)
        if expected_fingerprint is not None and expected_fingerprint != self.fingerprint:
            raise SchemaMismatchError(
                f"model was exported for schema {expected_fingerprint[:12]}... but the "
                f"serving matrix has schema {self.fingerprint[:12]}...; "
                "re-export the model or rebuild the matrix"
            )
        if export.n_features != matrix.logical_cols:
            raise SchemaMismatchError(
                f"model has {export.n_features} weights but the schema has "
                f"{matrix.logical_cols} columns"
            )

        self.segments = matrix.column_segments()
        weights = export.weights
        entity_segment = next((s for s in self.segments if s.is_entity), None)
        self._entity = matrix.entity if isinstance(matrix, NormalizedMatrix) else None
        self._entity_weights = (weights[entity_segment.slice()]
                                if entity_segment is not None else None)
        #: segments routed through indicators, in attribute-table order.
        self._table_segments = [s for s in self.segments if not s.is_entity]
        self._codes = [indicator_codes(k) for k in matrix.indicators]
        self._n_rows = matrix.logical_rows

        # The attribute tables are not retained: once the partials exist the
        # scorer never reads them again (update_table receives the fresh
        # table from the caller), and holding them would pin sum_k n_Rk x d_Rk
        # of dead state for the scorer's lifetime.
        partials = tuple(
            compute_partial(matrix.attributes[s.table_index], weights[s.slice()])
            for s in self._table_segments
        )
        # Zone maps ride on every snapshot: the index (block geometry, codes,
        # entity-contribution bounds) is fixed for the scorer's lifetime,
        # the per-snapshot bounds follow the partials through every swap.
        zone_index = ZoneMapIndex.build(
            codes=[self._codes[s.table_index] for s in self._table_segments],
            n_rows=self._n_rows, n_outputs=self.n_outputs,
            entity=self._entity, entity_weights=self._entity_weights,
            block_size=zone_block_size,
        )
        self._snapshots = SnapshotManager(
            ServingSnapshot(partials, zones=ZoneMaps.build(zone_index, partials))
        )

    # -- metadata ----------------------------------------------------------------

    @property
    def kind(self) -> str:
        """The served model kind (selects the prediction heads)."""
        return self.export.kind

    @property
    def n_rows(self) -> int:
        """Number of entity rows addressable by :meth:`score_rows`."""
        return self._n_rows

    @property
    def n_outputs(self) -> int:
        return self.export.n_outputs

    @property
    def num_tables(self) -> int:
        """Number of indicator-routed tables (each with a precomputed partial)."""
        return len(self._table_segments)

    @property
    def entity_width(self) -> int:
        return self._entity_weights.shape[0] if self._entity_weights is not None else 0

    @property
    def version(self) -> int:
        """Snapshot version; bumps by one on every :meth:`update_table` swap."""
        return self._snapshots.snapshot.version

    @property
    def partial_bytes(self) -> int:
        """Resident bytes of the precomputed partial-score matrices."""
        return self._snapshots.snapshot.partial_bytes

    @classmethod
    def from_model(cls, model, matrix) -> "FactorizedScorer":
        """Build a scorer straight from a fitted estimator (no registry)."""
        return cls(export_model(model), matrix)

    # -- scoring -----------------------------------------------------------------

    def current_snapshot(self):
        """The snapshot a request would read right now.

        Pass it back via the ``snapshot=`` parameter of :meth:`score_rows` /
        :meth:`score` to pin several calls to one consistent state -- the
        :class:`~repro.serve.service.ScoringService` does this so a batch
        split into micro-batches never straddles a swap.
        """
        return self._snapshots.snapshot

    def score_rows(self, row_indices, snapshot=None) -> np.ndarray:
        """Raw scores ``T[rows] @ W`` for entity rows of the serving matrix.

        The join keys come from the stored indicator codes, so this is the
        pure lookup path: entity-row gather + ``d_S``-wide dot product + one
        partial gather per table.  Returns ``(len(rows), m)``.  *snapshot*
        (from :meth:`current_snapshot`) pins the serving state across calls;
        by default each call reads the current snapshot once.
        """
        indices = normalize_row_indices(row_indices, self._n_rows)
        if snapshot is None:
            snapshot = self._snapshots.snapshot
        base = self._entity_contribution(
            self._entity[indices, :] if self._entity is not None else None,
            len(indices),
        )
        code_rows = [self._codes[segment.table_index][indices]
                     for segment in self._table_segments]
        return kernels.gather_dot(base, snapshot.partials, code_rows)

    def score(self, features=None, keys=None, snapshot=None) -> np.ndarray:
        """Raw scores for ad-hoc requests: entity features + join keys.

        Parameters
        ----------
        features:
            ``(n, d_S)`` entity-feature rows (or one 1-D row); required
            exactly when the schema has entity features, forbidden otherwise.
        keys:
            ``(n, q)`` attribute-row indices, one column per indicator-routed
            table in segment order (``(n,)`` accepted when ``q == 1``).
        snapshot:
            Optional pinned state from :meth:`current_snapshot`.
        """
        # One snapshot read serves validation *and* gathering: validating
        # against one snapshot and gathering from a successor could read past
        # the end of a partial that shrank in between.
        if snapshot is None:
            snapshot = self._snapshots.snapshot
        features, keys = self._validate_request(features, keys, snapshot)
        n = keys.shape[0] if keys is not None else features.shape[0]
        base = self._entity_contribution(features, n)
        if keys is None:
            return base
        code_rows = [keys[:, position]
                     for position in range(len(self._table_segments))]
        return kernels.gather_dot(base, snapshot.partials, code_rows)

    def predict_rows(self, row_indices) -> np.ndarray:
        """Model predictions for entity rows (labels / clusters / loadings)."""
        return apply_head(self.export, self.score_rows(row_indices), "predict")

    def predict(self, features=None, keys=None) -> np.ndarray:
        """Model predictions for ad-hoc requests."""
        return apply_head(self.export, self.score(features, keys), "predict")

    def predict_proba_rows(self, row_indices) -> np.ndarray:
        """Positive-class probabilities for entity rows (logistic models only)."""
        return apply_head(self.export, self.score_rows(row_indices), "predict_proba")

    def predict_proba(self, features=None, keys=None) -> np.ndarray:
        """Positive-class probabilities for ad-hoc requests (logistic models only)."""
        return apply_head(self.export, self.score(features, keys), "predict_proba")

    # -- top-k: bound-pruned data-skipping search ----------------------------------

    def top_k(self, k: int, largest: bool = True, output: int = 0,
              snapshot=None) -> TopKResult:
        """The k best-scoring entity rows, exactly, without scoring all of them.

        Visits zone-map blocks (see :mod:`repro.serve.bounds`) in decreasing
        bound order and skips every block whose bound cannot beat the current
        k-th best score; surviving blocks are scored exactly through
        :meth:`score_rows`.  The result -- rows ordered best-first, ties by
        ascending row index -- is identical to ranking a full scan, at a
        fraction of the scoring work whenever high scores cluster (see
        ``benchmarks/bench_topk.py``).  The whole search is pinned to one
        snapshot: a concurrent ``update_table``/``apply_delta`` swap can
        never mix bounds from one state with scores from another.

        Parameters
        ----------
        k:
            Number of rows to return; clamped to ``n_rows`` (``k = 0`` is an
            empty result).
        largest:
            Rank by largest (default) or smallest scores.
        output:
            Output column to rank by (models with ``m > 1`` outputs).
        snapshot:
            Optional pinned state from :meth:`current_snapshot`.
        """
        k = int(k)
        if k < 0:
            raise ServingError(f"top_k needs a non-negative k, got {k}")
        output = int(output)
        if not 0 <= output < self.n_outputs:
            raise ServingError(
                f"output {output} out of range for {self.n_outputs} model output(s)"
            )
        if snapshot is None:
            snapshot = self._snapshots.snapshot

        def score_fn(rows: np.ndarray) -> np.ndarray:
            return self.score_rows(rows, snapshot=snapshot)[:, output]

        return top_k_search(score_fn, self._n_rows, k, snapshot.zones,
                            largest=largest, output=output)

    def partial_score_bounds(self, output: int = 0, snapshot=None):
        """Per-table global (min, max) partial-score bounds for one output.

        The ad-hoc counterpart of the per-block bounds: any request keyed to
        *any* attribute row draws each table's contribution from inside these
        intervals, so their sum (plus the entity contribution) bounds every
        reachable ad-hoc score.  Returns a list of ``(lo, hi)`` floats in
        table-segment order.
        """
        output = int(output)
        if not 0 <= output < self.n_outputs:
            raise ServingError(
                f"output {output} out of range for {self.n_outputs} model output(s)"
            )
        if snapshot is None:
            snapshot = self._snapshots.snapshot
        if snapshot.zones is None:
            raise ServingError("this snapshot carries no zone maps")
        zones = snapshot.zones
        return [(float(lo[output]), float(hi[output]))
                for lo, hi in zip(zones.partial_lo, zones.partial_hi)]

    def normalize_keys(self, keys) -> np.ndarray:
        """Canonical ``(n, q)`` shape of a join-key argument.

        A flat vector is a key *column* for single-join schemas and one
        q-key request row otherwise.  The single source of this rule: the
        service front end must apply it before chunking (splitting a raw
        1-D vector across micro-batches would turn one q-key request into
        q bogus ones), and the scorer applies it during validation.
        """
        keys = np.asarray(keys)
        if keys.ndim == 1:
            if keys.size == 0:
                return keys.reshape(0, self.num_tables)  # empty batch, not one empty request
            return keys.reshape(-1, 1) if self.num_tables == 1 else keys.reshape(1, -1)
        return keys

    def _entity_contribution(self, features, n: int) -> np.ndarray:
        if self._entity_weights is None or self._entity_weights.shape[0] == 0:
            return np.zeros((n, self.n_outputs))
        return np.asarray(to_dense(features @ self._entity_weights), dtype=np.float64)

    def _validate_request(self, features, keys, snapshot):
        wants_features = self.entity_width > 0
        if wants_features:
            if features is None:
                raise ServingError(
                    f"this schema has {self.entity_width} entity features; "
                    "pass features= alongside the join keys"
                )
            features = validate_predict_data(features, self.entity_width,
                                             "FactorizedScorer.score")
            if not is_matrix_like(features):
                raise ServingError("features must be a dense or sparse matrix")
        elif features is not None:
            raise ServingError("this schema has no entity features; pass keys only")
        if self.num_tables == 0:
            if keys is not None:
                raise ServingError("this schema has no indicator-routed tables")
            return features, None
        if keys is None:
            raise ServingError(f"this schema needs {self.num_tables} join key(s) per request")
        keys = self.normalize_keys(keys)
        if keys.ndim != 2 or keys.shape[1] != self.num_tables:
            raise ServingError(
                f"keys must have shape (n, {self.num_tables}), got {keys.shape}"
            )
        if not np.issubdtype(keys.dtype, np.integer):
            if keys.size:
                raise ServingError("join keys must be integer attribute-row indices")
            # An empty request batch carries no dtype information (np.asarray
            # of [] is float64); let it reach the shaped-empty-result path.
        keys = keys.astype(np.int64, copy=False)
        for position, segment in enumerate(self._table_segments):
            limit = snapshot.partials[position].shape[0]
            column = keys[:, position]
            if column.size and (column.min() < 0 or column.max() >= limit):
                raise ServingError(
                    f"join key out of range for {segment.name} "
                    f"(valid rows: 0..{limit - 1})"
                )
        if wants_features and features.shape[0] != keys.shape[0]:
            raise ServingError(
                f"got {features.shape[0]} feature rows but {keys.shape[0]} key rows"
            )
        return features, keys

    # -- freshness: per-table partial rebuild + snapshot swap ----------------------

    def update_table(self, table, new_attribute, wait: bool = True):
        """Swap in a fresh attribute table, rebuilding only its partial scores.

        *table* is a table index or a segment name (``"table_1"`` /
        ``"component_0"``).  The new matrix must keep the table's feature
        count (the weight slice depends on it) and must still cover every
        row the stored indicators reference; the row count may grow (new
        products) or shrink to that bound.  With ``wait=False`` the rebuild
        runs on the background worker and a ``Future`` of the new snapshot
        is returned; scoring continues against the old snapshot until the
        atomic swap, so no request ever reads a torn state.
        """
        segment = self._resolve_table(table)
        expected_width = segment.width
        if not is_matrix_like(new_attribute):
            new_attribute = np.asarray(new_attribute, dtype=np.float64)
        if new_attribute.ndim != 2 or new_attribute.shape[1] != expected_width:
            raise SchemaMismatchError(
                f"{segment.name} has {expected_width} features; replacement has shape "
                f"{getattr(new_attribute, 'shape', None)} (schema changes need a re-export)"
            )
        codes = self._codes[segment.table_index]
        min_rows = int(codes.max()) + 1 if codes.size else 0
        if new_attribute.shape[0] < min_rows:
            raise ServingError(
                f"{segment.name} replacement has {new_attribute.shape[0]} rows but the "
                f"serving indicators reference rows up to {min_rows - 1}"
            )
        weight_slice = self.export.weights[segment.slice()]
        position = self._table_segments.index(segment)

        record = obs.enabled()
        accepted = time.perf_counter() if record else 0.0

        def rebuild() -> ServingSnapshot:
            with obs.span("serve.update_table", table=segment.name):
                partial = compute_partial(new_attribute, weight_slice)
                snapshot = self._snapshots.swap(
                    lambda snap: snap.with_partial(position, partial))
            if record:
                _VISIBILITY_SECONDS.labels(path="rebuild").observe(
                    time.perf_counter() - accepted)
            return snapshot

        if record:
            _UPDATES_TOTAL.labels(path="rebuild",
                                  mode="wait" if wait else "background").inc()
        if wait:
            return rebuild()
        return self._snapshots.submit(rebuild)

    def apply_delta(self, table, delta, wait: bool = True):
        """Absorb a row delta into one table's partial scores incrementally.

        The cheap freshness path: where :meth:`update_table` recomputes the
        whole ``n_Rk x m`` partial from a replacement table,
        this recomputes only the delta's ``b`` changed rows (``new @ W_k``)
        and publishes the patched partial with the same atomic swap -- for
        serving partials the patch is *always* at least as cheap as a
        rebuild, so no cost rule is consulted.  Row appends are allowed
        (``delta.num_rows`` must match the current partial, indices beyond it
        extend it); tombstone deletes zero the rows' contribution.  With
        ``wait=False`` the patch runs on the background worker.
        """
        segment = self._resolve_table(table)
        if delta.width != segment.width:
            raise SchemaMismatchError(
                f"{segment.name} has {segment.width} features but the delta has "
                f"{delta.width} (schema changes need a re-export)"
            )
        weight_slice = self.export.weights[segment.slice()]
        position = self._table_segments.index(segment)

        record = obs.enabled()
        accepted = time.perf_counter() if record else 0.0

        def patch() -> ServingSnapshot:
            # The row-count check runs inside the swap's writer lock (via this
            # closure) against the snapshot actually being patched, so a
            # concurrent grow/shrink on the same table cannot invalidate it.
            def update(snap: ServingSnapshot) -> ServingSnapshot:
                current_rows = snap.partials[position].shape[0]
                if delta.num_rows != current_rows:
                    raise ServingError(
                        f"delta for {segment.name} was captured at {delta.num_rows} "
                        f"rows but the serving partial has {current_rows}; "
                        "recapture against the current table state"
                    )
                return snap.with_patched_partial(position, delta, weight_slice)

            with obs.span("serve.apply_delta", table=segment.name,
                          delta_rows=int(delta.rows.shape[0])):
                snapshot = self._snapshots.swap(update)
            if record:
                _VISIBILITY_SECONDS.labels(path="patch").observe(
                    time.perf_counter() - accepted)
            return snapshot

        if record:
            _UPDATES_TOTAL.labels(path="patch",
                                  mode="wait" if wait else "background").inc()
        if wait:
            return patch()
        return self._snapshots.submit(patch)

    def _resolve_table(self, table):
        if isinstance(table, str):
            for segment in self._table_segments:
                if segment.name == table:
                    return segment
            names = [s.name for s in self._table_segments]
            raise ServingError(f"unknown table {table!r}; serving tables: {names}")
        index = int(table)
        for segment in self._table_segments:
            if segment.table_index == index:
                return segment
        raise ServingError(
            f"table index {index} out of range for {self.num_tables} serving tables"
        )

    def close(self) -> None:
        """Stop the background update worker (idempotent)."""
        self._snapshots.close()
