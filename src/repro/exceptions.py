"""Exception hierarchy for the Morpheus reproduction library.

All library-specific errors derive from :class:`MorpheusError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate the finer-grained categories below.
"""

from __future__ import annotations


class MorpheusError(Exception):
    """Base class for every error raised by this library."""


class ShapeError(MorpheusError):
    """Raised when matrix dimensions are incompatible for an operation."""


class SchemaError(MorpheusError):
    """Raised when relational schema metadata is invalid or inconsistent.

    Examples include a foreign key referencing a column that does not exist,
    duplicate primary keys in an attribute table, or a join specification that
    names a missing table.
    """


class IndicatorError(MorpheusError):
    """Raised when an indicator matrix violates its structural invariants.

    For a PK-FK indicator matrix ``K`` every row must contain exactly one
    non-zero entry equal to one; for M:N indicator matrices every row must
    contain exactly one non-zero and every column at least one.
    """


class RewriteError(MorpheusError):
    """Raised when a rewrite rule cannot be applied to the given operands."""


class NotSupportedError(MorpheusError):
    """Raised for operations outside the supported LA operator set (Table 1)."""


class PlanningError(MorpheusError):
    """Raised when the cost-based planner cannot produce a feasible plan.

    The only current source is a memory budget too small for *any* execution
    strategy -- even the streamed mini-batch backend needs the factorized base
    matrices resident.
    """


class DeltaError(MorpheusError):
    """Raised when an incremental-maintenance delta cannot be applied.

    Examples include a delta whose ``old`` values disagree with the matrix
    being patched (the change was captured against a different version), row
    indices outside the target table, or a non-patchable change (a physical
    delete that renumbers rows) routed to a patch-only consumer.
    """


class ServingError(MorpheusError):
    """Raised for invalid requests to the model-serving subsystem.

    Examples include scoring with the wrong number of join keys, a key that
    falls outside an attribute table, or asking a scorer for a prediction
    head its model kind does not define (``predict_proba`` on K-Means).
    """


class SchemaMismatchError(ServingError):
    """Raised when a model is scored against a schema it was not trained on.

    The serving subsystem fingerprints the column-segment structure of the
    normalized matrix at export time; loading the model against a matrix with
    a different fingerprint (changed table widths, added/dropped joins) must
    fail loudly instead of silently mis-slicing the weight vector.
    """


class RegistryError(ServingError):
    """Raised for model-registry failures: unknown model names or versions,
    or a corrupt/incomplete version directory on disk."""


class ConvergenceError(MorpheusError):
    """Raised when an iterative ML algorithm fails to make progress."""


class DataGenerationError(MorpheusError):
    """Raised when a synthetic dataset specification is infeasible."""
