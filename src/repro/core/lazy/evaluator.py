"""Executes lazy expression graphs against the eager operator implementations.

The evaluator is intentionally thin: every operator node is computed by
handing the evaluated child operands to the *same* code the eager path uses --
the operator overloads of ``NormalizedMatrix`` / ``MNNormalizedMatrix`` /
``ChunkedMatrix``, the generic dispatchers of :mod:`repro.la.generic` and the
plain-matrix primitives of :mod:`repro.la.ops`.  The factorized rewrite rules
of Section 3.3/3.5/3.6 and the closure property therefore apply at graph
level without being reimplemented, and any backend whose operands implement
the Table-1 surface executes unchanged.

On top of that the evaluator adds the one thing the eager path cannot do:
**cross-iteration memoization**.  Non-leaf nodes whose subtree is join
invariant (see :mod:`repro.core.lazy.expr`) are looked up in -- and stored
into -- the :class:`~repro.core.lazy.cache.FactorizedCache` attached to the
data matrix, so a GD loop that rebuilds ``crossprod(T)`` or ``T^T Y`` every
iteration computes them exactly once.  Within a single ``evaluate()`` call,
shared DAG nodes are additionally deduplicated by identity, so diamond-shaped
graphs evaluate each node once even when nothing is invariant.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.lazy.cache import FactorizedCache
from repro.core.lazy.expr import LazyExpr, LeafExpr
from repro.la import generic
from repro.la import ops as la_ops
from repro.la.types import ensure_2d, is_matrix_like, to_dense

_PY_OPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "**": operator.pow,
}

_EW_UFUNCS: Dict[str, Callable] = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
}


def find_cache(expr: LazyExpr) -> Optional[FactorizedCache]:
    """First :class:`FactorizedCache` found among the expression's leaves."""
    for leaf in expr.leaves():
        if isinstance(leaf, LeafExpr) and leaf.cache is not None:
            return leaf.cache
    return None


def evaluate(expr: LazyExpr, cache: Optional[FactorizedCache] = None) -> Any:
    """Evaluate *expr*, memoizing join-invariant subexpressions in *cache*.

    When *cache* is ``None`` the cache attached to the expression's data
    matrix (by ``.lazy()``) is used; with no cache anywhere, evaluation still
    works -- it just recomputes everything, matching eager semantics exactly.
    """
    if not isinstance(expr, LazyExpr):
        raise TypeError(f"evaluate() expects a LazyExpr, got {type(expr).__name__}")
    if cache is None:
        cache = find_cache(expr)
    return _evaluate(expr, cache, {})


def _evaluate(node: LazyExpr, cache: Optional[FactorizedCache],
              memo: Dict[int, Any]) -> Any:
    node_id = id(node)
    if node_id in memo:
        return memo[node_id]

    if isinstance(node, LeafExpr):
        result = node.value
    elif node.invariant and cache is not None:
        found, result = cache.lookup(node.key)
        if not found:
            result = _freeze(_compute(node, cache, memo))
            cache.store(node.key, result, patch_rule=_patch_rule(node, memo))
    else:
        result = _compute(node, cache, memo)

    memo[node_id] = result
    return result


def _freeze(value: Any) -> Any:
    """Make a to-be-cached dense result read-only.

    Cached values are returned by reference on every hit, so an in-place
    mutation by a caller would silently corrupt every future evaluation.
    Freezing turns that into an immediate ``ValueError``; callers that need a
    mutable result should copy.  (Sparse and normalized results rely on the
    library-wide immutable-base-matrix convention instead.)
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
    return value


#: Aggregation operators whose cached result the delta layer can patch.
_AGG_KINDS = {"rowsums": "rowsums", "colsums": "colsums", "total_sum": "total_sum"}


def _normalized_leaf_token(expr: LazyExpr) -> Optional[str]:
    """The leaf identity token when *expr* wraps an untransposed normalized matrix.

    Duck-typed (``indicators`` + ``attributes``) to avoid importing the matrix
    classes here; transposed views are excluded because the delta rules are
    stated over ``T``, not ``T^T``.
    """
    if not isinstance(expr, LeafExpr):
        return None
    value = expr.value
    if getattr(value, "transposed", False):
        return None
    if hasattr(value, "indicators") and hasattr(value, "attributes"):
        token = getattr(value, "_lazy_token", None)
        if token is not None and expr.token == token:
            return token
    return None


def _patch_rule(node: LazyExpr, memo: Dict[int, Any]):
    """A :class:`~repro.core.delta.CachePatchRule` for recognized node shapes.

    Recognized: ``crossprod(T)``, ``T @ X``, ``T^T @ Y`` and the aggregations,
    each built directly over a normalized-matrix leaf with any co-operand
    independent of that leaf (checked structurally on the co-operand's key).
    Everything else returns ``None`` and falls back to full invalidation on
    delta -- unrecognized shapes cost correctness nothing, only reuse.
    """
    from repro.core.delta import CachePatchRule
    from repro.core.lazy.cache import _key_involves

    op = node.op
    if op == "crossprod":
        token = _normalized_leaf_token(node.children[0])
        if token is not None:
            return CachePatchRule("crossprod", token)
    elif op in _AGG_KINDS:
        token = _normalized_leaf_token(node.children[0])
        if token is not None:
            return CachePatchRule(_AGG_KINDS[op], token)
    elif op == "matmul":
        left, right = node.children
        token = _normalized_leaf_token(left)
        if token is not None and not _key_involves(right.key, token):
            operand = memo.get(id(right))
            if operand is not None:
                return CachePatchRule("lmm", token, operand=operand)
        if left.op == "transpose":
            token = _normalized_leaf_token(left.children[0])
            if token is not None and not _key_involves(right.key, token):
                operand = memo.get(id(right))
                if operand is not None:
                    return CachePatchRule("tlmm", token, operand=operand)
    return None


def _compute(node: LazyExpr, cache: Optional[FactorizedCache],
             memo: Dict[int, Any]) -> Any:
    """Apply one operator to its evaluated children via the eager implementations."""
    values = [_evaluate(child, cache, memo) for child in node.children]
    op = node.op

    if op == "transpose":
        return values[0].T
    if op == "matmul":
        a, b = values
        if is_matrix_like(a) and is_matrix_like(b):
            return la_ops.matmul(a, b)
        return a @ b
    if op == "crossprod":
        (value,), (method,) = values, node.params
        if hasattr(value, "crossprod"):
            return value.crossprod(method) if method else value.crossprod()
        return np.asarray(to_dense(la_ops.crossprod(ensure_2d(value))))
    if op == "ginv":
        return generic.ginv(values[0])
    if op == "rowsums":
        return generic.rowsums(values[0])
    if op == "colsums":
        return generic.colsums(values[0])
    if op == "total_sum":
        return generic.total_sum(values[0])
    if op == "scalar":
        (value,), (sym, scalar, reverse) = values, node.params
        if is_matrix_like(value):
            return la_ops.scalar_op(value, sym, scalar, reverse=reverse)
        fn = _PY_OPS[sym]
        return fn(scalar, value) if reverse else fn(value, scalar)
    if op == "elemwise":
        a, b = values
        (sym,) = node.params
        if is_matrix_like(a) and is_matrix_like(b):
            # Plain x plain: densify so sparse '*' is element-wise, not matmul.
            return _EW_UFUNCS[sym](to_dense(ensure_2d(a)), to_dense(ensure_2d(b)))
        # At least one logical operand: its overload implements the paper's
        # Section 3.3.7 semantics (materialize on demand).
        return _PY_OPS[sym](a, b)
    if op == "apply":
        return generic.elementwise(values[0], node.fn)

    raise NotImplementedError(f"unknown lazy operator {node.op!r}")  # pragma: no cover
