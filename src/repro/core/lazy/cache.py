"""The cross-iteration memoization cache for join-invariant subexpressions.

Iterative ML workloads (Figures 8--10 of the paper: GD linear/logistic
regression, K-Means, GNMF) evaluate the same factorized subexpressions --
``crossprod(T)``, ``T^T Y``, ``2 * T``, ``rowSums(T ^ 2)`` -- once per
iteration even though the base matrices ``(S, K, R)`` never change across
iterations.  :class:`FactorizedCache` stores the results of such
*join-invariant* subexpressions keyed by their structural expression hash so
the lazy evaluator (:mod:`repro.core.lazy.evaluator`) computes each of them
exactly once per distinct expression.

The cache is deliberately observable: the per-instance hit/miss/eviction/
patched/invalidated counters are backed by :mod:`repro.obs` counter series
(recorded unconditionally, so the long-standing ``cache.hits`` accessors
keep working with observability off), and a gated process-global
``repro_lazy_cache_events_total{event=...}`` aggregate feeds the exporters
when observability is on.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro import obs

#: Gated global aggregate across every cache instance in the process.
_CACHE_EVENTS = obs.REGISTRY.counter(
    "repro_lazy_cache_events_total",
    "FactorizedCache events across all instances",
    labels=("event",),
)
_PATCH_SECONDS = obs.REGISTRY.histogram(
    "repro_delta_cache_patch_seconds",
    "Latency of in-place rank-|delta| patches to cached terms",
)
_PATCH_DECISIONS = obs.REGISTRY.counter(
    "repro_delta_patch_decisions_total",
    "Patch-vs-invalidate decisions taken by the delta path",
    labels=("site", "decision"),
)


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    patched: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class FactorizedCache:
    """An LRU store for evaluated join-invariant subexpressions.

    One cache is attached to each normalized matrix by
    :meth:`~repro.core.normalized_matrix.NormalizedMatrix.lazy` and shared by
    every lazy expression built from that matrix, so results survive across
    iterations, across separately built expression graphs, and across
    ``fit``/``predict`` calls on the same data.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; the least recently used entry is
        evicted first.  The default is generous for the ML workloads, whose
        invariant-expression working set is a handful of nodes.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: key -> CachePatchRule for entries the delta layer can patch in place.
        self._patch_rules: Dict[Hashable, Any] = {}
        # Per-instance series (always=True: they are the source of truth for
        # the public accessors, which predate the obs layer).
        self._hits = obs.Counter(always=True)
        self._misses = obs.Counter(always=True)
        self._evictions = obs.Counter(always=True)
        self._patched = obs.Counter(always=True)
        self._invalidated = obs.Counter(always=True)

    # -- back-compat counter views --------------------------------------------

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def patched(self) -> int:
        return int(self._patched.value)

    @property
    def invalidated(self) -> int:
        return int(self._invalidated.value)

    # -- core protocol -------------------------------------------------------

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(found, value)``, counting a hit or a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses.inc()
            _CACHE_EVENTS.labels(event="miss").inc()
            return False, None
        self._entries.move_to_end(key)
        self._hits.inc()
        _CACHE_EVENTS.labels(event="hit").inc()
        return True, value

    def store(self, key: Hashable, value: Any, patch_rule: Any = None) -> None:
        """Insert *value* under *key*, evicting the LRU entry when full.

        *patch_rule* is an optional
        :class:`~repro.core.delta.CachePatchRule` recorded by the evaluator
        for entries whose shape it recognizes; :meth:`apply_delta` uses it to
        patch the entry in place instead of dropping it.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if patch_rule is not None:
            self._patch_rules[key] = patch_rule
        else:
            self._patch_rules.pop(key, None)
        while len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            self._patch_rules.pop(evicted, None)
            self._evictions.inc()
            _CACHE_EVENTS.labels(event="evict").inc()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- observability -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        """Snapshot the counters (used by tests and benchmark reports)."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, size=len(self._entries),
                          maxsize=self.maxsize, patched=self.patched,
                          invalidated=self.invalidated)

    def clear(self, reset_stats: bool = False) -> None:
        """Drop all entries; optionally reset the counters too."""
        self._entries.clear()
        self._patch_rules.clear()
        if reset_stats:
            self.reset_counters()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters without touching entries."""
        self._hits.reset()
        self._misses.reset()
        self._evictions.reset()
        self._patched.reset()
        self._invalidated.reset()

    # -- incremental maintenance ----------------------------------------------

    def patch_rule_for(self, key: Hashable):
        """The recorded patch rule for *key*, or ``None`` (tests/debugging)."""
        return self._patch_rules.get(key)

    def apply_delta(self, matrix, table_index: int, delta,
                    policy: Optional[object] = None) -> "CacheStats":
        """Absorb a row delta to ``matrix.attributes[table_index]`` in place.

        *matrix* is the **successor** normalized matrix produced by
        ``apply_delta`` on the data matrix (post-delta attributes, same lazy
        identity token as its predecessor, so structural keys keep
        matching).  Three-way treatment of every entry:

        * entries whose key does not involve the matrix's leaf token belong
          to other operands sharing this cache -- kept untouched;
        * entries with a recorded patch rule for this token are **patched**
          via the rank-|Δ| rules of :mod:`repro.core.rewrite.delta` when the
          *policy* (a :class:`~repro.core.planner.delta_policy.DeltaPolicy`)
          rules patching cheaper, and counted in ``patched``;
        * everything else involving the token is **invalidated** -- the
          conservative fallback that keeps correctness independent of how
          exotic the cached expression was.

        Returns the post-delta :meth:`stats` snapshot.
        """
        import numpy as np

        from repro.core.delta import patch_cached_value
        from repro.core.planner.delta_policy import DEFAULT_DELTA_POLICY

        policy = policy or DEFAULT_DELTA_POLICY
        token = getattr(matrix, "_lazy_token", None)
        attribute = matrix.attributes[table_index]
        fan_in = matrix.logical_rows / max(attribute.shape[0], 1)
        record = obs.enabled()
        with obs.span("cache.apply_delta", table_index=table_index):
            for key in list(self._entries):
                if token is None or not _key_involves(key, token):
                    continue
                rule = self._patch_rules.get(key)
                patchable = (
                    rule is not None
                    and getattr(rule, "token", None) == token
                    and policy.should_patch(delta, attribute.shape[0],
                                            width=attribute.shape[1],
                                            fan_in=fan_in)
                )
                if patchable:
                    started = time.perf_counter() if record else 0.0
                    patched = patch_cached_value(rule, self._entries[key],
                                                 matrix, table_index, delta)
                    if isinstance(patched, np.ndarray):
                        patched.setflags(write=False)
                    self._entries[key] = patched
                    self._patched.inc()
                    _CACHE_EVENTS.labels(event="patched").inc()
                    if record:
                        _PATCH_SECONDS.observe(time.perf_counter() - started)
                        _PATCH_DECISIONS.labels(
                            site="lazy-cache", decision="patch").inc()
                else:
                    del self._entries[key]
                    self._patch_rules.pop(key, None)
                    self._invalidated.inc()
                    _CACHE_EVENTS.labels(event="invalidated").inc()
                    if record:
                        _PATCH_DECISIONS.labels(
                            site="lazy-cache", decision="invalidate").inc()
        return self.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactorizedCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions}, "
            f"patched={self.patched}, invalidated={self.invalidated})"
        )


def _key_involves(key, token: str) -> bool:
    """Whether a structural cache key references the leaf identity *token*.

    Keys are nested tuples; leaves contribute ``("leaf", type_name, token)``
    triples (see :class:`~repro.core.lazy.expr.LeafExpr`), so a recursive
    scan for the token string is exact -- no false negatives, and false
    positives would need a content-digest collision with an ``obj-N`` token,
    which cannot happen (the namespaces are disjoint).
    """
    if isinstance(key, tuple):
        return any(_key_involves(part, token) for part in key)
    return key == token
