"""The cross-iteration memoization cache for join-invariant subexpressions.

Iterative ML workloads (Figures 8--10 of the paper: GD linear/logistic
regression, K-Means, GNMF) evaluate the same factorized subexpressions --
``crossprod(T)``, ``T^T Y``, ``2 * T``, ``rowSums(T ^ 2)`` -- once per
iteration even though the base matrices ``(S, K, R)`` never change across
iterations.  :class:`FactorizedCache` stores the results of such
*join-invariant* subexpressions keyed by their structural expression hash so
the lazy evaluator (:mod:`repro.core.lazy.evaluator`) computes each of them
exactly once per distinct expression.

The cache is deliberately small and observable: hit/miss/eviction counters are
first-class so that tests can assert memoization semantics and benchmarks
(``benchmarks/bench_lazy_memoization.py``) can report reuse rates alongside
runtimes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Tuple


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class FactorizedCache:
    """An LRU store for evaluated join-invariant subexpressions.

    One cache is attached to each normalized matrix by
    :meth:`~repro.core.normalized_matrix.NormalizedMatrix.lazy` and shared by
    every lazy expression built from that matrix, so results survive across
    iterations, across separately built expression graphs, and across
    ``fit``/``predict`` calls on the same data.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; the least recently used entry is
        evicted first.  The default is generous for the ML workloads, whose
        invariant-expression working set is a handful of nodes.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core protocol -------------------------------------------------------

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(found, value)``, counting a hit or a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def store(self, key: Hashable, value: Any) -> None:
        """Insert *value* under *key*, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- observability -------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        """Snapshot the counters (used by tests and benchmark reports)."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions, size=len(self._entries),
                          maxsize=self.maxsize)

    def clear(self, reset_stats: bool = False) -> None:
        """Drop all entries; optionally reset the counters too."""
        self._entries.clear()
        if reset_stats:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters without touching entries."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FactorizedCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
