"""Deferred-evaluation expression nodes over normalized (and plain) matrices.

A :class:`LazyExpr` is an immutable DAG node describing one operator of the
paper's Table 1 applied to child expressions: transpose, matrix
multiplication, cross-product, the aggregations (``rowSums`` / ``colSums`` /
``sum``), element-wise scalar arithmetic, element-wise functions, element-wise
matrix arithmetic, and pseudo-inversion.  Building an expression performs no
linear algebra; :meth:`LazyExpr.evaluate` hands the graph to
:mod:`repro.core.lazy.evaluator`, which executes it through the *existing*
operator overloads and rewrite rules, so the factorized execution and the
closure property are inherited unchanged from the eager path.

Two properties drive the cross-iteration memoization:

``invariant``
    True when every leaf under the node is immutable -- the normalized data
    matrix itself or an explicitly pinned :func:`constant`.  Only invariant
    nodes are memoized: a node involving a per-iteration operand (the weight
    vector of a GD loop, say) is recomputed every time, while its invariant
    subexpressions are served from the :class:`~repro.core.lazy.cache.FactorizedCache`.

``key``
    A structural hash of the subtree: the operator name, its parameters and
    the child keys.  Leaves hash by identity token (normalized matrices) or by
    content digest (pinned constants), so expressions over different operands
    never collide -- ``crossprod(2 * T)`` and ``crossprod(3 * T)`` occupy
    distinct cache slots.
"""

from __future__ import annotations

import hashlib
import itertools
import types
from typing import Any, Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.la.types import ensure_2d, is_matrix_like, is_sparse

Scalar = Union[int, float, np.floating, np.integer]

#: Fresh identity tokens for leaves that cannot (or should not) be hashed by
#: content: normalized matrices and mutable per-iteration operands.
_token_counter = itertools.count()


def _is_scalar(value: object) -> bool:
    return isinstance(value, (int, float, np.floating, np.integer)) and not isinstance(value, bool)


def _content_digest(value: Any) -> str:
    """Content hash of a plain dense/sparse matrix, for pinned constants."""
    digest = hashlib.sha1()
    if is_sparse(value):
        csr = value.tocsr()
        digest.update(repr(("csr", csr.shape)).encode())
        for part in (csr.data, csr.indices, csr.indptr):
            digest.update(np.ascontiguousarray(part).tobytes())
    else:
        arr = np.asarray(value)
        digest.update(repr((arr.shape, str(arr.dtype))).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def _fn_token(fn: Callable) -> Optional[str]:
    """Identity token for an element-wise function, or ``None`` if unsafe to cache.

    Tokens are pinned on the function object itself so two distinct functions
    never share a key (same-named lambdas included).  Objects that reject
    attributes (NumPy ufuncs, builtins) fall back to their stable qualified
    name; an unnamed callable we cannot pin gets no token, and the resulting
    node is excluded from memoization rather than risking a collision.
    """
    token = getattr(fn, "__lazy_fn_token__", None)
    if token is not None:
        return token
    try:
        fn.__lazy_fn_token__ = token = f"fn-{next(_token_counter)}"
    except (AttributeError, TypeError):
        # Bound methods of two different instances share module+name, so a
        # name key would collide across instances; refuse to memoize those.
        bound_to = getattr(fn, "__self__", None)
        if bound_to is not None and not isinstance(bound_to, types.ModuleType):
            return None
        name = getattr(fn, "__name__", None)
        if name:
            return f"{getattr(fn, '__module__', '')}.{name}"
        return None
    return token


class LazyExpr:
    """One node of a lazy LA expression DAG.

    Instances are built through the operator overloads / methods below, never
    mutated, and evaluated with :meth:`evaluate`.  Shapes are propagated at
    construction time so malformed expressions fail fast with
    :class:`~repro.exceptions.ShapeError`, before any computation runs.
    """

    # Defer NumPy binary ops to this class (above NormalizedMatrix's 1000 so
    # mixed expressions stay lazy).
    __array_ufunc__ = None
    __array_priority__ = 2000

    def __init__(self, op: str, children: Sequence["LazyExpr"], params: Tuple = (),
                 shape: Optional[Tuple[int, ...]] = None, fn: Optional[Callable] = None):
        self.op = op
        self.children = tuple(children)
        self.params = tuple(params)
        self.fn = fn
        self._shape = shape
        self.invariant = all(child.invariant for child in self.children)
        self._key: Optional[Tuple] = None

    # -- structural hash -----------------------------------------------------

    @property
    def key(self) -> Tuple:
        """Structural hash of the subtree (operator, params, child keys)."""
        if self._key is None:
            self._key = (self.op, self.params, tuple(c.key for c in self.children))
        return self._key

    # -- shape ----------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def ndim(self) -> int:
        return len(self._shape)

    # -- graph construction: transpose and products ---------------------------

    @property
    def T(self) -> "LazyExpr":
        return LazyExpr("transpose", (self,), shape=(self.shape[1], self.shape[0]))

    def transpose(self) -> "LazyExpr":
        return self.T

    def __matmul__(self, other) -> "LazyExpr":
        other = as_operand(other)
        if other is NotImplemented:
            return NotImplemented
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"lazy matmul: inner dimensions do not agree {self.shape} @ {other.shape}"
            )
        return LazyExpr("matmul", (self, other), shape=(self.shape[0], other.shape[1]))

    def __rmatmul__(self, other) -> "LazyExpr":
        other = as_operand(other)
        if other is NotImplemented:
            return NotImplemented
        return other.__matmul__(self)

    def dot(self, other) -> "LazyExpr":
        return self.__matmul__(other)

    def crossprod(self, method: Optional[str] = None) -> "LazyExpr":
        """Lazy ``crossprod(T) = T^T T`` (uses the operand's rewrite when evaluated)."""
        d = self.shape[1]
        return LazyExpr("crossprod", (self,), params=(method,), shape=(d, d))

    def gram(self) -> "LazyExpr":
        return self.crossprod()

    def ginv(self) -> "LazyExpr":
        return LazyExpr("ginv", (self,), shape=(self.shape[1], self.shape[0]))

    # -- graph construction: aggregations --------------------------------------

    def rowsums(self) -> "LazyExpr":
        return LazyExpr("rowsums", (self,), shape=(self.shape[0], 1))

    def colsums(self) -> "LazyExpr":
        return LazyExpr("colsums", (self,), shape=(1, self.shape[1]))

    def total_sum(self) -> "LazyExpr":
        return LazyExpr("total_sum", (self,), shape=())

    def sum(self, axis: Optional[int] = None) -> "LazyExpr":
        if axis is None:
            return self.total_sum()
        if axis == 0:
            return self.colsums()
        if axis == 1:
            return self.rowsums()
        raise ValueError("axis must be None, 0 or 1")

    # -- graph construction: element-wise operators -----------------------------

    def _scalar_node(self, op: str, scalar: Scalar, reverse: bool) -> "LazyExpr":
        return LazyExpr("scalar", (self,), params=(op, float(scalar), reverse),
                        shape=self.shape)

    def _elemwise_node(self, op: str, other, reverse: bool) -> "LazyExpr":
        other = as_operand(other)
        if other is NotImplemented:
            return NotImplemented
        if self.shape != other.shape:
            raise ShapeError(
                f"lazy element-wise op: shape mismatch {self.shape} vs {other.shape}"
            )
        left, right = (other, self) if reverse else (self, other)
        return LazyExpr("elemwise", (left, right), params=(op,), shape=self.shape)

    def _binary(self, op: str, other, reverse: bool):
        if _is_scalar(other):
            return self._scalar_node(op, other, reverse)
        if isinstance(other, LazyExpr) or is_matrix_like(other):
            return self._elemwise_node(op, other, reverse)
        return NotImplemented

    def __mul__(self, other):
        return self._binary("*", other, reverse=False)

    def __rmul__(self, other):
        return self._binary("*", other, reverse=True)

    def __add__(self, other):
        return self._binary("+", other, reverse=False)

    def __radd__(self, other):
        return self._binary("+", other, reverse=True)

    def __sub__(self, other):
        return self._binary("-", other, reverse=False)

    def __rsub__(self, other):
        return self._binary("-", other, reverse=True)

    def __truediv__(self, other):
        return self._binary("/", other, reverse=False)

    def __rtruediv__(self, other):
        return self._binary("/", other, reverse=True)

    def __pow__(self, exponent):
        if _is_scalar(exponent):
            return self._scalar_node("**", exponent, reverse=False)
        return NotImplemented

    def __neg__(self):
        return self._scalar_node("*", -1.0, reverse=False)

    def apply(self, fn: Callable[[np.ndarray], np.ndarray]) -> "LazyExpr":
        """Lazy element-wise scalar function ``f(T)`` (e.g. ``np.exp``)."""
        token = _fn_token(fn)
        node = LazyExpr("apply", (self,),
                        params=(token if token is not None else f"anon-{next(_token_counter)}",),
                        shape=self.shape, fn=fn)
        if token is None:
            node.invariant = False  # unidentifiable callable: never memoize
        return node

    def exp(self) -> "LazyExpr":
        return self.apply(np.exp)

    def log(self) -> "LazyExpr":
        return self.apply(np.log)

    def sqrt(self) -> "LazyExpr":
        return self.apply(np.sqrt)

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, cache=None):
        """Evaluate the graph; see :func:`repro.core.lazy.evaluator.evaluate`."""
        from repro.core.lazy.evaluator import evaluate

        return evaluate(self, cache=cache)

    # -- introspection -----------------------------------------------------------

    def leaves(self):
        """Yield every leaf of the subtree (pre-order, with repeats for DAGs)."""
        if isinstance(self, LeafExpr):
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def num_nodes(self) -> int:
        """Number of nodes in the tree view of the DAG (debugging/tests)."""
        return 1 + sum(child.num_nodes() for child in self.children)

    def describe(self, indent: int = 0) -> str:
        """Multi-line tree rendering of the expression (debugging aid)."""
        pad = "  " * indent
        params = f" params={self.params}" if self.params else ""
        marker = "inv" if self.invariant else "var"
        lines = [f"{pad}{self.op}[{marker}] shape={self.shape}{params}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyExpr(op={self.op!r}, shape={self.shape}, "
            f"invariant={self.invariant}, nodes={self.num_nodes()})"
        )


class LeafExpr(LazyExpr):
    """A leaf wrapping a concrete operand: normalized, plain, or chunked matrix.

    Parameters
    ----------
    value:
        The wrapped operand.  Evaluation returns it as-is; all factorized
        execution happens in the operator nodes above it.
    invariant:
        Whether the operand is immutable for the lifetime of the cache.  Only
        expressions built exclusively from invariant leaves are memoized.
    cache:
        The :class:`~repro.core.lazy.cache.FactorizedCache` that memoized
        results should live in.  Usually attached by
        ``NormalizedMatrix.lazy()``; evaluation picks the first cache found in
        the expression tree.
    token:
        Override for the identity token (tests only).
    """

    def __init__(self, value: Any, invariant: bool, cache=None, token: Optional[str] = None):
        super().__init__("leaf", (), shape=tuple(value.shape))
        self.value = value
        self.cache = cache
        self.invariant = bool(invariant)
        if token is None:
            token = self._default_token(value, self.invariant)
        self.token = token
        self._key = ("leaf", type(value).__name__, token)

    @staticmethod
    def _default_token(value: Any, invariant: bool) -> str:
        if invariant and is_matrix_like(value):
            return _content_digest(value)
        if invariant:
            # Logical matrices (normalized/chunked) are hashed by identity; the
            # token is pinned on the object so repeated .lazy() calls agree.
            existing = getattr(value, "_lazy_token", None)
            if existing is not None:
                return existing
            token = f"obj-{next(_token_counter)}"
            try:
                value._lazy_token = token
            except AttributeError:  # pragma: no cover - exotic operand types
                token = f"id-{id(value)}"
            return token
        return f"var-{next(_token_counter)}"

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        marker = "inv" if self.invariant else "var"
        return f"{pad}leaf[{marker}] {type(self.value).__name__} shape={self.shape}"


def constant(value) -> LeafExpr:
    """Pin a plain matrix/vector as an *invariant* leaf, hashed by content.

    Use this for operands that do not change across iterations (e.g. the
    target vector ``Y`` of a GD loop) so that expressions involving them --
    ``T^T Y``, say -- become memoizable.  The content digest guarantees that
    two different constants never share a cache entry (which is why, unlike
    :class:`LeafExpr`, no token override is offered here).  A non-invariant
    leaf (from :func:`wrap`) is re-pinned as invariant, honouring this
    contract.
    """
    if isinstance(value, LeafExpr):
        if value.invariant:
            return value
        value = value.value
    return LeafExpr(_as_plain_2d(value), invariant=True)


def wrap(value) -> LeafExpr:
    """Wrap a mutable per-iteration operand as a *non-invariant* leaf."""
    return LeafExpr(_as_plain_2d(value), invariant=False)


def _as_plain_2d(value):
    """Coerce a plain operand to 2-D (columns for 1-D vectors, like the eager path)."""
    if not is_matrix_like(value):
        value = np.asarray(value, dtype=np.float64)
    return ensure_2d(value)


def as_operand(value):
    """Coerce an operator argument to a :class:`LazyExpr` (non-invariant default)."""
    if isinstance(value, LazyExpr):
        return value
    if is_matrix_like(value):
        return wrap(value)
    if hasattr(value, "shape") and hasattr(value, "__matmul__"):
        # Normalized / chunked matrices entering someone else's graph.
        return LeafExpr(value, invariant=True)
    return NotImplemented


def as_lazy(data, cache=None) -> LazyExpr:
    """Entry point: the lazy view of a data matrix of any supported family.

    * Already-lazy expressions pass through.
    * Normalized matrices delegate to their ``lazy()`` method, which attaches
      the per-matrix :class:`~repro.core.lazy.cache.FactorizedCache`.
    * Plain dense/sparse matrices become invariant leaves (a data matrix is
      immutable by the same convention as the base matrices) with a fresh
      cache, so the lazy ML paths work on materialized inputs too.
    """
    from repro.core.lazy.cache import FactorizedCache

    if isinstance(data, LazyExpr):
        return data
    if hasattr(data, "lazy"):
        return data.lazy(cache=cache)
    if not is_matrix_like(data) and hasattr(data, "shape") and hasattr(data, "__matmul__"):
        # Logical matrices without a .lazy() method (e.g. ChunkedMatrix) get
        # the same per-object persistent cache as normalized matrices.
        return lazy_view(data, cache=cache)
    data = _as_plain_2d(data)
    # NB: an empty FactorizedCache is falsy (it has __len__), so test identity.
    if cache is None:
        # Private fresh cache: nothing outside this leaf can ever share its
        # entries, so an identity token is equally correct and skips the
        # O(bytes) content digest over the whole data matrix.
        return LeafExpr(data, invariant=True, cache=FactorizedCache(),
                        token=f"mat-{next(_token_counter)}")
    return LeafExpr(data, invariant=True, cache=cache)


def lazy_view(matrix, cache=None) -> LeafExpr:
    """Shared implementation behind ``NormalizedMatrix.lazy()`` and friends.

    Attaches (and reuses) a per-matrix :class:`FactorizedCache` stored on the
    wrapped object, so repeated ``lazy()`` calls on the same matrix share
    memoized results.
    """
    from repro.core.lazy.cache import FactorizedCache

    if cache is None:
        cache = getattr(matrix, "_lazy_cache", None)
        if cache is None:
            cache = FactorizedCache()
    try:
        matrix._lazy_cache = cache
    except AttributeError:  # pragma: no cover - exotic operand types
        pass
    return LeafExpr(matrix, invariant=True, cache=cache)
