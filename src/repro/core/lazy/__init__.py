"""Lazy factorized linear algebra with cross-iteration memoization.

This package adds a small deferred-evaluation layer on top of the normalized
matrices:

* :class:`~repro.core.lazy.expr.LazyExpr` -- immutable DAG nodes for the
  paper's Table-1 operator set, built through normal Python operators from
  ``NormalizedMatrix.lazy()`` / ``MNNormalizedMatrix.lazy()`` (or
  :func:`as_lazy` for plain matrices).
* :class:`~repro.core.lazy.cache.FactorizedCache` -- a per-matrix LRU store
  memoizing the results of *join-invariant* subexpressions (those whose leaves
  are all immutable base matrices or pinned :func:`constant` operands), with
  hit/miss counters exposed for tests and benchmarks.
* :func:`~repro.core.lazy.evaluator.evaluate` -- executes a graph through the
  existing operator overloads and rewrite rules, so factorized execution,
  backend neutrality (dense / sparse / chunked) and the closure property are
  inherited unchanged from the eager path.

The ML algorithms in :mod:`repro.ml` accept ``engine="lazy"`` to drive their
inner loops through this layer, which computes join-invariant terms
(``crossprod(T)``, ``T^T Y``, ``2 * T``, ``rowSums(T ^ 2)``, ...) once and
reuses them across iterations.
"""

from repro.core.lazy.cache import CacheStats, FactorizedCache
from repro.core.lazy.expr import (
    LazyExpr,
    LeafExpr,
    as_lazy,
    constant,
    lazy_view,
    wrap,
)
from repro.core.lazy.evaluator import evaluate, find_cache

__all__ = [
    "CacheStats",
    "FactorizedCache",
    "LazyExpr",
    "LeafExpr",
    "as_lazy",
    "constant",
    "lazy_view",
    "wrap",
    "evaluate",
    "find_cache",
]
