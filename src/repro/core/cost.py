"""Arithmetic-operation cost models for standard vs. factorized operators.

Paper reference: Section 3.4 (Table 3) and Appendix F (Table 11).  The models
count multiplications and additions as a function of the base-table dimensions
``(n_S, d_S, n_R, d_R)`` and, where relevant, the width of the multiplied
matrix.  They drive two things:

* the analytical speed-up curves (``asymptotic_speedup``) used by the Table 3
  validation benchmark, and
* intuition for the heuristic decision rule in :mod:`repro.core.decision`
  (the paper deliberately does *not* use the cost model at runtime, to stay
  system-agnostic; we keep the same split).

For multi-join star schemas the per-join costs simply add up, which is how the
``CostModel`` convenience class generalizes the two-table formulas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class Operator(enum.Enum):
    """Operators with published cost expressions (Table 3 and Table 11)."""

    SCALAR = "scalar"
    AGGREGATION = "aggregation"
    LMM = "lmm"
    RMM = "rmm"
    CROSSPROD = "crossprod"
    PSEUDOINVERSE = "pseudoinverse"


@dataclass(frozen=True)
class OperatorCost:
    """Arithmetic-operation counts for the standard and factorized versions."""

    operator: Operator
    standard: float
    factorized: float

    @property
    def speedup(self) -> float:
        """Predicted speed-up = standard cost / factorized cost."""
        if self.factorized <= 0:
            return float("inf")
        return self.standard / self.factorized


@dataclass(frozen=True)
class Dimensions:
    """Base-table dimensions of a single PK-FK join (Table 2 notation)."""

    n_s: int
    d_s: int
    n_r: int
    d_r: int

    @property
    def d(self) -> int:
        return self.d_s + self.d_r

    @property
    def tuple_ratio(self) -> float:
        return self.n_s / self.n_r if self.n_r else float("inf")

    @property
    def feature_ratio(self) -> float:
        return self.d_r / self.d_s if self.d_s else float("inf")


def standard_cost(operator: Operator, dims: Dimensions, x_cols: int = 1) -> float:
    """Arithmetic operations of the standard (materialized) operator (Table 3)."""
    n_s, d_s, n_r, d_r = dims.n_s, dims.d_s, dims.n_r, dims.d_r
    d = d_s + d_r
    if operator in (Operator.SCALAR, Operator.AGGREGATION):
        return n_s * d
    if operator is Operator.LMM:
        return x_cols * n_s * d
    if operator is Operator.RMM:
        return x_cols * n_s * d
    if operator is Operator.CROSSPROD:
        return 0.5 * d * d * n_s
    if operator is Operator.PSEUDOINVERSE:
        if n_s > d:
            return 7 * n_s * d * d + 20 * d ** 3
        return 7 * n_s * n_s * d + 20 * n_s ** 3
    raise ValueError(f"no cost model for operator {operator}")


def factorized_cost(operator: Operator, dims: Dimensions, x_cols: int = 1) -> float:
    """Arithmetic operations of the factorized operator (Table 3 / Table 11)."""
    n_s, d_s, n_r, d_r = dims.n_s, dims.d_s, dims.n_r, dims.d_r
    d = d_s + d_r
    base = n_s * d_s + n_r * d_r
    if operator in (Operator.SCALAR, Operator.AGGREGATION):
        return base
    if operator is Operator.LMM:
        return x_cols * base
    if operator is Operator.RMM:
        return x_cols * base
    if operator is Operator.CROSSPROD:
        return 0.5 * d_s * d_s * n_s + 0.5 * d_r * d_r * n_r + d_s * d_r * n_r
    if operator is Operator.PSEUDOINVERSE:
        crossprod = factorized_cost(Operator.CROSSPROD, dims)
        if n_s > d:
            return 27 * d ** 3 + crossprod + d * base
        return 27 * n_s ** 3 + 0.5 * n_s * n_s * d_s + 0.5 * n_r * n_r * d_r + n_s * base
    raise ValueError(f"no cost model for operator {operator}")


def operator_cost(operator: Operator, dims: Dimensions, x_cols: int = 1) -> OperatorCost:
    """Bundle the standard and factorized counts for one operator."""
    return OperatorCost(
        operator=operator,
        standard=standard_cost(operator, dims, x_cols),
        factorized=factorized_cost(operator, dims, x_cols),
    )


def asymptotic_speedup(operator: Operator, tuple_ratio: float, feature_ratio: float) -> float:
    """Limit speed-ups of Table 11 as TR or FR grows.

    For the linear-cost operators the speed-up converges to ``1 + FR`` as the
    tuple ratio grows and to ``TR`` as the feature ratio grows; for
    cross-product the TR limit is ``(1 + FR)^2``.
    """
    if operator is Operator.CROSSPROD:
        return min((1.0 + feature_ratio) ** 2, _linear_speedup(tuple_ratio, feature_ratio) ** 2)
    return _linear_speedup(tuple_ratio, feature_ratio)


def _linear_speedup(tuple_ratio: float, feature_ratio: float) -> float:
    """Exact redundancy ratio for linear-cost operators: size(T) / size(S, R)."""
    denominator = 1.0 + feature_ratio / tuple_ratio
    if denominator <= 0:
        return float("inf")
    return (1.0 + feature_ratio) / denominator


class CostModel:
    """Cost model for a (possibly multi-join) normalized matrix.

    The per-join two-table formulas of Table 3 extend additively: the
    factorized cost of a star schema is the entity-table term plus one
    attribute-table term per join.
    """

    def __init__(self, n_s: int, d_s: int, attribute_dims: Dict[str, tuple] | list):
        if isinstance(attribute_dims, dict):
            attribute_dims = list(attribute_dims.values())
        self.n_s = int(n_s)
        self.d_s = int(d_s)
        self.attribute_dims = [(int(n), int(d)) for n, d in attribute_dims]

    @property
    def total_features(self) -> int:
        return self.d_s + sum(d for _, d in self.attribute_dims)

    def scalar(self) -> OperatorCost:
        standard = self.n_s * self.total_features
        factorized = self.n_s * self.d_s + sum(n * d for n, d in self.attribute_dims)
        return OperatorCost(Operator.SCALAR, standard, factorized)

    def lmm(self, x_cols: int = 1) -> OperatorCost:
        base = self.scalar()
        return OperatorCost(Operator.LMM, x_cols * base.standard, x_cols * base.factorized)

    def rmm(self, x_rows: int = 1) -> OperatorCost:
        base = self.scalar()
        return OperatorCost(Operator.RMM, x_rows * base.standard, x_rows * base.factorized)

    def crossprod(self) -> OperatorCost:
        d = self.total_features
        standard = 0.5 * d * d * self.n_s
        factorized = 0.5 * self.d_s * self.d_s * self.n_s
        for n_r, d_r in self.attribute_dims:
            factorized += 0.5 * d_r * d_r * n_r + self.d_s * d_r * n_r
        return OperatorCost(Operator.CROSSPROD, standard, factorized)

    def pseudoinverse(self) -> OperatorCost:
        """Table 11 pseudo-inverse costs, generalized additively to star schemas.

        Both sides reduce ``ginv`` to a cross-product plus a (transposed)
        LMM/RMM pass, so the multi-join generalization reuses the additive
        :meth:`scalar` base term exactly like the other operators.
        """
        n_s, d = self.n_s, self.total_features
        base = self.scalar().factorized
        if n_s > d:
            standard = 7 * n_s * d * d + 20 * d ** 3
            factorized = 27 * d ** 3 + self.crossprod().factorized + d * base
        else:
            standard = 7 * n_s * n_s * d + 20 * n_s ** 3
            factorized = 27 * n_s ** 3 + 0.5 * n_s * n_s * self.d_s + n_s * base
            for n_r, d_r in self.attribute_dims:
                factorized += 0.5 * n_r * n_r * d_r
        return OperatorCost(Operator.PSEUDOINVERSE, standard, factorized)

    def cost(self, operator: Operator, x_cols: int = 1) -> OperatorCost:
        """Dispatch to the per-operator model (the planner's entry point)."""
        if operator in (Operator.SCALAR, Operator.AGGREGATION):
            base = self.scalar()
            return OperatorCost(operator, base.standard, base.factorized)
        if operator is Operator.LMM:
            return self.lmm(x_cols)
        if operator is Operator.RMM:
            return self.rmm(x_cols)
        if operator is Operator.CROSSPROD:
            return self.crossprod()
        if operator is Operator.PSEUDOINVERSE:
            return self.pseudoinverse()
        raise ValueError(f"no cost model for operator {operator}")

    def summary(self) -> Dict[str, float]:
        """Predicted speed-ups for each modelled operator (used in reports)."""
        return {
            "scalar": self.scalar().speedup,
            "lmm": self.lmm().speedup,
            "rmm": self.rmm().speedup,
            "crossprod": self.crossprod().speedup,
        }
