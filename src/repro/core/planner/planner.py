"""The cost-based adaptive execution planner.

Where the paper stops at a static two-threshold heuristic (Section 5.1), the
repo now has a whole lattice of execution choices -- materialized vs.
factorized layout, eager vs. lazy engine, serial vs. sharded (vs. chunked)
backends, shard counts -- and the profitable corner moves with the workload.
:class:`Planner` closes that loop: it combines the paper's Table 3 / Table 11
arithmetic models (:class:`~repro.core.cost.CostModel`) with the machine
calibration constants (:mod:`repro.core.planner.calibration`) and a
:class:`~repro.core.planner.workload.WorkloadDescriptor`, scores every
candidate plan in predicted wall-clock seconds, and returns an explainable
:class:`~repro.core.planner.plan.Plan`.

The predicted cost of a candidate is a sum of four terms:

* **arithmetic** -- operator flops (standard or factorized counts) divided by
  the calibrated throughput, scaled by the shard-parallel speedup model
  ``1 + (workers - 1) * parallel_efficiency``;
* **dispatch** -- per-primitive-call overhead: factorized rewrites issue
  roughly ``2 + 2q`` dense primitive calls plus ``q`` sparse indicator
  scatters per operator (q = number of joins); the scatter pass and the block
  assembly are additionally priced per row at a calibrated rate, since
  ``K @ (R X)`` behaves nothing like a dense matmul.  Sharded execution
  multiplies every call by the shard count, chunked by the chunk count;
* **engine** -- the lazy evaluator's per-node bookkeeping (invariant
  subexpressions are priced once plus a cache-hit per iteration);
* **one-time** -- materialization of the join output when a materialized plan
  is chosen for normalized input, and shard-construction setup.

Only work that differs between candidates is priced: per-iteration
regular-matrix work common to all of them (e.g. K-Means' assignment step)
cancels in the comparison, while engine-specific regular work -- the ``d x d``
gram-vector product lazy GD performs *instead of* the hoisted data passes --
is charged via :attr:`WorkloadDescriptor.lazy_gram_applies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.exceptions import PlanningError
from repro.core.cost import CostModel, Operator
from repro.core.mn_matrix import MNNormalizedMatrix
from repro.core.normalized_matrix import NormalizedMatrix
from repro.core.planner import memory as memory_model
from repro.core.planner.calibration import CalibrationProfile, get_profile
from repro.core.planner.chains import plan_chain_summaries
from repro.core.planner.plan import Plan, ScoredCandidate
from repro.core.planner.workload import WorkloadDescriptor
from repro.la.types import is_sparse

#: Estimated lazy-graph nodes evaluated per Table-1 operator (leaf + op +
#: result handling); only used to price the lazy engine's bookkeeping.
_NODES_PER_OP = 3.0

_PLANS_TOTAL = obs.REGISTRY.counter(
    "repro_planner_plans_total",
    "Plans produced, by workload, chosen engine/backend and calibration source",
    labels=("workload", "engine", "backend", "calibration"),
)
_CANDIDATES_SCORED = obs.REGISTRY.counter(
    "repro_planner_candidates_scored_total",
    "Candidate strategies scored across all planning calls",
    labels=("workload",),
)
_CANDIDATE_SECONDS = obs.REGISTRY.gauge(
    "repro_planner_candidate_predicted_seconds",
    "Predicted wall-clock seconds per candidate of the most recent plan",
    labels=("workload", "candidate"),
)


@dataclass(frozen=True)
class _DataProfile:
    """What the planner needs to know about the operand being planned for."""

    kind: str  # "normalized", "mn-normalized", "sharded-normalized",
    #            "sharded", "chunked" or "plain"
    model: CostModel
    sparse: bool
    n_rows: int
    n_cols: int
    num_joins: int
    can_factorize: bool         # layout is still a free choice
    fixed_factorized: bool = False  # layout is fixed *factorized* (pre-sharded)
    partitions: int = 1         # row partitions of a chunked/sharded operand
    parallel_partitions: bool = False  # partitions execute on a parallel pool
    tuple_ratio: Optional[float] = None
    feature_ratio: Optional[float] = None
    redundancy_ratio: Optional[float] = None
    #: resident bytes of the materialized / factorized representations plus
    #: the per-pass factorized working set (the planner's memory dimension;
    #: see repro.core.planner.memory).
    materialized_bytes: int = 0
    factorized_bytes: int = 0
    stream_bytes: int = 0

    @property
    def layouts(self) -> tuple:
        """The layout axis of the candidate space for this operand."""
        if self.can_factorize:
            return (True, False)
        return (True,) if self.fixed_factorized else (False,)


def describe_data(data) -> _DataProfile:
    """Build the planner's view of a data matrix of any supported family."""
    from repro.core.lazy.expr import LazyExpr, LeafExpr

    if isinstance(data, LeafExpr):
        # A lazy view (TN.lazy()): describe the wrapped operand, not the
        # graph node -- otherwise a lazy-wrapped normalized matrix would be
        # misclassified as a fixed-layout plain matrix.
        data = data.value
    elif isinstance(data, LazyExpr):
        # A composite graph only has a concrete operand family once
        # evaluated (a data-sized computation; the ML auto path evaluates
        # before planning for exactly this reason and reuses the result).
        data = data.evaluate()
    from repro.core.shard import (
        ShardedMatrix,
        ShardedNormalizedMatrix,
        TransposedShardedView,
    )
    from repro.la.chunked import ChunkedMatrix, TransposedChunkedView

    if isinstance(data, (TransposedChunkedView, TransposedShardedView)):
        data = data._parent
    mem = dict(
        materialized_bytes=memory_model.materialized_nbytes(data),
        factorized_bytes=memory_model.factorized_nbytes(data),
        stream_bytes=memory_model.entity_stream_nbytes(data),
    )
    if isinstance(data, ShardedMatrix):
        # A plain matrix stored row-sharded: materialized layout and shard
        # fan-out are fixed; only the engine is free, priced at the operand's
        # own partition count (and pool parallelism).
        n_rows, n_cols = int(data.shape[0]), int(data.shape[1])
        pool_name = getattr(getattr(data.executor, "pool", None), "name", "serial")
        return _DataProfile(
            kind="sharded", model=CostModel(n_rows, n_cols, []),
            sparse=any(is_sparse(s) for s in data.shards),
            n_rows=n_rows, n_cols=n_cols, num_joins=0,
            can_factorize=False, partitions=data.num_shards,
            parallel_partitions=pool_name != "serial", **mem,
        )
    if isinstance(data, ChunkedMatrix):
        # Chunked operands hold the already-materialized matrix row-partitioned:
        # the layout and the chunk fan-out are fixed, only the engine is free,
        # and every primitive call is multiplied by the chunk count.
        n_rows, n_cols = int(data.shape[0]), int(data.shape[1])
        return _DataProfile(
            kind="chunked", model=CostModel(n_rows, n_cols, []),
            sparse=any(is_sparse(c) for c in data.chunks),
            n_rows=n_rows, n_cols=n_cols, num_joins=0,
            can_factorize=False, partitions=data.num_chunks, **mem,
        )
    if isinstance(data, ShardedNormalizedMatrix):
        # Pre-sharded factorized operand: the layout and shard count are
        # fixed by the user, only the engine remains to be chosen -- but the
        # operator costs must still be the *factorized* ones.  The pieces
        # share the attribute matrices, so the first piece carries the
        # per-join dimensions; entity rows are summed across shards.
        piece = data.pieces[0]
        d_s = piece.entity_width if isinstance(piece, NormalizedMatrix) else 0
        attribute_dims = [(r.shape[0], r.shape[1]) for r in piece.attributes]
        n_rows = data.logical_rows
        bases = list(piece.attributes)
        if isinstance(piece, NormalizedMatrix) and piece.entity is not None:
            bases.append(piece.entity)
        pool_name = getattr(getattr(data.executor, "pool", None), "name", "serial")
        return _DataProfile(
            kind="sharded-normalized",
            model=CostModel(n_rows, d_s, attribute_dims),
            sparse=any(is_sparse(b) for b in bases),
            n_rows=n_rows, n_cols=piece.shape[1],
            num_joins=len(attribute_dims), can_factorize=False,
            fixed_factorized=True, partitions=data.num_shards,
            parallel_partitions=pool_name != "serial", **mem,
        )
    if isinstance(data, NormalizedMatrix):
        plain = data.T if data.transposed else data
        attribute_dims = [(r.shape[0], r.shape[1]) for r in plain.attributes]
        model = CostModel(plain.logical_rows, plain.entity_width, attribute_dims)
        bases = ([plain.entity] if plain.entity is not None else []) + list(plain.attributes)
        return _DataProfile(
            kind="normalized", model=model,
            sparse=any(is_sparse(b) for b in bases),
            n_rows=plain.logical_rows, n_cols=plain.logical_cols,
            num_joins=plain.num_joins, can_factorize=True,
            tuple_ratio=plain.tuple_ratio, feature_ratio=plain.feature_ratio,
            redundancy_ratio=plain.redundancy_ratio(), **mem,
        )
    if isinstance(data, MNNormalizedMatrix):
        plain = data.T if data.transposed else data
        attribute_dims = [(r.shape[0], r.shape[1]) for r in plain.attributes]
        model = CostModel(plain.logical_rows, 0, attribute_dims)
        return _DataProfile(
            kind="mn-normalized", model=model,
            sparse=any(is_sparse(r) for r in plain.attributes),
            n_rows=plain.logical_rows, n_cols=plain.logical_cols,
            num_joins=plain.num_components, can_factorize=True,
            redundancy_ratio=plain.redundancy_ratio(), **mem,
        )
    # Plain dense/sparse/chunked/sharded operands: the layout is fixed, only
    # the engine and the shard count remain to be chosen.
    n_rows, n_cols = int(data.shape[0]), int(data.shape[1])
    return _DataProfile(
        kind="plain", model=CostModel(n_rows, n_cols, []),
        sparse=is_sparse(data), n_rows=n_rows, n_cols=n_cols,
        num_joins=0, can_factorize=False, **mem,
    )


class Planner:
    """Scores candidate execution plans and returns the cheapest as a :class:`Plan`.

    Parameters
    ----------
    calibration:
        A :class:`CalibrationProfile`; defaults to :func:`get_profile` (disk
        cache or one-time probe, ``REPRO_CALIBRATION=default`` for constants).
    shard_candidates:
        Shard counts to consider beyond serial execution.  Defaults to
        ``(2, 4, cpu_count)`` filtered to the machine.
    include_chunked:
        Also score the out-of-core chunked backend (off by default: the ML
        ``engine="auto"`` surface cannot dispatch to it, but
        ``NormalizedMatrix.plan()`` reports it for completeness).
    chunk_rows:
        Chunk size used when pricing chunked candidates.
    include_fused:
        Also score a serial factorized candidate executed through the
        compiled fused kernel set (:mod:`repro.la.kernels`).  ``None`` (the
        default) resolves to whether the compiled set is importable -- the
        ``[kernels]`` extra -- so plans never recommend a backend the process
        cannot run.  The NumPy kernel set serves every rewrite regardless;
        the ``fused`` candidate exists to price compiled execution against
        the primitive-chain candidates.
    charge_materialization:
        Whether a materialized plan for normalized input pays the one-time
        join-materialization cost (the honest cold-start default).  The ML
        ``engine="auto"`` path disables it: the estimators memoize the
        materialized view per data matrix, so across repeated fits the
        conversion is a one-time setup (like the calibration probe itself)
        and the plan should optimize the steady state.
    memory_budget:
        Optional per-pass working-set budget in bytes -- the planner's memory
        dimension (see :mod:`repro.core.planner.memory`).  The budget bounds
        what one data pass streams through beyond the always-resident
        attribute tables: candidates whose working set exceeds it (a
        materialized/chunked plan whose dense join output does not fit, a
        full-pass factorized plan whose entity + indicator matrices do not
        fit) are infeasible and dropped, and a ``"streamed"`` candidate --
        mini-batch execution through
        :class:`~repro.core.stream.NormalizedBatchIterator` at the batch size
        :func:`~repro.core.planner.memory.batch_rows_for_budget` derives from
        the budget -- is scored instead.  When the materialized footprint
        exceeds the budget the streamed (or full-pass factorized) plan is all
        that remains, which is how ``engine="auto"`` routes larger-than-budget
        fits to the estimators' mini-batch paths.
    """

    def __init__(self, calibration: Optional[CalibrationProfile] = None,
                 shard_candidates: Optional[Sequence[int]] = None,
                 include_chunked: bool = False, chunk_rows: int = 4096,
                 include_fused: Optional[bool] = None,
                 charge_materialization: bool = True,
                 memory_budget: Optional[float] = None):
        from repro.la import kernels

        self.calibration = calibration
        self.include_chunked = bool(include_chunked)
        self.include_fused = (kernels.compiled_available() if include_fused is None
                              else bool(include_fused))
        self.chunk_rows = int(chunk_rows)
        self.charge_materialization = bool(charge_materialization)
        if memory_budget is not None and memory_budget <= 0:
            raise ValueError("memory_budget must be positive (bytes)")
        self.memory_budget = None if memory_budget is None else float(memory_budget)
        if shard_candidates is None:
            from repro.la.parallel import default_workers

            cores = default_workers()
            shard_candidates = sorted({n for n in (2, 4, cores) if 1 < n <= cores})
        self.shard_candidates = tuple(int(n) for n in shard_candidates)

    # -- public API -----------------------------------------------------------

    def plan(self, data, workload: Optional[WorkloadDescriptor] = None,
             n_shards: Optional[int] = None) -> Plan:
        """Score all candidates for *data* under *workload* and rank them.

        ``n_shards`` restricts the shard axis to one explicit value (the ML
        estimators pass a user-supplied ``n_jobs`` through here, leaving the
        planner to choose only the layout and the engine).
        """
        workload = workload or WorkloadDescriptor.generic()
        with obs.span("planner.plan", workload=workload.name):
            profile = self.calibration or get_profile()
            data_profile = describe_data(data)
            candidates = self._score_all(data_profile, workload, profile, n_shards)
            summary = self._summary(data_profile)
            chains = plan_chain_summaries(data, workload)
            if chains:
                summary["chains"] = chains
            plan = Plan(
                candidates=tuple(candidates),
                workload=workload,
                data_summary=summary,
                calibration=profile,
                threshold_rule_choice=self._threshold_choice(data_profile),
            )
            if obs.enabled():
                self._record_plan_metrics(plan)
        return plan

    @staticmethod
    def _record_plan_metrics(plan: Plan) -> None:
        """Publish the chosen plan and its candidate scores to the registry."""
        chosen = plan.chosen
        _PLANS_TOTAL.labels(
            workload=plan.workload.name,
            engine=chosen.engine,
            backend=chosen.backend,
            calibration=plan.calibration.source,
        ).inc()
        _CANDIDATES_SCORED.labels(workload=plan.workload.name).inc(
            len(plan.candidates)
        )
        for candidate in plan.candidates:
            _CANDIDATE_SECONDS.labels(
                workload=plan.workload.name, candidate=candidate.label
            ).set(candidate.predicted_seconds)
        obs.annotate(
            chosen=chosen.label,
            predicted_seconds=chosen.predicted_seconds,
            candidates=len(plan.candidates),
            calibration=plan.calibration.source,
        )

    # -- candidate enumeration and scoring ------------------------------------

    def _score_all(self, dp: _DataProfile, workload: WorkloadDescriptor,
                   profile: CalibrationProfile, n_shards: Optional[int]
                   ) -> List[ScoredCandidate]:
        layouts = dp.layouts
        if n_shards is not None and n_shards > 1:
            # Clamp like the shard views themselves do: a 3-row matrix never
            # has more than 3 non-empty shards, whatever n_jobs says.
            shard_axis: Tuple[int, ...] = (max(1, min(int(n_shards), dp.n_rows)),)
        elif n_shards is not None:
            shard_axis = (1,)
        else:
            shard_axis = (1,) + tuple(n for n in self.shard_candidates if n <= dp.n_rows)
        if dp.kind == "chunked":
            shard_axis = (1,)  # chunked operands cannot be re-sharded
        elif dp.kind in ("sharded-normalized", "sharded"):
            # The operand's shard fan-out is fixed by the user; price (and
            # report) every candidate at that fan-out.
            shard_axis = (dp.partitions,)
        serial_backend = "chunked" if dp.kind == "chunked" else (
            "sparse" if dp.sparse else "dense")

        candidates = []
        for factorized in layouts:
            for engine in ("eager", "lazy"):
                for shards in shard_axis:
                    backend = serial_backend if shards == 1 else "sharded"
                    candidates.append(self._score(
                        dp, workload, profile, factorized, engine, backend, shards))
                if self.include_chunked and dp.kind != "chunked" \
                        and (n_shards is None or n_shards == 1):
                    candidates.append(self._score(
                        dp, workload, profile, factorized, engine, "chunked", 1))
            # Fused candidate: serial factorized execution through the
            # compiled kernel set.  Only meaningful where the kernels apply
            # (factorized layout over at least one join) and only scored when
            # the compiled set can actually run (see include_fused).
            if self.include_fused and factorized and dp.num_joins \
                    and dp.kind in ("normalized", "mn-normalized") \
                    and (n_shards is None or n_shards == 1):
                candidates.append(self._score(
                    dp, workload, profile, True, "eager", "fused", 1))

        # Memory dimension: drop candidates whose resident footprint exceeds
        # the budget and add the streamed (mini-batch) candidate for
        # factorized-capable operands.  The streamed candidate is always
        # feasible by construction -- its batch size is derived from the same
        # budget -- so a larger-than-budget matrix still gets a plan.
        if self.memory_budget is not None:
            feasible = [c for c in candidates if self._fits_budget(dp, c)]
            streamed = []
            if dp.kind in ("normalized", "mn-normalized", "plain"):
                # Streamed mini-batch execution: the per-pass working set is
                # one batch's slice, so it is feasible under any budget.  The
                # layout follows the operand (factorized batches for
                # normalized input, row slices for plain input); chunked and
                # pre-sharded operands have no row-selection surface.
                batch_rows = memory_model.batch_rows_for_dims(
                    dp.n_rows, dp.n_cols, dp.num_joins, self.memory_budget)
                streamed.append(self._score(
                    dp, workload, profile, dp.can_factorize, "eager", "streamed", 1,
                    batch_rows=batch_rows))
            candidates = feasible + streamed
            if not candidates:
                raise PlanningError(
                    f"no execution plan fits the memory budget "
                    f"({self.memory_budget:.0f} bytes): materialized passes need "
                    f"{dp.materialized_bytes} bytes, factorized passes need "
                    f"{dp.stream_bytes} bytes, and a "
                    f"{dp.kind} operand cannot be streamed"
                )

        # On exact cost ties prefer: fewer shards, the eager engine, the
        # input's own layout (no conversion risk), and the simplest backend
        # family (in-memory serial before sharded before out-of-core chunked
        # -- never recommend wrapping a small matrix in the chunked backend
        # for a tie's worth of benefit).
        backend_rank = {"dense": 0, "sparse": 0, "fused": 1, "sharded": 1,
                        "streamed": 2, "chunked": 3}
        input_factorized = dp.can_factorize or dp.fixed_factorized

        def sort_key(c: ScoredCandidate):
            return (
                c.predicted_seconds,
                c.n_shards,
                0 if c.engine == "eager" else 1,
                0 if c.factorized == input_factorized else 1,
                backend_rank.get(c.backend, 3),
            )

        candidates.sort(key=sort_key)
        return candidates

    def _fits_budget(self, dp: _DataProfile, candidate: ScoredCandidate) -> bool:
        """Whether a candidate's per-pass working set fits the memory budget.

        The budget bounds what one data pass streams through *beyond the
        always-resident attribute tables*: a materialized pass touches the
        dense ``n_S x d`` join output (the repo's chunked backend holds its
        row chunks in memory, so it is *not* an escape hatch from the budget),
        a factorized pass touches the entity and indicator matrices, and the
        streamed backend touches one mini-batch slice at a time -- which is
        why it is the fallback that always fits.
        """
        budget = self.memory_budget
        if budget is None:
            return True
        footprint = dp.stream_bytes if candidate.factorized else dp.materialized_bytes
        return footprint <= budget

    def _score(self, dp: _DataProfile, workload: WorkloadDescriptor,
               profile: CalibrationProfile, factorized: bool, engine: str,
               backend: str, shards: int,
               batch_rows: Optional[int] = None) -> ScoredCandidate:
        uses = workload.uses_for_engine(engine)
        iterations = workload.iterations

        # Arithmetic: Table 3 / Table 11 counts over the calibrated throughput,
        # plus the row-wise overhead passes factorized execution performs on
        # top of the base-matrix products: the indicator scatters (K @ (R X))
        # and the block assembly of the partial results -- about (q + 1)
        # extra n_S-row touches per operator (validated against the measured
        # sweep grid), priced at the calibrated scatter rate.  This term is
        # what makes high-TR / low-FR schemas (big n_S, little arithmetic
        # saved) correctly favour the materialized plan even though the raw
        # flop counts say otherwise.
        flops = 0.0
        total_ops = 0.0
        overhead_rows = 0.0
        scatter_calls = 0.0
        for use in uses:
            count = workload.total_count(use)
            cost = dp.model.cost(use.operator, use.x_cols)
            flops += count * (cost.factorized if factorized else cost.standard)
            total_ops += count
            if factorized and dp.num_joins:
                width = use.x_cols if use.operator in (Operator.LMM, Operator.RMM) else 1
                overhead_rows += count * (dp.num_joins + 1) * dp.n_rows * width
                scatter_calls += count * dp.num_joins
        throughput = profile.sparse_flops if dp.sparse else profile.dense_flops
        # The fused kernels replace the per-row indicator scatter passes
        # (K @ (R X) + block assembly) with one gather loop over memoized
        # codes, so their overhead runs at the calibrated fused gather rate
        # instead of the primitive-chain scatter rate.
        overhead_rate = (profile.fused_gather_rows if backend == "fused"
                         else profile.indicator_flops)
        speedup = 1.0
        fixed_partitioning = dp.kind in ("sharded-normalized", "sharded")
        if shards > 1 and (not fixed_partitioning or dp.parallel_partitions):
            from repro.la.parallel import default_workers

            workers = min(shards, default_workers())
            speedup = 1.0 + (workers - 1) * profile.parallel_efficiency
        # The scatter/assembly passes fan out across shards exactly like the
        # base-matrix products, so both terms share the parallel speedup.
        arithmetic_s = (flops / throughput + overhead_rows / overhead_rate) / speedup
        if engine == "lazy" and workload.lazy_gram_applies:
            # Per-iteration gram-vector products of the hoisted lazy form
            # (e.g. lazy GD's ``gram @ w``): regular d x d arithmetic that the
            # eager candidates do NOT perform, so it cannot cancel and must be
            # priced -- it is what caps lazy's win on wide matrices.
            arithmetic_s += (iterations * workload.lazy_gram_applies
                             * float(dp.n_cols) ** 2 / profile.dense_flops)

        # Dispatch: primitive calls per operator, multiplied by the fan-out.
        # A factorized operator issues ~2 dense calls plus, per join, two
        # small base-matrix calls and one sparse indicator scatter.  The
        # fused backend collapses each join's primitive chain into a single
        # kernel dispatch over memoized indicator codes, so it pays one call
        # per join (plus the entity term) and no sparse scatter calls.
        if backend == "fused":
            calls_per_op = 1.0 + float(dp.num_joins)
            scatter_calls = 0.0
        else:
            calls_per_op = (2.0 + 2.0 * max(dp.num_joins, 1)) if factorized else 1.0
        fanout = float(shards)
        if backend == "streamed":
            # Every operator is executed once per mini-batch.
            fanout = float(max(
                memory_model.streamed_batch_count(dp.n_rows, batch_rows or dp.n_rows), 1))
        if backend == "chunked":
            if dp.kind == "chunked":  # a real chunked operand: its own fan-out
                fanout = float(dp.partitions)
            else:  # hypothetical chunked candidate for in-memory input
                from repro.la.backend import ChunkedBackend

                fanout = float(ChunkedBackend(self.chunk_rows).partitions_for(dp.n_rows))
        dispatch_s = total_ops * calls_per_op * fanout * profile.dispatch_overhead_s
        dispatch_s += scatter_calls * fanout * profile.sparse_dispatch_overhead_s
        if shards > 1:
            dispatch_s += total_ops * shards * profile.shard_overhead_s
        if backend == "streamed":
            # Cutting a factorized batch slices the entity plus each indicator
            # matrix once per batch per pass -- priced at the sparse dispatch
            # rate like any other indicator touch.
            dispatch_s += (fanout * workload.iterations * (dp.num_joins + 1)
                           * profile.sparse_dispatch_overhead_s)

        # Engine: lazy bookkeeping.  Per-iteration nodes are re-evaluated each
        # pass; invariant nodes (per_iteration=False) are built once and then
        # touched as one cache hit per later iteration -- either way every op
        # node costs one graph traversal per iteration.
        engine_s = 0.0
        if engine == "lazy":
            evaluations = sum(use.count for use in uses) * iterations
            engine_s = evaluations * _NODES_PER_OP * profile.lazy_node_overhead_s

        # One-time costs: materializing the join output, shard construction.
        one_time_s = 0.0
        if dp.can_factorize and not factorized and self.charge_materialization:
            one_time_s += dp.n_rows * dp.n_cols / profile.materialize_bandwidth
        if shards > 1:
            one_time_s += shards * profile.shard_overhead_s

        breakdown = {
            "arithmetic": arithmetic_s,
            "dispatch": dispatch_s,
            "engine": engine_s,
            "one-time": one_time_s,
        }
        return ScoredCandidate(
            factorized=factorized, engine=engine, backend=backend, n_shards=shards,
            predicted_seconds=sum(breakdown.values()), breakdown=breakdown,
            batch_rows=batch_rows,
        )

    # -- reporting helpers -----------------------------------------------------

    def _summary(self, dp: _DataProfile) -> dict:
        from repro.la import kernels

        summary = {
            "kind": dp.kind,
            "shape": (dp.n_rows, dp.n_cols),
            "sparse": dp.sparse,
            "num_joins": dp.num_joins,
            "materialized_bytes": dp.materialized_bytes,
            "factorized_bytes": dp.factorized_bytes,
            "fused_kernels": {
                "compiled": kernels.compiled_available(),
                "kernel_set": kernels.best_available(),
                "considered": self.include_fused,
            },
        }
        if self.memory_budget is not None:
            summary["memory_budget"] = self.memory_budget
        if dp.tuple_ratio is not None:
            summary["tuple_ratio"] = dp.tuple_ratio
            summary["feature_ratio"] = dp.feature_ratio
        if dp.redundancy_ratio is not None:
            summary["redundancy_ratio"] = dp.redundancy_ratio
        return summary

    @staticmethod
    def _threshold_choice(dp: _DataProfile) -> Optional[str]:
        if dp.kind == "normalized":
            from repro.core.decision import DecisionRule

            rule = DecisionRule()
            return ("factorize" if rule.predict(dp.tuple_ratio, dp.feature_ratio)
                    else "materialize")
        if dp.kind == "mn-normalized":
            return "factorize" if (dp.redundancy_ratio or 0.0) >= 1.5 else "materialize"
        return None
