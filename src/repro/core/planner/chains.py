"""Per-chain collapse decisions for multi-hop indicator chains.

A snowflake schema routes entity rows to a distant dimension through a chain
of PK-FK hops, represented factorized as a
:class:`~repro.la.chain.ChainedIndicator` (the product ``K1 K2 ... Kh`` is
never formed).  Keeping the chain factorized costs one extra sparse scatter
per tail hop on *every* data pass; collapsing it into one materialized
indicator pays a one-time sparse product whose output is never larger than
the first hop (one non-zero per entity row) but gives up the shared tail
hops.  Which side wins depends on the workload: a one-shot aggregation keeps
the chain, a 100-iteration gradient descent collapses it.

The decision model mirrors the planner's other cost terms in spirit but works
in non-zeros rather than seconds -- every quantity involved is a sparse
scatter over an indicator, so the calibrated rate cancels out of the
comparison:

* keeping the chain costs ``passes * tail_nnz`` extra scatter work, where
  ``tail_nnz`` is the total non-zeros of the hops after the first (each pass
  folds through every hop instead of one collapsed indicator);
* collapsing costs one sparse product pass, priced at
  ``head_nnz * (1 + COLLAPSE_AMORTIZATION)`` to cover the build plus the
  allocation/copy overhead a one-time materialization carries over a steady
  -state scatter.

The pipeline builder (:func:`repro.relational.pipeline.normalized_from_schema`)
consults :func:`decide_collapse` at build time; :class:`~repro.core.planner.
planner.Planner` re-derives the decisions for live chains (and merges the
builder's recorded ones) so ``Plan.explain()`` can show them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.la.chain import ChainedIndicator
from repro.la.types import is_chain

#: Multiplier on the one-time collapse cost: building the product allocates
#: and copies, which a steady-state scatter does not, so collapsing must be
#: won by more than a single pass's savings before it pays off.
COLLAPSE_AMORTIZATION = 4.0


@dataclass(frozen=True)
class ChainDecision:
    """Collapse-or-keep verdict for one chained indicator.

    ``table_index`` is the position of the chain in the normalized matrix's
    indicator list (i.e. which joined attribute table it routes to).
    """

    table_index: int
    num_hops: int
    head_nnz: int
    tail_nnz: int
    passes: float
    collapse: bool
    reason: str

    def to_json(self) -> dict:
        return {
            "table_index": self.table_index,
            "num_hops": self.num_hops,
            "head_nnz": self.head_nnz,
            "tail_nnz": self.tail_nnz,
            "passes": self.passes,
            "collapse": self.collapse,
            "reason": self.reason,
        }

    def describe(self) -> str:
        verdict = "collapse" if self.collapse else "keep factorized"
        return (f"chain[{self.table_index}] ({self.num_hops} hops): "
                f"{verdict} -- {self.reason}")


def workload_passes(workload) -> float:
    """Data passes the workload makes: iterations times per-pass operators."""
    if workload is None:
        return 1.0
    return float(workload.iterations) * float(max(1, len(workload.uses)))


def decide_collapse(chain: ChainedIndicator, workload=None,
                    table_index: int = 0) -> ChainDecision:
    """Should this chain be collapsed into one materialized indicator?

    Collapse iff ``passes * tail_nnz > head_nnz * (1 + COLLAPSE_AMORTIZATION)``
    -- the cumulative per-pass savings must exceed the amortized build cost.
    Single-hop "chains" trivially stay as they are (there is no tail).
    """
    head_nnz = int(chain.hops[0].nnz)
    tail_nnz = int(sum(h.nnz for h in chain.hops[1:]))
    passes = workload_passes(workload)
    saved = passes * tail_nnz
    build = head_nnz * (1.0 + COLLAPSE_AMORTIZATION)
    collapse = chain.num_hops > 1 and saved > build
    if chain.num_hops <= 1:
        reason = "single hop, nothing to collapse"
    elif collapse:
        reason = (f"{passes:.0f} passes x {tail_nnz} tail nnz = {saved:.0f} "
                  f"saved scatters > {build:.0f} amortized build")
    else:
        reason = (f"{passes:.0f} passes x {tail_nnz} tail nnz = {saved:.0f} "
                  f"saved scatters <= {build:.0f} amortized build")
    return ChainDecision(
        table_index=table_index, num_hops=chain.num_hops, head_nnz=head_nnz,
        tail_nnz=tail_nnz, passes=passes, collapse=collapse, reason=reason,
    )


def maybe_collapse(chain: ChainedIndicator, workload=None,
                   table_index: int = 0, mode: str = "auto"):
    """Apply the collapse policy to one chain; returns ``(indicator, decision)``.

    ``mode`` is the builder's ``collapse=`` argument: ``"auto"`` consults
    :func:`decide_collapse`, ``"always"``/``"never"`` force the verdict (the
    decision records the forced reason so ``explain()`` stays honest).
    """
    if mode not in ("auto", "always", "never"):
        raise ValueError(f"collapse mode must be auto/always/never, got {mode!r}")
    decision = decide_collapse(chain, workload, table_index)
    if mode == "always" and chain.num_hops > 1:
        decision = ChainDecision(
            table_index=table_index, num_hops=decision.num_hops,
            head_nnz=decision.head_nnz, tail_nnz=decision.tail_nnz,
            passes=decision.passes, collapse=True, reason="forced by collapse='always'",
        )
    elif mode == "never":
        decision = ChainDecision(
            table_index=table_index, num_hops=decision.num_hops,
            head_nnz=decision.head_nnz, tail_nnz=decision.tail_nnz,
            passes=decision.passes, collapse=False, reason="forced by collapse='never'",
        )
    if decision.collapse:
        return chain.collapse(), decision
    return chain, decision


def plan_chain_summaries(data, workload=None) -> Optional[List[dict]]:
    """Chain decisions for *data* as JSON-ready dicts, or None when chain-free.

    Combines two sources: decisions the pipeline builder recorded when it
    collapsed chains at build time (``data.chain_decisions``), and fresh
    decisions for chains still live in ``data.indicators``.  Builder-collapsed
    chains are plain CSR by now, so the two sets never overlap.
    """
    from repro.core.lazy.expr import LeafExpr

    if isinstance(data, LeafExpr):
        data = data.value
    summaries: List[dict] = []
    recorded = getattr(data, "chain_decisions", None)
    if recorded:
        summaries.extend(dict(d) for d in recorded)
    indicators = getattr(data, "indicators", None)
    if indicators is not None:
        for i, indicator in enumerate(indicators):
            if is_chain(indicator):
                summaries.append(decide_collapse(indicator, workload, i).to_json())
    return summaries or None
