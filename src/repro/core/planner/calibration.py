"""Machine calibration for the cost-based planner.

The paper's Table 3 / Table 11 cost models count *arithmetic operations*;
turning counts into predicted wall-clock seconds needs a handful of
machine-dependent constants: the effective FLOP throughput of the dense and
sparse kernels, the per-primitive-call Python dispatch overhead that every
rewrite rule pays, the per-shard fan-out overhead of the parallel backend,
the per-node overhead of the lazy evaluator, and the rate at which a join
output can be materialized.

:func:`probe` measures all of them with a one-time microbenchmark (well under
a second) and :func:`get_profile` caches the result on disk -- keyed only by
the machine, so every later process starts warm.  Tests and offline scoring
can bypass timing entirely with :meth:`CalibrationProfile.default`, whose
constants are representative of a laptop-class core; the planner's *ranking*
logic never depends on where the constants came from.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from typing import Optional

import numpy as np
import scipy.sparse as sp

#: Environment variable overriding the on-disk cache location.
CACHE_ENV = "REPRO_CALIBRATION_CACHE"
#: Environment variable selecting the profile mode: ``auto`` (cache-or-probe,
#: the default), ``probe`` (always re-measure) or ``default`` (constants only,
#: no timing and no disk access -- what CI and the test suite use).
MODE_ENV = "REPRO_CALIBRATION"

_FORMAT_VERSION = 3


@dataclass(frozen=True)
class CalibrationProfile:
    """Per-machine execution constants consumed by the planner's cost model.

    All throughputs are in scalar operations per second; all overheads are in
    seconds.  ``dense_flops`` is deliberately calibrated with a *streaming*
    (tall-skinny) product, not a cache-resident square one: the data-matrix
    passes the planner prices are memory-bound, so BLAS peak would
    overestimate them several-fold.  ``indicator_flops`` /
    ``sparse_dispatch_overhead_s`` price the per-join indicator scatter
    (``K @ (R X)``) that every factorized operator pays.  ``source`` records
    provenance (``default`` / ``probe`` / ``cache``) so
    :meth:`~repro.core.planner.plan.Plan.explain` can report it.
    """

    dense_flops: float          # effective streaming dense matmul throughput
    sparse_flops: float         # effective sparse matmul throughput
    indicator_flops: float      # rows/sec of factorized overhead passes
    #                             (indicator scatter + block assembly)
    dispatch_overhead_s: float  # per primitive-call (rewrite-rule) overhead
    sparse_dispatch_overhead_s: float  # per sparse primitive-call overhead
    shard_overhead_s: float     # per shard, per operator fan-out overhead
    lazy_node_overhead_s: float  # per graph node, per evaluation
    materialize_bandwidth: float  # join-output elements materialized per second
    parallel_efficiency: float  # marginal speedup of each extra shard worker
    fused_gather_rows: float = 2e9  # row-elements/sec of the fused gather kernel
    source: str = "default"

    @classmethod
    def default(cls) -> "CalibrationProfile":
        """Representative laptop-class constants (no timing, fully deterministic)."""
        return cls(
            dense_flops=2.5e9,
            sparse_flops=1e9,
            indicator_flops=5e8,
            dispatch_overhead_s=5e-6,
            sparse_dispatch_overhead_s=1e-5,
            shard_overhead_s=5e-5,
            lazy_node_overhead_s=3e-6,
            materialize_bandwidth=2e8,
            parallel_efficiency=0.6,
            fused_gather_rows=2e9,
            source="default",
        )

    # -- disk cache -----------------------------------------------------------

    def to_json(self) -> dict:
        return {"version": _FORMAT_VERSION, **asdict(self)}

    @classmethod
    def from_json(cls, payload: dict) -> "CalibrationProfile":
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported calibration format {payload.get('version')!r}")
        fields = {k: v for k, v in payload.items() if k != "version"}
        return cls(**fields)

    def save(self, path: pathlib.Path) -> None:
        """Write the profile atomically (tempfile in the same directory + rename).

        Multiple processes race on the shared cache file (e.g. the streaming
        benchmark's workers all probing on a cold machine); writing through a
        temporary file and ``os.replace`` guarantees a reader never sees a
        torn, half-written JSON document -- it sees the old profile or the new
        one.  A concurrent loser of the race simply overwrites with an
        equivalent profile.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    @classmethod
    def load(cls, path: pathlib.Path) -> "CalibrationProfile":
        return cls.from_json(json.loads(path.read_text()))


def cache_path() -> pathlib.Path:
    """Resolve the calibration cache file (override with ``REPRO_CALIBRATION_CACHE``)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "morpheus-repro" / "calibration.json"


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def probe(repeats: int = 3) -> CalibrationProfile:
    """One-time microbenchmark measuring every profile constant (well under 1 s)."""
    rng = np.random.default_rng(0)

    # Dense throughput: a tall-skinny streaming product -- the shape of a GD
    # data pass (memory-bound), deliberately not a cache-resident square
    # matmul whose BLAS peak would overestimate data passes several-fold.
    # Counted in multiply-add units (m*k*n, not 2*m*k*n) to match the
    # Table 3 / Table 11 operation counts the planner divides by this rate.
    m, k, n = 20_000, 24, 2
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    a @ b  # warm up BLAS
    dense_flops = float(m * k * n) / _best_seconds(lambda: a @ b, repeats)

    # Sparse throughput: CSR @ dense, normalized by the nonzeros touched
    # (multiply-add units again).
    s = sp.random(4096, 256, density=0.05, random_state=1, format="csr")
    x = rng.standard_normal((256, 8))
    s @ x
    sparse_flops = float(s.nnz * x.shape[1]) / _best_seconds(lambda: s @ x, repeats)

    # Dispatch overhead: a product so tiny that its time is pure call overhead.
    t1 = np.ones((2, 2))
    from repro.la.ops import indicator_from_labels, matmul

    dispatch = _best_seconds(lambda: matmul(t1, t1), repeats)

    # Indicator scatter: two sizes of K @ x separate the fixed per-call sparse
    # overhead from the per-row slope (the K (R X) scatter and the block
    # assembly of every factorized operator are priced with this rate).
    small_k = indicator_from_labels(rng.integers(0, 128, size=512), num_columns=128)
    big_k = indicator_from_labels(rng.integers(0, 1024, size=16_384), num_columns=1024)
    x_small = rng.standard_normal((128, 1))
    x_big = rng.standard_normal((1024, 1))
    small_k @ x_small
    big_k @ x_big
    t_small = _best_seconds(lambda: matmul(small_k, x_small), repeats)
    t_big = _best_seconds(lambda: matmul(big_k, x_big), repeats)
    slope = max((t_big - t_small) / (big_k.nnz - small_k.nnz), 1e-12)
    indicator_flops = 1.0 / slope
    # Fixed per-call intercept only: the small call's per-row work is already
    # priced by the slope, so it must not be double-charged here.
    sparse_dispatch = max(t_small - small_k.nnz * slope, 1e-7)

    # Per-shard fan-out overhead: serial sharded LMM minus the plain LMM,
    # divided by the shard count.
    from repro.core.shard import ShardedMatrix

    small = rng.standard_normal((64, 8))
    vec = rng.standard_normal((8, 1))
    sharded = ShardedMatrix.from_matrix(small, 4, pool="serial")
    sharded @ vec
    t_sharded = _best_seconds(lambda: sharded @ vec, repeats)
    t_plain = _best_seconds(lambda: small @ vec, repeats)
    shard_overhead = max((t_sharded - t_plain) / 4.0, 1e-7)

    # Lazy per-node overhead: build + evaluate a 3-node graph over a tiny
    # operand with a cold cache each time.
    from repro.core.lazy.cache import FactorizedCache
    from repro.core.lazy.expr import as_lazy

    def lazy_pass():
        leaf = as_lazy(small, cache=FactorizedCache())
        ((leaf * 2.0) @ vec).evaluate()

    lazy_pass()
    t_lazy = _best_seconds(lazy_pass, repeats)
    t_eager = _best_seconds(lambda: (small * 2.0) @ vec, repeats)
    lazy_node_overhead = max((t_lazy - t_eager) / 3.0, 1e-7)

    # Materialization bandwidth: elements of join output assembled per second.
    from repro.core.materialize import materialize_star

    n_s, n_r, d_r = 4096, 256, 24
    entity = rng.standard_normal((n_s, 4))
    attribute = rng.standard_normal((n_r, d_r))
    labels = np.concatenate([np.arange(n_r), rng.integers(0, n_r, size=n_s - n_r)])
    indicator = indicator_from_labels(labels, num_columns=n_r)
    materialize_star(entity, [indicator], [attribute])
    t_mat = _best_seconds(lambda: materialize_star(entity, [indicator], [attribute]), repeats)
    materialize_bandwidth = n_s * (4 + d_r) / t_mat

    # Fused gather rate: row-elements per second of the fused
    # gather-multiply-reduce kernel (best available set -- compiled when the
    # [kernels] extra is installed, NumPy fancy indexing otherwise).  This is
    # the rate the planner uses to price the per-row overhead passes of a
    # fused-backend candidate, replacing the primitive-chain indicator rate.
    from repro.la import kernels

    gather_out = np.zeros((16_384, 4))
    attribute_big = rng.standard_normal((1024, d_r))
    gather_block = rng.standard_normal((d_r, 4))
    with kernels.using(kernels.best_available()):
        kernels.gather_add(gather_out, big_k, attribute_big,
                           gather_block)  # warm up (and JIT-compile)
        t_gather = _best_seconds(
            lambda: kernels.gather_add(gather_out, big_k, attribute_big,
                                       gather_block), repeats)
    fused_gather_rows = float(gather_out.shape[0] * gather_out.shape[1]) / t_gather

    # Marginal efficiency of extra thread workers: 2-shard thread LMM vs
    # serial.  The serial operand is concatenated outside the timed lambda so
    # the baseline times only the matmul, not a data copy.
    pooled = ShardedMatrix.from_matrix(rng.standard_normal((8192, 32)), 2, pool="thread")
    unsharded = pooled.to_dense()
    wide = rng.standard_normal((32, 16))
    pooled @ wide
    t_pool = _best_seconds(lambda: pooled @ wide, repeats)
    t_serial = _best_seconds(lambda: unsharded @ wide, repeats)
    # speedup = 1 + eff  =>  eff = t_serial / t_pool - 1, clamped to [0.1, 1].
    parallel_efficiency = float(np.clip(t_serial / t_pool - 1.0, 0.1, 1.0))

    return CalibrationProfile(
        dense_flops=dense_flops,
        sparse_flops=sparse_flops,
        indicator_flops=indicator_flops,
        dispatch_overhead_s=dispatch,
        sparse_dispatch_overhead_s=sparse_dispatch,
        shard_overhead_s=shard_overhead,
        lazy_node_overhead_s=lazy_node_overhead,
        materialize_bandwidth=materialize_bandwidth,
        parallel_efficiency=parallel_efficiency,
        fused_gather_rows=fused_gather_rows,
        source="probe",
    )


_profile_singleton: Optional[CalibrationProfile] = None


def get_profile(mode: Optional[str] = None) -> CalibrationProfile:
    """The process-wide calibration profile.

    ``mode`` (or the ``REPRO_CALIBRATION`` environment variable) selects:

    * ``"auto"``   -- load the disk cache if present, otherwise probe once and
      save the result (the production path);
    * ``"probe"``  -- always re-measure (and refresh the cache);
    * ``"default"`` -- the deterministic constants, no timing, no disk access.
    """
    global _profile_singleton
    mode = (mode or os.environ.get(MODE_ENV) or "auto").lower()
    if mode not in ("auto", "probe", "default"):
        raise ValueError(f"unknown calibration mode {mode!r}")
    if mode == "default":
        return CalibrationProfile.default()
    if _profile_singleton is not None and mode == "auto":
        return _profile_singleton
    path = cache_path()
    if mode == "auto":
        try:
            _profile_singleton = replace(CalibrationProfile.load(path), source="cache")
            return _profile_singleton
        except (OSError, ValueError, TypeError, KeyError, json.JSONDecodeError):
            pass
    try:
        _profile_singleton = probe()
    except Exception:  # pragma: no cover - probe must never break planning
        _profile_singleton = CalibrationProfile.default()
        return _profile_singleton
    try:
        _profile_singleton.save(path)
    except OSError:  # pragma: no cover - read-only home directories
        pass
    return _profile_singleton


def reset_profile_cache() -> None:
    """Forget the in-process profile (tests use this around env-var changes)."""
    global _profile_singleton
    _profile_singleton = None
