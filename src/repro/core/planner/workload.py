"""Workload descriptors: the Table-1 operator footprint of an algorithm.

Each of the repo's ML algorithms touches the data matrix with a fixed,
statically known mix of Table-1 operators per iteration -- exactly the
operator footprints the paper tabulates when explaining its per-algorithm
speed-ups (Section 4).  A :class:`WorkloadDescriptor` captures that mix plus
the iteration count, which is all the planner needs to score candidate
execution plans: the dimensions come from the data matrix itself, the
calibration constants from :mod:`repro.core.planner.calibration`.

``lazy_uses`` describes what the ``engine="lazy"`` variant of the algorithm
actually executes when it differs from the eager loop -- e.g. lazy GD linear
regression replaces the per-iteration LMM/RMM pair with a one-time
``crossprod(T)`` and ``T^T Y`` (normal-equation form) served from the
:class:`~repro.core.lazy.cache.FactorizedCache` thereafter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.cost import Operator


@dataclass(frozen=True)
class OperatorUse:
    """One operator of the workload's footprint.

    ``count`` executions happen either every iteration (``per_iteration=True``)
    or once per fit (loop-invariant precomputation, ``per_iteration=False``).
    ``x_cols`` is the width of the regular operand for LMM/RMM-shaped ops.
    """

    operator: Operator
    x_cols: int = 1
    count: float = 1.0
    per_iteration: bool = True


@dataclass(frozen=True)
class WorkloadDescriptor:
    """Operator mix + iteration count of one training (or scoring) workload."""

    name: str
    iterations: int
    uses: Tuple[OperatorUse, ...]
    #: Operator mix of the algorithm's ``engine="lazy"`` variant when it
    #: differs from the eager loop; ``None`` means "same ops, same counts".
    lazy_uses: Optional[Tuple[OperatorUse, ...]] = field(default=None)
    #: ``d x d`` gram-vector products the lazy variant performs per iteration
    #: *instead of* the hoisted data passes (lazy GD's ``gram @ w``); regular
    #: arithmetic, but unlike truly engine-independent work it does not cancel
    #: against the eager candidates, so the planner must price it.
    lazy_gram_applies: float = 0.0

    def total_count(self, use: OperatorUse) -> float:
        """Total executions of *use* over the whole fit."""
        return use.count * (self.iterations if use.per_iteration else 1)

    def uses_for_engine(self, engine: str) -> Tuple[OperatorUse, ...]:
        if engine == "lazy" and self.lazy_uses is not None:
            return self.lazy_uses
        return self.uses

    # -- per-algorithm footprints ---------------------------------------------

    @classmethod
    def logistic_regression(cls, max_iter: int) -> "WorkloadDescriptor":
        """Algorithm 3: one LMM (``T w``) and one transposed LMM (``T^T p``) per pass."""
        return cls(
            name="logreg-gd", iterations=max_iter,
            uses=(OperatorUse(Operator.LMM, x_cols=1),
                  OperatorUse(Operator.RMM, x_cols=1)),
        )

    @classmethod
    def linear_regression_gd(cls, max_iter: int) -> "WorkloadDescriptor":
        """Algorithm 11 eager; the lazy variant hoists ``crossprod(T)`` / ``T^T Y``."""
        return cls(
            name="linreg-gd", iterations=max_iter,
            uses=(OperatorUse(Operator.LMM, x_cols=1),
                  OperatorUse(Operator.RMM, x_cols=1)),
            lazy_uses=(OperatorUse(Operator.CROSSPROD, per_iteration=False),
                       OperatorUse(Operator.RMM, x_cols=1, per_iteration=False)),
            lazy_gram_applies=1.0,  # the per-iteration gram @ w product
        )

    @classmethod
    def kmeans(cls, num_clusters: int, max_iter: int) -> "WorkloadDescriptor":
        """Algorithm 7: per-iteration ``T C`` and ``T^T A``; invariant norms/doubling."""
        return cls(
            name="kmeans", iterations=max_iter,
            uses=(OperatorUse(Operator.LMM, x_cols=num_clusters),
                  OperatorUse(Operator.RMM, x_cols=num_clusters),
                  OperatorUse(Operator.SCALAR, count=2, per_iteration=False),
                  OperatorUse(Operator.AGGREGATION, per_iteration=False)),
        )

    @classmethod
    def gnmf(cls, rank: int, max_iter: int) -> "WorkloadDescriptor":
        """Algorithm 8: per-iteration ``T^T W`` and ``T H`` at the factor rank."""
        return cls(
            name="gnmf", iterations=max_iter,
            uses=(OperatorUse(Operator.LMM, x_cols=rank),
                  OperatorUse(Operator.RMM, x_cols=rank)),
        )

    @classmethod
    def generic(cls) -> "WorkloadDescriptor":
        """A single pass over the representative operator mix (``TN.plan()`` default)."""
        return cls(
            name="generic", iterations=1,
            uses=(OperatorUse(Operator.SCALAR),
                  OperatorUse(Operator.AGGREGATION),
                  OperatorUse(Operator.LMM, x_cols=2),
                  OperatorUse(Operator.RMM, x_cols=2),
                  OperatorUse(Operator.CROSSPROD)),
        )
