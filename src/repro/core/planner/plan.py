"""The explainable output of the cost-based planner.

A :class:`Plan` bundles the chosen execution strategy with the predicted
costs of *every* candidate the planner scored, so a user (or a benchmark
report) can see not just what was picked but by how much it won --
``explain()`` renders exactly that, plus what the paper's static threshold
rule would have done on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.planner.calibration import CalibrationProfile
from repro.core.planner.workload import WorkloadDescriptor


@dataclass(frozen=True)
class ScoredCandidate:
    """One candidate execution strategy with its predicted wall-clock cost."""

    factorized: bool
    engine: str                 # "eager" or "lazy"
    backend: str                # "dense", "sparse", "fused", "chunked",
    #                             "sharded" or "streamed"
    n_shards: int
    predicted_seconds: float
    #: additive cost terms in seconds (arithmetic / dispatch / one-time ...)
    breakdown: Mapping[str, float] = field(default_factory=dict)
    #: mini-batch row count of a "streamed" candidate (None otherwise); the
    #: ML estimators feed it to NormalizedBatchIterator when the plan wins.
    batch_rows: Optional[int] = None

    @property
    def label(self) -> str:
        layout = "factorized" if self.factorized else "materialized"
        shards = f" x{self.n_shards}" if self.n_shards > 1 else ""
        batches = f"@{self.batch_rows}rows" if self.batch_rows is not None else ""
        return f"{layout}/{self.engine}/{self.backend}{batches}{shards}"

    def to_json(self) -> dict:
        return {
            "factorized": self.factorized,
            "engine": self.engine,
            "backend": self.backend,
            "n_shards": self.n_shards,
            "predicted_seconds": self.predicted_seconds,
            "breakdown": dict(self.breakdown),
            "batch_rows": self.batch_rows,
        }


@dataclass(frozen=True)
class Plan:
    """A ranked set of scored candidates; ``candidates[0]`` is the chosen one."""

    candidates: Tuple[ScoredCandidate, ...]
    workload: WorkloadDescriptor
    data_summary: Dict[str, object]
    calibration: CalibrationProfile
    #: what the Section 5.1 threshold rule would pick ("factorize" /
    #: "materialize"), or None when the rule does not apply (plain input).
    threshold_rule_choice: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError("a plan needs at least one scored candidate")
        # Execution feedback slot, filled in by record_outcome() after the
        # plan actually runs (frozen dataclass, hence object.__setattr__).
        object.__setattr__(self, "outcome", None)

    def record_outcome(self, measured_seconds: float):
        """Attach the measured runtime of this plan's execution.

        Returns the :class:`~repro.core.planner.feedback.PlanOutcome`; it is
        also kept on ``self.outcome`` and in the process-global window
        (:func:`repro.core.planner.feedback.recent_outcomes`).
        """
        from repro.core.planner.feedback import record_outcome

        return record_outcome(self, measured_seconds)

    # -- chosen-candidate passthroughs ---------------------------------------

    @property
    def chosen(self) -> ScoredCandidate:
        return self.candidates[0]

    @property
    def engine(self) -> str:
        return self.chosen.engine

    @property
    def factorized(self) -> bool:
        return self.chosen.factorized

    @property
    def backend(self) -> str:
        return self.chosen.backend

    @property
    def n_jobs(self) -> int:
        """The chosen shard count under the ML estimators' ``n_jobs`` spelling."""
        return self.chosen.n_shards

    @property
    def predicted_seconds(self) -> float:
        return self.chosen.predicted_seconds

    # -- reporting ------------------------------------------------------------

    def explain(self, top: int = 5) -> str:
        """Human-readable report: chosen plan, predicted costs, alternatives."""
        shape = self.data_summary.get("shape")
        kind = self.data_summary.get("kind", "matrix")
        lines = [
            f"cost-based plan for workload '{self.workload.name}' "
            f"({self.workload.iterations} iteration(s)) on {kind} {shape}",
            f"chosen: {self.chosen.label} -- predicted {_fmt_seconds(self.predicted_seconds)}",
        ]
        for term, seconds in sorted(self.chosen.breakdown.items()):
            lines.append(f"  {term}: {_fmt_seconds(seconds)}")
        for rank, candidate in enumerate(self.candidates[1:top], start=2):
            ratio = (candidate.predicted_seconds / self.predicted_seconds
                     if self.predicted_seconds > 0 else float("inf"))
            lines.append(
                f"rank {rank}: {candidate.label} -- predicted "
                f"{_fmt_seconds(candidate.predicted_seconds)} ({ratio:.2f}x chosen)"
            )
        if len(self.candidates) > top:
            lines.append(f"... {len(self.candidates) - top} more candidates scored")
        chains = self.data_summary.get("chains")
        if chains:
            lines.append("multi-hop indicator chains:")
            for entry in chains:
                verdict = ("collapsed" if entry.get("collapse")
                           else "kept factorized")
                lines.append(
                    f"  chain[{entry.get('table_index')}] "
                    f"({entry.get('num_hops')} hops, head nnz "
                    f"{entry.get('head_nnz')}, tail nnz {entry.get('tail_nnz')}): "
                    f"{verdict} -- {entry.get('reason')}"
                )
        fused = self.data_summary.get("fused_kernels")
        if fused is not None:
            kernel_set = fused.get("kernel_set")
            if self.chosen.backend == "fused":
                lines.append(
                    f"fused kernels: chosen (compiled '{kernel_set}' set)")
            elif fused.get("considered"):
                margin = next(
                    (c.predicted_seconds / self.predicted_seconds
                     for c in self.candidates if c.backend == "fused"), None)
                if margin is None:
                    lines.append(
                        "fused kernels: available but not applicable "
                        "(no factorized serial candidate)")
                else:
                    lines.append(
                        f"fused kernels: scored but not chosen "
                        f"({margin:.2f}x the chosen plan)")
            elif not fused.get("compiled"):
                lines.append(
                    f"fused kernels: not scored -- compiled set unavailable "
                    f"(install the [kernels] extra); '{kernel_set}' set still "
                    f"serves the rewrites")
            else:
                lines.append("fused kernels: not scored (disabled)")
        tr = self.data_summary.get("tuple_ratio")
        fr = self.data_summary.get("feature_ratio")
        rr = self.data_summary.get("redundancy_ratio")
        if self.threshold_rule_choice is not None and tr is not None:
            lines.append(
                f"paper threshold rule (tau=5, rho=1) on tuple_ratio={tr:.2f}, "
                f"feature_ratio={fr:.2f} -> {self.threshold_rule_choice}"
            )
        elif self.threshold_rule_choice is not None and rr is not None:
            # M:N matrices have no tuple/feature ratios; the static rule is
            # the redundancy-ratio threshold of morpheus_mn.
            lines.append(
                f"paper redundancy rule (ratio >= 1.5) on "
                f"redundancy_ratio={rr:.2f} -> {self.threshold_rule_choice}"
            )
        lines.append(
            f"calibration: {self.calibration.source} "
            f"(dense {self.calibration.dense_flops / 1e9:.1f} GFLOP/s, "
            f"dispatch {self.calibration.dispatch_overhead_s * 1e6:.1f} us/op)"
        )
        outcome = getattr(self, "outcome", None)
        if outcome is not None:
            lines.append(
                f"measured: {_fmt_seconds(outcome.measured_seconds)} vs predicted "
                f"{_fmt_seconds(outcome.predicted_seconds)} "
                f"({outcome.ratio:.2f}x, residual "
                f"{_fmt_seconds(abs(outcome.residual_seconds))} "
                f"{'over' if outcome.residual_seconds >= 0 else 'under'})"
            )
        else:
            lines.append("measured: not yet executed (no outcome recorded)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable form (the CI benchmark uploads this as an artifact)."""
        payload = {
            "workload": {"name": self.workload.name,
                         "iterations": self.workload.iterations},
            "data": dict(self.data_summary),
            "chosen": self.chosen.to_json(),
            "candidates": [c.to_json() for c in self.candidates],
            "threshold_rule_choice": self.threshold_rule_choice,
            "calibration": self.calibration.to_json(),
        }
        outcome = getattr(self, "outcome", None)
        if outcome is not None:
            payload["outcome"] = outcome.to_json()
        return payload


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"
