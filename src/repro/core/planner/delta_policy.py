"""The patch-vs-recompute cost rule for incremental maintenance.

When a row delta lands on attribute table ``R_k``, every cached term and
serving partial that depends on it can either be **patched** (a rank-``|Δ|``
update via the rules of :mod:`repro.core.rewrite.delta`) or **recomputed**
from the post-delta base matrices.  The costs, in the planner's usual
floating-point-operation currency:

* full recompute of a term over ``R_k`` scans the whole table and every
  foreign key referencing it: ``C_full ≈ (n_Rk · d_k + nnz(K_k)) · m``;
* the patch touches only the ``b`` changed rows and their fan-in:
  ``C_patch ≈ (b · d_k + nnz(K_k) · b / n_Rk) · m + C_fixed``,

so to first order ``C_patch / C_full ≈ b / n_Rk`` -- the **delta fraction**
-- plus a fixed per-patch overhead (sparse column slicing, result copy) that
dominates for tiny tables.  The rule therefore patches when the delta
fraction is below a threshold and the table is large enough for the
asymptotics to matter, and recomputes otherwise; like every planner
decision it returns an explainable record rather than a bare bool.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Default delta fraction below which patching wins.  The crossprod patch
#: does ~2x the per-row work of a recompute scan (old and new values both
#: enter the rank-2b update), so the break-even sits near 1/2; staying a
#: factor of two under it keeps patching a clear win on every rule.
DEFAULT_PATCH_THRESHOLD = 0.25

#: Below this many rows a full recompute is effectively free and the fixed
#: patch overhead (column slicing, copies) is not worth reasoning about.
DEFAULT_MIN_TABLE_ROWS = 64


@dataclass(frozen=True)
class DeltaDecision:
    """An explainable patch-vs-recompute verdict for one delta application."""

    patch: bool
    reason: str
    delta_fraction: float
    patch_cost: float
    full_cost: float

    def explain(self) -> str:
        action = "patch" if self.patch else "recompute"
        return (
            f"{action}: {self.reason} (delta fraction {self.delta_fraction:.4f}, "
            f"est. patch {self.patch_cost:.3g} vs full {self.full_cost:.3g} flops/row)"
        )


class DeltaPolicy:
    """Decides patch vs. recompute from the delta fraction.

    Parameters
    ----------
    threshold:
        Maximum delta fraction at which patching is chosen.  ``1.0`` forces
        patching whenever algebraically possible (used by the differential
        tests to exercise the patch path); ``0.0`` disables patching.
    min_table_rows:
        Tables smaller than this always recompute -- the fixed patch
        overhead exceeds a full scan.
    """

    def __init__(self, threshold: float = DEFAULT_PATCH_THRESHOLD,
                 min_table_rows: int = DEFAULT_MIN_TABLE_ROWS):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be within [0, 1]")
        self.threshold = float(threshold)
        self.min_table_rows = int(min_table_rows)

    def decide(self, num_changed: int, num_rows: int, width: int = 1,
               fan_in: float = 1.0) -> DeltaDecision:
        """Verdict for a delta of *num_changed* rows on a *num_rows*-row table.

        *width* is the table's feature count and *fan_in* the average number
        of entity rows referencing one attribute row (``nnz(K_k) / n_Rk``);
        both only scale the reported costs, the decision itself is the
        delta-fraction rule.
        """
        num_rows = max(int(num_rows), 0)
        fraction = num_changed / num_rows if num_rows else 1.0
        per_row = max(float(width), 1.0) + max(float(fan_in), 0.0)
        full_cost = num_rows * per_row
        patch_cost = min(num_changed * 2.0 * per_row, full_cost)
        if num_rows < self.min_table_rows and self.threshold < 1.0:
            return DeltaDecision(False, f"table has {num_rows} rows "
                                 f"(< {self.min_table_rows}); full recompute is free",
                                 fraction, patch_cost, full_cost)
        if fraction <= self.threshold:
            return DeltaDecision(True, f"delta fraction below threshold "
                                 f"{self.threshold:g}", fraction, patch_cost, full_cost)
        return DeltaDecision(False, f"delta fraction above threshold "
                             f"{self.threshold:g}", fraction, patch_cost, full_cost)

    def should_patch(self, delta, num_rows: int, width: int = 1,
                     fan_in: float = 1.0) -> bool:
        """Convenience wrapper taking a :class:`~repro.core.delta.MatrixDelta`."""
        return self.decide(delta.num_changed, num_rows, width, fan_in).patch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeltaPolicy(threshold={self.threshold}, "
                f"min_table_rows={self.min_table_rows})")


#: Policy used when callers pass none: patch below 25% churn on real tables.
DEFAULT_DELTA_POLICY = DeltaPolicy()
