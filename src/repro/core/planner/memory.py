"""Memory-footprint models for the cost-based planner and the streaming layer.

The planner's other dimensions (arithmetic, dispatch, engine, one-time) model
*time*; this module models *space*.  Two resident footprints matter when
deciding whether an operand can be executed in memory at all:

* the **materialized** footprint -- the dense join output ``n_S x d`` a
  materialized plan would have to hold, and
* the **factorized** footprint -- the base matrices plus the sparse
  indicators a factorized plan keeps resident (usually far smaller, which is
  the paper's redundancy argument in byte form).

When a :class:`~repro.core.planner.planner.Planner` is given a
``memory_budget`` it drops candidates whose resident footprint exceeds the
budget and scores a ``"streamed"`` candidate instead: factorized mini-batch
execution through :class:`~repro.core.stream.NormalizedBatchIterator`, whose
batch size :func:`batch_rows_for_budget` derives from the same footprint
model.  The batch size is chosen so that even a *densified* batch (the worst
intermediate any Table-1 operator produces) fits in the budget, so the bound
holds for every operator mix.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

#: Bytes per dense float64 element.
DENSE_ELEMENT_BYTES = 8
#: Approximate bytes per stored non-zero of a CSR matrix (float64 value +
#: int32/int64 column index, amortized indptr).
SPARSE_NNZ_BYTES = 16
#: Per-row overhead of slicing the (one-nonzero-per-row) indicator matrices
#: when a factorized batch is cut out of the normalized matrix.
INDICATOR_ROW_BYTES = SPARSE_NNZ_BYTES


def matrix_nbytes(matrix) -> int:
    """Best-effort resident size in bytes of one concrete matrix."""
    if matrix is None:
        return 0
    if sp.issparse(matrix):
        total = 0
        for attr in ("data", "indices", "indptr", "row", "col", "offsets"):
            part = getattr(matrix, attr, None)
            if part is not None:
                total += int(np.asarray(part).nbytes)
        return total
    if isinstance(matrix, np.ndarray):
        return int(matrix.nbytes)
    hops = getattr(matrix, "hops", None)
    if hops is not None:
        # A ChainedIndicator keeps its hop matrices resident, not the product.
        return sum(matrix_nbytes(h) for h in hops)
    shape = getattr(matrix, "shape", None)
    if shape is None:
        return 0
    return int(shape[0]) * int(shape[1]) * DENSE_ELEMENT_BYTES


def _logical_dims(data) -> Tuple[int, int]:
    """(rows, cols) of the untransposed logical matrix behind *data*."""
    rows = getattr(data, "logical_rows", None)
    cols = getattr(data, "logical_cols", None)
    if rows is not None and cols is not None:
        return int(rows), int(cols)
    n_rows, n_cols = data.shape
    if getattr(data, "transposed", False):
        n_rows, n_cols = n_cols, n_rows
    return int(n_rows), int(n_cols)


def materialized_nbytes(data) -> int:
    """Bytes of the dense join output a materialized plan keeps resident.

    For operands that *are* already materialized (plain, chunked, plain
    sharded) this is their actual storage size; for normalized operands it is
    the dense ``n_S x d`` the join would produce.
    """
    from repro.core.mn_matrix import MNNormalizedMatrix
    from repro.core.normalized_matrix import NormalizedMatrix

    if isinstance(data, (NormalizedMatrix, MNNormalizedMatrix)):
        rows, cols = _logical_dims(data)
        return rows * cols * DENSE_ELEMENT_BYTES
    pieces = getattr(data, "pieces", None)
    if pieces is not None:  # ShardedNormalizedMatrix
        rows, cols = _logical_dims(data)
        return rows * cols * DENSE_ELEMENT_BYTES
    chunks = getattr(data, "chunks", None) or getattr(data, "shards", None)
    if chunks is not None:
        return sum(matrix_nbytes(c) for c in chunks)
    return matrix_nbytes(data)


def factorized_nbytes(data) -> int:
    """Bytes the factorized representation keeps resident (bases + indicators)."""
    from repro.core.mn_matrix import MNNormalizedMatrix
    from repro.core.normalized_matrix import NormalizedMatrix

    if isinstance(data, NormalizedMatrix):
        total = matrix_nbytes(data.entity)
        total += sum(matrix_nbytes(k) for k in data.indicators)
        total += sum(matrix_nbytes(r) for r in data.attributes)
        return total
    if isinstance(data, MNNormalizedMatrix):
        total = sum(matrix_nbytes(i) for i in data.indicators)
        total += sum(matrix_nbytes(r) for r in data.attributes)
        return total
    pieces = getattr(data, "pieces", None)
    if pieces is not None:  # ShardedNormalizedMatrix: attributes are shared
        total = sum(factorized_nbytes(p) for p in pieces)
        shared = sum(matrix_nbytes(r) for r in pieces[0].attributes)
        return total - shared * (len(pieces) - 1)
    return materialized_nbytes(data)


def entity_stream_nbytes(data) -> int:
    """Bytes of the n-row structures one factorized pass streams through.

    A factorized Table-1 pass touches the entity matrix and the indicator
    matrices end to end; the attribute tables are the shared, always-resident
    part (they are reused untouched by every pass and every mini-batch, the
    paper's central sharing argument).  This is the factorized working set a
    memory budget has to cover when the pass is *not* streamed; the streamed
    backend replaces it with one batch's slice.
    """
    from repro.core.mn_matrix import MNNormalizedMatrix
    from repro.core.normalized_matrix import NormalizedMatrix

    if isinstance(data, NormalizedMatrix):
        return matrix_nbytes(data.entity) + sum(matrix_nbytes(k) for k in data.indicators)
    if isinstance(data, MNNormalizedMatrix):
        return sum(matrix_nbytes(i) for i in data.indicators)
    pieces = getattr(data, "pieces", None)
    if pieces is not None:  # ShardedNormalizedMatrix
        return sum(entity_stream_nbytes(p) for p in pieces)
    return materialized_nbytes(data)


def batch_row_nbytes(data) -> int:
    """Conservative resident bytes one logical row contributes to a mini-batch.

    Counts the densified row width (the worst-case intermediate a Table-1
    operator materializes for the batch) plus the per-join indicator slice
    overhead, so a batch of ``batch_rows_for_budget`` rows stays under the
    budget for every operator.
    """
    _, cols = _logical_dims(data)
    num_joins = len(getattr(data, "indicators", ()))
    return _row_nbytes(cols, num_joins)


def _row_nbytes(n_cols: int, num_joins: int) -> int:
    return max(1, n_cols * DENSE_ELEMENT_BYTES + num_joins * INDICATOR_ROW_BYTES)


def batch_rows_for_dims(n_rows: int, n_cols: int, num_joins: int,
                        memory_budget: float, min_rows: int = 1) -> int:
    """:func:`batch_rows_for_budget` on explicit dimensions (planner-internal)."""
    if memory_budget <= 0:
        raise ValueError("memory_budget must be positive")
    batch_rows = int(memory_budget // _row_nbytes(n_cols, num_joins))
    if n_rows > 0:
        return max(min(batch_rows, n_rows), min(min_rows, n_rows), 1)
    return max(batch_rows, min_rows, 1)


def batch_rows_for_budget(data, memory_budget: float, min_rows: int = 1) -> int:
    """Mini-batch row count such that one batch fits in *memory_budget* bytes.

    Clamped to ``[min_rows, n_rows]``: a budget too small for even one row
    still yields ``min_rows``-row batches (the stream degrades gracefully
    rather than refusing to run), and a budget larger than the whole matrix
    yields one full-size batch.
    """
    rows, cols = _logical_dims(data)
    num_joins = len(getattr(data, "indicators", ()))
    return batch_rows_for_dims(rows, cols, num_joins, memory_budget, min_rows=min_rows)


def streamed_batch_count(n_rows: int, batch_rows: int) -> int:
    """Number of batches one pass over *n_rows* rows takes at *batch_rows*."""
    if n_rows <= 0:
        return 0
    return -(-int(n_rows) // max(int(batch_rows), 1))
